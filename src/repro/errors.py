"""Exception hierarchy for the dataweb-verify library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Specific subclasses distinguish specification problems
(malformed peers/compositions), formula problems (parsing, arity, unknown
relations), restriction violations (input-boundedness), and verification
configuration problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A relational schema is malformed or used inconsistently.

    Raised for duplicate relation names, arity mismatches, references to
    unknown relations, or mixing relations from different scopes.
    """


class FormulaError(ReproError):
    """A formula is malformed (arity mismatch, unbound use, bad structure)."""


class ParseError(ReproError):
    """The textual formula/specification syntax could not be parsed."""

    def __init__(self, message: str, position: int | None = None,
                 text: str | None = None) -> None:
        self.position = position
        self.text = text
        if position is not None and text is not None:
            snippet = text[max(0, position - 20):position + 20]
            message = f"{message} (at position {position}: ...{snippet!r}...)"
        super().__init__(message)


class SpecificationError(ReproError):
    """A peer or composition specification violates Definition 2.1/2.5."""


class InputBoundednessError(ReproError):
    """A formula/peer/composition violates the input-boundedness restriction.

    Carries the list of :class:`repro.ib.report.Violation` diagnostics that
    explain each offending sub-formula.
    """

    def __init__(self, message: str, violations: tuple = ()) -> None:
        super().__init__(message)
        self.violations = tuple(violations)


class SemanticsError(ReproError):
    """A run/transition was attempted under inconsistent channel semantics."""


class VerificationError(ReproError):
    """The verifier was invoked outside its decidable configuration.

    For example: unbounded queues, perfect flat channels in complete mode,
    or a property outside the supported fragment.
    """


class SimulationError(ReproError):
    """An interactive simulation step was invalid (bad input choice, etc.)."""
