"""Scalable synthetic composition families for benchmarking.

The paper's complexity results (PSPACE for fixed arity, EXPSPACE
otherwise) are about how verification scales with the specification.
These generators produce parameterized compositions with known properties:

* :func:`relay_chain` -- ``n`` peers forwarding a token: peer 1's user
  picks a value from its database, each subsequent peer relays it, the
  last peer records it.  Scales the number of peers and channels.
* :func:`relay_ring` -- the same, but the last peer sends back to the
  first, exercising cyclic channel topologies.
* :func:`wide_peer` -- a single peer with ``k``-ary state relations,
  scaling schema arity (the EXPSPACE axis).
* :func:`random_topology` -- a seeded random member of the relay
  family; same seed, same composition.  With no explicit seed the
  global ``REPRO_SEED`` environment variable decides, so benchmark
  runs replay bit-for-bit.
"""

from __future__ import annotations

import os
import random

from ..fo.instance import Instance
from ..spec.composition import Composition
from ..spec.peer import Peer, PeerBuilder


def _source_peer(name: str, out_queue: str) -> Peer:
    return (
        PeerBuilder(name)
        .database("items", 1)
        .input("pick", 1)
        .flat_out_queue(out_queue, 1)
        .input_rule("pick", ["x"], "items(x)")
        .send_rule(out_queue, ["x"], "pick(x)")
        .build()
    )


def _relay_peer(name: str, in_queue: str, out_queue: str) -> Peer:
    return (
        PeerBuilder(name)
        .state("seen", 1)
        .flat_in_queue(in_queue, 1)
        .flat_out_queue(out_queue, 1)
        .insert_rule("seen", ["x"], f"?{in_queue}(x)")
        .send_rule(out_queue, ["x"], f"?{in_queue}(x)")
        .build()
    )


def _sink_peer(name: str, in_queue: str) -> Peer:
    return (
        PeerBuilder(name)
        .state("done", 1)
        .flat_in_queue(in_queue, 1)
        .insert_rule("done", ["x"], f"?{in_queue}(x)")
        .build()
    )


def relay_chain(n_relays: int) -> Composition:
    """Source -> relay_1 -> ... -> relay_n -> sink (closed).

    Property ``forall x: G(sink.done(x) -> source.items(x))`` holds;
    ``forall x: G(source.pick(x) -> F sink.done(x))`` fails under lossy
    channels.
    """
    if n_relays < 0:
        raise ValueError("n_relays must be >= 0")
    peers = [_source_peer("P0", "q0")]
    for i in range(n_relays):
        peers.append(_relay_peer(f"P{i + 1}", f"q{i}", f"q{i + 1}"))
    peers.append(_sink_peer(f"P{n_relays + 1}", f"q{n_relays}"))
    return Composition(peers)


def relay_ring(n_relays: int) -> Composition:
    """A ring: the source also consumes the last relay's output."""
    if n_relays < 1:
        raise ValueError("n_relays must be >= 1")
    source = (
        PeerBuilder("P0")
        .database("items", 1)
        .input("pick", 1)
        .state("returned", 1)
        .flat_in_queue(f"q{n_relays}", 1)
        .flat_out_queue("q0", 1)
        .input_rule("pick", ["x"], "items(x)")
        .send_rule("q0", ["x"], "pick(x)")
        .insert_rule("returned", ["x"], f"?q{n_relays}(x)")
        .build()
    )
    peers = [source]
    for i in range(n_relays):
        peers.append(_relay_peer(f"P{i + 1}", f"q{i}", f"q{i + 1}"))
    return Composition(peers)


def chain_databases(n_relays: int, items: int = 1) -> dict[str, Instance]:
    """Databases for :func:`relay_chain`/:func:`relay_ring`."""
    return {
        "P0": Instance({
            "items": [(f"v{i}",) for i in range(items)]
        }),
    }


def chain_safety_property(n_relays: int) -> str:
    """Holds: values reaching the sink come from the source database."""
    sink = f"P{n_relays + 1}"
    return f"forall x: G( {sink}.done(x) -> P0.items(x) )"


def chain_liveness_property(n_relays: int) -> str:
    """Fails under lossy channels: picked values eventually arrive."""
    sink = f"P{n_relays + 1}"
    return f"forall x: G( P0.pick(x) -> F {sink}.done(x) )"


def wide_peer(arity: int) -> Composition:
    """A two-peer composition whose state/message arity is *arity*.

    Scales the schema arity (the axis along which the paper's complexity
    jumps from PSPACE to EXPSPACE).  The sender picks a row of its
    ``wide`` database and ships it; the receiver stores it.
    """
    if arity < 1:
        raise ValueError("arity must be >= 1")
    xs = [f"x{i}" for i in range(arity)]
    var_list = ", ".join(xs)
    sender = (
        PeerBuilder("W")
        .database("wide", arity)
        .input("pick", arity)
        .flat_out_queue("ship", arity)
        .input_rule("pick", xs, f"wide({var_list})")
        .send_rule("ship", xs, f"pick({var_list})")
        .build()
    )
    receiver = (
        PeerBuilder("V")
        .state("stored", arity)
        .flat_in_queue("ship", arity)
        .insert_rule("stored", xs, f"?ship({var_list})")
        .build()
    )
    return Composition([sender, receiver])


def wide_databases(arity: int, rows: int = 1) -> dict[str, Instance]:
    """Databases for :func:`wide_peer`: *rows* constant-distinct rows."""
    return {
        "W": Instance({
            "wide": [
                tuple(f"r{r}c{i}" for i in range(arity))
                for r in range(rows)
            ]
        }),
    }


def wide_safety_property(arity: int) -> str:
    """Holds: stored rows come from the wide database."""
    xs = ", ".join(f"x{i}" for i in range(arity))
    return f"forall {xs}: G( V.stored({xs}) -> W.wide({xs}) )"


def repro_seed(default: int = 0) -> int:
    """The global reproducibility seed (``REPRO_SEED`` env var)."""
    raw = os.environ.get("REPRO_SEED", "").strip()
    if raw:
        return int(raw)
    return default


def random_topology(seed: int | None = None
                    ) -> tuple[Composition, dict[str, Instance], str]:
    """A reproducible random member of the relay family.

    Draws a chain or ring topology, relay depth, and database size from
    a :class:`random.Random` seeded with *seed* -- the same seed always
    yields the same composition, databases, and property.  ``seed=None``
    defers to :func:`repro_seed` so ``REPRO_SEED=7 pytest benchmarks/``
    replays exactly.  Returns ``(composition, databases, property)``
    where the property is a safety invariant that holds for every
    member of the family.
    """
    if seed is None:
        seed = repro_seed()
    rng = random.Random(seed * 9176 + 11)
    n_relays = rng.randint(1, 3)
    items = rng.randint(1, 2)
    if rng.random() < 0.5:
        composition = relay_chain(n_relays)
        prop = chain_safety_property(n_relays)
    else:
        composition = relay_ring(n_relays)
        prop = "forall x: G( P0.returned(x) -> P0.items(x) )"
    return composition, chain_databases(n_relays, items), prop
