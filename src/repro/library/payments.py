"""A payments/chargeback composition: capture races dispute.

Three peers in the shape of a card-payment flow:

* ``Shop`` -- the merchant: the customer pays for goods, the shop
  charges the payment service provider, records the capture when the
  approval arrives, and refunds when the bank disputes;
* ``PSP``  -- the payment service provider: approves charges it clears
  and forwards them for settlement;
* ``Bank`` -- the issuing bank: disputes settlements of risky orders
  (the chargeback).

Channels::

    Shop --charge--> PSP --approved--> Shop
                     PSP --settle--> Bank --disputed--> Shop

The interesting behaviour is the race the lossy semantics makes real:
the ``approved`` message can be lost while ``settle`` gets through, so
the bank's ``disputed`` message -- and the shop's refund -- can arrive
*before* (or entirely without) the capture.  The properties document
both sides of that frontier:

* :data:`PROPERTY_CAPTURE_CLEARED` (satisfied): captures only happen
  for orders the PSP clears -- message provenance is structural.
* :data:`PROPERTY_DISPUTE_HONEST` (satisfied): the bank only disputes
  orders its risk database flags.
* :data:`PROPERTY_REFUND_AFTER_CAPTURE` (violated): a refund implies a
  prior capture.  False -- the chargeback race above.
* :data:`PROPERTY_PAYMENT_CAPTURED` (violated): every payment is
  eventually captured.  False under lossy channels.
"""

from __future__ import annotations

from ..fo.instance import Instance
from ..spec.composition import Composition
from ..spec.peer import Peer, PeerBuilder


def shop_peer() -> Peer:
    return (
        PeerBuilder("Shop")
        .database("goods", 1)                  # orderable goods
        .input("pay", 1)                       # customer pays for a good
        .state("captured", 1)                  # approved + recorded
        .state("refunded", 1)                  # chargeback honoured
        .action("refund", 1)                   # the side effect
        .state("checkedOut", 0)
        .flat_in_queue("approved", 1)
        .flat_in_queue("disputed", 1)
        .flat_out_queue("charge", 1)
        # the one-shot checkout gate is the loan domain's "already
        # acted" idiom: it keeps the input menu input-bounded (a menu
        # may not read non-ground state) while keeping the reachable
        # product small
        .input_rule("pay", ["x"], "goods(x) & ~checkedOut")
        .insert_rule("checkedOut", [], "exists x: pay(x)")
        .send_rule("charge", ["x"], "pay(x)")
        .insert_rule("captured", ["x"], "?approved(x)")
        .insert_rule("refunded", ["x"], "?disputed(x)")
        .action_rule("refund", ["x"], "?disputed(x)")
        .build()
    )


def psp_peer() -> Peer:
    return (
        PeerBuilder("PSP")
        .database("clears", 1)                 # orders the PSP clears
        .flat_in_queue("charge", 1)
        .flat_out_queue("approved", 1)
        .flat_out_queue("settle", 1)
        .send_rule("approved", ["x"], "?charge(x) & clears(x)")
        .send_rule("settle", ["x"], "?charge(x) & clears(x)")
        .build()
    )


def bank_peer() -> Peer:
    return (
        PeerBuilder("Bank")
        .database("risky", 1)                  # orders the bank disputes
        .state("settled", 1)
        .flat_in_queue("settle", 1)
        .flat_out_queue("disputed", 1)
        .insert_rule("settled", ["x"], "?settle(x)")
        .send_rule("disputed", ["x"], "?settle(x) & risky(x)")
        .build()
    )


def payments_composition() -> Composition:
    """The closed three-peer payment composition."""
    return Composition([shop_peer(), psp_peer(), bank_peer()])


def deadlocked_payments_composition() -> Composition:
    """The seeded deadlock mutant (the DWV501 regression target).

    One plausible-looking edit breaks the flow: the shop now waits for
    a delivery acknowledgment before charging, while the PSP only acks
    orders it has been charged for::

        Shop: charge(x) <- pay(x) & ?ack(x)
        PSP:  ack(x)    <- ?charge(x)

    ``charge`` waits for ``ack`` and ``ack`` waits for ``charge``; no
    producer of either channel can fire until the other delivers, so
    neither queue is ever non-empty -- a static deadlock the flow pass
    must flag (and the verifier would only surface as a vacuous sweep).
    """
    shop = (
        PeerBuilder("Shop")
        .database("goods", 1)
        .input("pay", 1)
        .state("captured", 1)
        .state("refunded", 1)
        .action("refund", 1)
        .state("checkedOut", 0)
        .flat_in_queue("approved", 1)
        .flat_in_queue("disputed", 1)
        .flat_in_queue("ack", 1)
        .flat_out_queue("charge", 1)
        .input_rule("pay", ["x"], "goods(x) & ~checkedOut")
        .insert_rule("checkedOut", [], "exists x: pay(x)")
        .send_rule("charge", ["x"], "pay(x) & ?ack(x)")
        .insert_rule("captured", ["x"], "?approved(x)")
        .insert_rule("refunded", ["x"], "?disputed(x)")
        .action_rule("refund", ["x"], "?disputed(x)")
        .build()
    )
    psp = (
        PeerBuilder("PSP")
        .database("clears", 1)
        .flat_in_queue("charge", 1)
        .flat_out_queue("approved", 1)
        .flat_out_queue("settle", 1)
        .flat_out_queue("ack", 1)
        .send_rule("approved", ["x"], "?charge(x) & clears(x)")
        .send_rule("settle", ["x"], "?charge(x) & clears(x)")
        .send_rule("ack", ["x"], "?charge(x)")
        .build()
    )
    return Composition([shop, psp, bank_peer()])


def standard_database() -> dict[str, Instance]:
    """Two goods; both clear, only ``g2`` is risky (the chargeback)."""
    return {
        "Shop": Instance({"goods": [("g1",), ("g2",)]}),
        "PSP": Instance({"clears": [("g1",), ("g2",)]}),
        "Bank": Instance({"risky": [("g2",)]}),
    }


#: Restrict the valuation sweep to the order identifiers (the fresh
#: value can never satisfy the antecedents).
STANDARD_CANDIDATES = {"x": ("g1", "g2")}

#: Safety (holds): captures only for orders the PSP clears -- the
#: ``approved`` message only ever carries cleared orders.
PROPERTY_CAPTURE_CLEARED = (
    "forall x: G( Shop.captured(x) -> PSP.clears(x) )"
)

#: Safety (holds): the bank only disputes settlements its risk
#: database flags.
PROPERTY_DISPUTE_HONEST = (
    "forall x: G( Bank.!disputed(x) -> Bank.risky(x) )"
)

#: Safety (VIOLATED): a refund implies the order was captured.  The
#: chargeback race: ``approved`` is lost while ``settle`` arrives, the
#: bank disputes, and the shop refunds an order it never captured.
PROPERTY_REFUND_AFTER_CAPTURE = (
    "forall x: G( Shop.refunded(x) -> Shop.captured(x) )"
)

#: Liveness (VIOLATED under lossy channels): payments are eventually
#: captured.
PROPERTY_PAYMENT_CAPTURED = (
    "forall x: G( Shop.pay(x) -> F Shop.captured(x) )"
)
