"""The paper's running example: the bank loan composition (Ex. 1.1/2.2).

Four peers, wired as in Figure 1:

* ``A``  -- the applicant's web service; the customer picks a loan product
  and an ``apply`` message is sent to the loan officer.
* ``O``  -- the loan officer's service (specified in full in the paper's
  Example 2.2): saves applications, requests credit ratings and credit
  histories from the credit agency, collects the officer's recommendation,
  forwards everything to the manager, and writes notification letters.
* ``M``  -- the loan manager's service: receives recommendation bundles
  and returns approve/deny decisions.
* ``CR`` -- the credit reporting agency: answers rating requests from its
  credit-record database and history requests from its accounts database.

Channels::

    A --apply-->  O --getRating-->  CR --rating-->   O
                  O --getHistory--> CR --history-->  O    (nested)
                  O --recommend-->  M  --decision--> O    (recommend nested)

Two scales are provided:

* ``gated=True`` (the default, used by the verifier benchmarks): each
  human acts at most once, enforced with propositional "already acted"
  state gates.  Propositional state atoms are ground, so the gates
  preserve input-boundedness; they shrink the reachable snapshot space by
  orders of magnitude without touching the message protocol.
* ``gated=False``: the paper-faithful free-running variant (humans may
  act forever), suitable for simulation and bounded exploration.
"""

from __future__ import annotations

from ..fo.instance import Instance
from ..spec.composition import Composition
from ..spec.peer import Peer, PeerBuilder

#: Credit categories, "poor" to "excellent" (Example 5.1's pre-defined list).
CREDIT_CATEGORIES = ("poor", "fair", "good", "excellent")

#: Loan products the applicant can pick from.
LOAN_PRODUCTS = ("small", "large")


def applicant_peer(gated: bool = True,
                   products: tuple[str, ...] = ("small",)) -> Peer:
    """Peer ``A``: the applicant fills in the application form."""
    product_menu = " | ".join(f'loan = "{p}"' for p in products)
    builder = (
        PeerBuilder("A")
        .database("me", 1)                       # the applicant's customer id
        .input("doApply", 2)                     # (cId, loan product)
        .flat_out_queue("apply", 2)              # (cId, loan)
    )
    if gated:
        builder.state("applied", 0)
        builder.input_rule(
            "doApply", ["id", "loan"],
            f"me(id) & ({product_menu}) & ~applied",
        )
        builder.insert_rule(
            "applied", [], "exists id, loan: doApply(id, loan)",
        )
    else:
        builder.input_rule(
            "doApply", ["id", "loan"], f"me(id) & ({product_menu})",
        )
    builder.send_rule("apply", ["id", "loan"], "doApply(id, loan)")
    return builder.build()


def officer_peer(gated: bool = True, buggy: bool = False) -> Peer:
    """Peer ``O``: the loan officer (the paper's Example 2.2, complete).

    Rule numbers in comments refer to the paper's display equations
    (1)-(10).  ``buggy=True`` seeds a policy violation: "poor"-rated
    applicants are *approved* (used to confirm the verifier finds it).
    """
    poor_decision = "approved" if buggy else "denied"
    builder = (
        PeerBuilder("O")
        .database("customer", 3)                 # (cId, ssn, name)
        .input("reccom", 2)                      # (cId, recommendation)
        .state("application", 2)                 # (cId, loan)
        .state("awaitsHist", 5)                  # (cId, ssn, name, loan, rating)
        .state("awaitsMgr", 7)                   # (+ account, balance)
        .action("letter", 4)                     # (cId, name, loan, decision)
        .flat_in_queue("apply", 2)
        .flat_in_queue("decision", 2)            # (cId, dec)
        .flat_in_queue("rating", 2)              # (ssn, category)
        .nested_in_queue("history", 3)           # (ssn, account, balance)
        .flat_out_queue("getRating", 1)          # (ssn)
        .flat_out_queue("getHistory", 1)         # (ssn)
        .nested_out_queue("recommend", 8)        # full bundle for the manager
    )
    if gated:
        # the officer recommends once, after a rating escalated the case
        builder.state("sawRating", 0)
        builder.state("recommended", 0)
        builder.insert_rule(
            "sawRating", [],
            'exists ssn, r: ?rating(ssn, r) '
            '& ~(r = "excellent" | r = "poor")',
        )
        builder.insert_rule(
            "recommended", [], "exists id, rec: reccom(id, rec)",
        )
        reccom_guard = " & sawRating & ~recommended"
    else:
        reccom_guard = ""
    (
        builder
        # (1) recommendation menu
        .input_rule(
            "reccom", ["id", "rec"],
            'exists ssn, name: customer(id, ssn, name) '
            f'& (rec = "approve" | rec = "deny"){reccom_guard}',
        )
        # (2) save incoming applications
        .insert_rule("application", ["id", "loan"], "?apply(id, loan)")
        # (3) ask the credit agency for a rating
        .send_rule(
            "getRating", ["ssn"],
            "exists id, loan, name: ?apply(id, loan) "
            "& customer(id, ssn, name)",
        )
        # (4)-(6) letter writing: auto-approve excellent, auto-deny poor,
        # otherwise follow the manager's decision
        .action_rule(
            "letter", ["id", "name", "loan", "dec"],
            'exists ssn: customer(id, ssn, name) & application(id, loan) & '
            '( (?rating(ssn, "excellent") & dec = "approved")'
            f' | (?rating(ssn, "poor") & dec = "{poor_decision}")'
            ' | ?decision(id, dec) )',
        )
        # (7) middling ratings: fetch the credit history
        .send_rule(
            "getHistory", ["ssn"],
            'exists r: ?rating(ssn, r) '
            '& ~(r = "excellent" | r = "poor")',
        )
        # (8) remember who awaits a history
        .insert_rule(
            "awaitsHist", ["id", "ssn", "name", "l", "r"],
            '?rating(ssn, r) & ~(r = "excellent" | r = "poor") '
            "& application(id, l) & customer(id, ssn, name)",
        )
        # (9) history arrived: ready for the manager
        .insert_rule(
            "awaitsMgr",
            ["id", "ssn", "name", "loan", "rating", "acc", "bal"],
            "?history(ssn, acc, bal) "
            "& awaitsHist(id, ssn, name, loan, rating)",
        )
        # (10) forward the bundle with the officer's recommendation
        .send_rule(
            "recommend",
            ["id", "ssn", "name", "loan", "rec", "rating", "acc", "bal"],
            "reccom(id, rec) "
            "& awaitsMgr(id, ssn, name, loan, rating, acc, bal)",
        )
    )
    return builder.build()


def manager_peer(gated: bool = True) -> Peer:
    """Peer ``M``: the loan manager decides escalated applications."""
    builder = (
        PeerBuilder("M")
        .database("custs", 1)                    # customer ids (mirror)
        .state("pending", 8)                     # saved recommendation bundle
        .input("decide", 2)                      # (cId, decision)
        .nested_in_queue("recommend", 8)
        .flat_out_queue("decision", 2)
        .insert_rule(
            "pending",
            ["id", "ssn", "name", "loan", "rec", "rating", "acc", "bal"],
            "?recommend(id, ssn, name, loan, rec, rating, acc, bal)",
        )
    )
    if gated:
        # the manager decides once, after a recommendation arrived
        builder.state("sawRec", 0)
        builder.state("decided", 0)
        # the queue-state proposition is ground, so this stays
        # input-bounded even though `pending` itself could not be tested
        builder.insert_rule("sawRec", [], "~empty_recommend")
        builder.insert_rule(
            "decided", [], "exists id, dec: decide(id, dec)",
        )
        builder.input_rule(
            "decide", ["id", "dec"],
            'custs(id) & (dec = "approved" | dec = "denied") '
            "& sawRec & ~decided",
        )
    else:
        builder.input_rule(
            "decide", ["id", "dec"],
            'custs(id) & (dec = "approved" | dec = "denied")',
        )
    builder.send_rule("decision", ["id", "dec"], "decide(id, dec)")
    return builder.build()


def credit_agency_peer() -> Peer:
    """Peer ``CR``: the credit reporting agency."""
    return (
        PeerBuilder("CR")
        .database("creditRecord", 2)             # (ssn, category)
        .database("accounts", 3)                 # (ssn, account, balance)
        .flat_in_queue("getRating", 1)
        .flat_in_queue("getHistory", 1)
        .flat_out_queue("rating", 2)
        .nested_out_queue("history", 3)
        .send_rule(
            "rating", ["ssn", "cat"],
            "?getRating(ssn) & creditRecord(ssn, cat)",
        )
        .send_rule(
            "history", ["ssn", "acc", "bal"],
            "?getHistory(ssn) & accounts(ssn, acc, bal)",
        )
        .build()
    )


def loan_composition(buggy_officer: bool = False,
                     gated: bool = True) -> Composition:
    """The complete four-peer loan composition (closed)."""
    return Composition([
        applicant_peer(gated=gated),
        officer_peer(gated=gated, buggy=buggy_officer),
        manager_peer(gated=gated),
        credit_agency_peer(),
    ])


def officer_side_composition(gated: bool = True) -> Composition:
    """The bank-side peers only (A, O, M): open towards the credit agency.

    Used for modular verification (Section 5): CR becomes the
    environment, and its behaviour is constrained only by an environment
    spec such as :data:`ENV_SPEC_RATING_CATEGORIES`.
    """
    return Composition([
        applicant_peer(gated=gated),
        officer_peer(gated=gated),
        manager_peer(gated=gated),
    ])


def credit_check_peer() -> Peer:
    """A focused officer fragment for the Section 5 demonstrations.

    The officer asks the credit agency (the environment) for one rating
    and records the reply, joined against the customer database.  All
    environment channels are flat, as Theorem 5.4's environment specs
    require, and the recorded state cannot accumulate garbage rows (the
    join pins the ssn), which keeps modular verification fast.
    """
    return (
        PeerBuilder("O")
        .database("customer", 3)                 # (cId, ssn, name)
        .input("ask", 1)                         # ssn to check
        .state("asked", 0)
        .state("gotRating", 2)                   # (ssn, category)
        .flat_in_queue("rating", 2)
        .flat_out_queue("getRating", 1)
        .input_rule(
            "ask", ["ssn"],
            "exists id, name: customer(id, ssn, name) & ~asked",
        )
        .insert_rule("asked", [], "exists ssn: ask(ssn)")
        .send_rule("getRating", ["ssn"], "ask(ssn)")
        .insert_rule(
            "gotRating", ["ssn", "r"],
            "?rating(ssn, r) & (exists id, name: customer(id, ssn, name))",
        )
        .build()
    )


def credit_check_composition() -> Composition:
    """The open single-peer composition for modular verification demos."""
    return Composition([credit_check_peer()])


#: Property for the credit-check composition: recorded ratings use known
#: categories.  Violated by an unconstrained environment, restored by a
#: source-observed rating-content spec.
PROPERTY_RECORDED_CATEGORIES_KNOWN = (
    "forall ssn, r: G( O.gotRating(ssn, r) -> "
    '(r = "poor" | r = "fair" | r = "good" | r = "excellent") )'
)

#: The rating-content environment spec, source-observed form.
ENV_SPEC_RATING_CONTENT = (
    "G forall ssn, r: !rating(ssn, r) -> "
    '(r = "poor" | r = "fair" | r = "good" | r = "excellent")'
)


def standard_database(category: str = "fair") -> dict[str, Instance]:
    """One applicant ``c1``/``s1`` with the given credit *category*."""
    if category not in CREDIT_CATEGORIES:
        raise ValueError(f"unknown credit category {category!r}")
    return {
        "A": Instance({"me": [("c1",)]}),
        "O": Instance({"customer": [("c1", "s1", "ann")]}),
        "M": Instance({"custs": [("c1",)]}),
        "CR": Instance({
            "creditRecord": [("s1", category)],
            "accounts": [("s1", "acct1", "high")],
        }),
    }


#: Property (11) of Example 3.2: every received application from a known
#: customer eventually results in an approval or denial letter.  This is a
#: *liveness* property; with lossy channels (or unfair scheduling) it is
#: violated, and the verifier produces the message-loss counterexample.
PROPERTY_RESPONSIVENESS = (
    "forall id, l, name, ssn: "
    "G( (O.?apply(id, l) & O.customer(id, ssn, name)) "
    "   -> F( O.letter(id, name, l, \"denied\") "
    "        | O.letter(id, name, l, \"approved\") ) )"
)

#: Property (12) of Example 3.2 (bank policy): approvals only for
#: applicants rated excellent or cleared by the manager.
PROPERTY_BANK_POLICY = (
    "forall id, name, loan: "
    "G( ( (exists ssn: CR.!rating(ssn, \"excellent\") "
    "                 & O.customer(id, ssn, name)) "
    "     | M.!decision(id, \"approved\") ) "
    "   B ~O.letter(id, name, loan, \"approved\") )"
)

#: The bank policy in pointwise form.  The literal (12) above is violated
#: on any run that writes an approved letter at all: ``G`` re-evaluates
#: the ``B`` subformula at the letter snapshot itself, where the
#: triggering rating/decision message has already been dequeued, so the
#: "before" condition has no earlier positions left to be satisfied in.
#: (See EXPERIMENTS.md, finding E1-F2.)  This variant states the same
#: policy pointwise: whenever an approved letter is *about to appear*
#: (present next step, absent now), the officer must be looking at an
#: excellent rating or an approval decision right now.
PROPERTY_BANK_POLICY_POINTWISE = (
    "forall id, name, loan: "
    "G( ( X O.letter(id, name, loan, \"approved\") ) "
    "   & ~O.letter(id, name, loan, \"approved\") "
    "   -> ( (exists ssn: O.?rating(ssn, \"excellent\") "
    "                    & O.customer(id, ssn, name)) "
    "      | O.?decision(id, \"approved\") ) )"
)

#: The bank-policy property for the open (bank-side) composition, where
#: the rating channel is read at the officer's end.
PROPERTY_BANK_POLICY_OPEN = (
    "forall id, name, loan: "
    "G( ( (exists ssn: O.?rating(ssn, \"excellent\") "
    "                 & O.customer(id, ssn, name)) "
    "     | M.!decision(id, \"approved\") ) "
    "   B ~O.letter(id, name, loan, \"approved\") )"
)

#: A related safety property: a letter is only written for customers with
#: a saved application.
PROPERTY_LETTER_NEEDS_APPLICATION = (
    "forall id, name, loan, dec: "
    "G( O.letter(id, name, loan, dec) -> O.application(id, loan) )"
)

#: Example 5.1's environment spec (for modular verification of the bank
#: side against the credit agency): rating replies carry a category from
#: the known list.
ENV_SPEC_RATING_CATEGORIES = (
    "G forall ssn: ?getRating(ssn) -> "
    "( !rating(ssn, \"poor\") | !rating(ssn, \"fair\") "
    "| !rating(ssn, \"good\") | !rating(ssn, \"excellent\") )"
)

#: Default closure-variable candidates for the standard database (sound
#: for the roles the variables play; dramatically prunes the valuation
#: enumeration).
STANDARD_CANDIDATES = {
    "id": ("c1",),
    "name": ("ann",),
    "ssn": ("s1",),
    "loan": ("small", "large"),
    "l": ("small", "large"),
    "dec": ("approved", "denied"),
}
