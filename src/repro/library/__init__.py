"""Ready-made compositions: the paper's loan example, e-commerce,
travel, payments/chargeback and ride-hailing dispatch applications in
the spirit of [11], and synthetic benchmark families."""

from . import dispatch, ecommerce, loan, payments, synthetic, travel

__all__ = ["dispatch", "ecommerce", "loan", "payments", "synthetic",
           "travel"]
