"""Ready-made compositions: the paper's loan example, e-commerce and
travel applications in the spirit of [11], and synthetic benchmark
families."""

from . import ecommerce, loan, synthetic, travel

__all__ = ["ecommerce", "loan", "synthetic", "travel"]
