"""A ride-hailing dispatch composition: offers, takes, and a loophole.

Three peers in the shape of a dispatch flow:

* ``Rider``  -- requests a ride to a place from its catalog and records
  the pickup when it happens;
* ``Hub``    -- matches requests against its fleet database and offers
  the ride to a driver stationed in the requested zone;
* ``Driver`` -- once an offer has arrived, takes a ride in some zone it
  works and drives to the pickup.

Channels::

    Rider --req--> Hub --offer--> Driver --pickup--> Rider

The modelling wart is deliberate and input-boundedness forces it into
the open: a flat-send rule may not read non-ground state (Section 3.1),
so the driver cannot remember *which* zone was offered -- only *that*
an offer arrived (a propositional ``sawOffer`` gate).  Its take menu
therefore ranges over every zone it works, and a driver that works
zones the rider never requests can show up there.  The properties
document both sides:

* :data:`PROPERTY_OFFERS_FROM_FLEET` (satisfied): the hub only offers
  rides its fleet database supports.
* :data:`PROPERTY_TAKE_NEEDS_OFFER` (satisfied): drivers only take
  rides after an offer arrived.
* :data:`PROPERTY_PICKUP_REQUESTED` (violated): pickups only happen at
  places the rider catalogs.  False -- the loophole above (the driver
  works a zone outside the rider's catalog).
* :data:`PROPERTY_REQUEST_SERVED` (violated): every request leads to a
  ride.  False under lossy channels.
"""

from __future__ import annotations

from ..fo.instance import Instance
from ..spec.composition import Composition
from ..spec.peer import Peer, PeerBuilder


def rider_peer() -> Peer:
    return (
        PeerBuilder("Rider")
        .database("places", 1)                 # places the rider goes
        .input("request", 1)
        .state("requested", 0)
        .state("riding", 1)
        .flat_in_queue("pickup", 1)
        .flat_out_queue("req", 1)
        # one-shot request gate (the loan domain's "already acted"
        # idiom): keeps the menu input-bounded and the product small
        .input_rule("request", ["z"], "places(z) & ~requested")
        .insert_rule("requested", [], "exists z: request(z)")
        .send_rule("req", ["z"], "request(z)")
        .insert_rule("riding", ["z"], "?pickup(z)")
        .build()
    )


def hub_peer() -> Peer:
    return (
        PeerBuilder("Hub")
        .database("fleet", 2)                  # (driver, zone) stationed
        .flat_in_queue("req", 1)
        .flat_out_queue("offer", 2)            # (driver, zone)
        .send_rule("offer", ["d", "z"], "?req(z) & fleet(d, z)")
        .build()
    )


def driver_peer() -> Peer:
    return (
        PeerBuilder("Driver")
        .database("works", 1)                  # zones the driver works
        .state("sawOffer", 0)                  # an offer arrived (0-ary:
        .input("take", 1)                      # flat sends cannot read
        .action("drive", 1)                    # non-ground state)
        .flat_in_queue("offer", 2)
        .flat_out_queue("pickup", 1)
        .insert_rule("sawOffer", [], "exists d, z: ?offer(d, z)")
        .input_rule("take", ["z"], "works(z) & sawOffer")
        .action_rule("drive", ["z"], "take(z)")
        .send_rule("pickup", ["z"], "take(z)")
        .build()
    )


def dispatch_composition() -> Composition:
    """The closed three-peer dispatch composition."""
    return Composition([rider_peer(), hub_peer(), driver_peer()])


def standard_database() -> dict[str, Instance]:
    """The rider goes downtown; the driver also works the airport.

    ``works`` strictly contains the rider's catalog, which is what
    makes :data:`PROPERTY_PICKUP_REQUESTED` falsifiable.
    """
    return {
        "Rider": Instance({"places": [("downtown",)]}),
        "Hub": Instance({"fleet": [("d1", "downtown")]}),
        "Driver": Instance({"works": [("downtown",), ("airport",)]}),
    }


#: Restrict the valuation sweep to the zone/driver identifiers.
STANDARD_CANDIDATES = {
    "z": ("downtown", "airport"),
    "d": ("d1",),
}

#: Safety (holds): the hub only offers rides its fleet supports.
PROPERTY_OFFERS_FROM_FLEET = (
    "forall d, z: G( Hub.!offer(d, z) -> Hub.fleet(d, z) )"
)

#: Safety (holds): a driver only takes rides once an offer arrived.
PROPERTY_TAKE_NEEDS_OFFER = (
    "forall z: G( Driver.take(z) -> Driver.sawOffer )"
)

#: Safety (VIOLATED): pickups happen only at places the rider catalogs.
#: The driver's take menu ranges over all of ``works``, so a zone
#: outside the rider's catalog (the airport) can be taken and driven.
PROPERTY_PICKUP_REQUESTED = (
    "forall z: G( Rider.riding(z) -> Rider.places(z) )"
)

#: Liveness (VIOLATED under lossy channels): requests lead to rides.
PROPERTY_REQUEST_SERVED = (
    "forall z: G( Rider.request(z) -> F Rider.riding(z) )"
)
