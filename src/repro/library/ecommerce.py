"""An e-commerce composition in the spirit of the paper's [11] sites.

The paper's input-boundedness expressivity claim rests on having modeled
"a computer shopping Web site similar to the Dell computer shopping site"
and others.  This module provides a store composition with the shape of
those models, extended with the message-passing the PODS'06 paper adds:

* ``Store`` -- the shop front: the customer picks a product from the
  catalog, the store requests a payment authorization from the payment
  processor, and ships on approval (an ``ship`` action row).
* ``Pay``   -- the payment processor: authorizes or declines a charge by
  consulting its card database.
* ``Wh``    -- the warehouse: receives ship orders and records
  fulfilment; sends back a stock-out notice when the product is not in
  its stock database.

Channels::

    Store --charge--> Pay --auth--> Store --shipReq--> Wh --stockout--> Store
"""

from __future__ import annotations

from ..fo.instance import Instance
from ..spec.composition import Composition
from ..spec.peer import Peer, PeerBuilder


def store_peer() -> Peer:
    return (
        PeerBuilder("Store")
        .database("catalog", 2)                # (product, price-class)
        .input("buy", 2)                       # (product, card)
        .state("ordered", 2)                   # (product, card)
        .state("paid", 2)                      # (product, card)
        .action("ship", 2)                     # (product, card)
        .action("reject", 2)                   # (product, card)
        .flat_in_queue("auth", 3)              # (product, card, verdict)
        .flat_in_queue("stockout", 1)          # (product)
        .flat_out_queue("charge", 2)           # (product, card)
        .flat_out_queue("shipReq", 2)          # (product, card)
        .state("unavailable", 1)               # (product)
        .input_rule(
            "buy", ["p", "card"],
            'exists cls: catalog(p, cls) & (card = "visa" | card = "amex")',
        )
        .insert_rule("ordered", ["p", "card"], "buy(p, card)")
        .send_rule("charge", ["p", "card"], "buy(p, card)")
        .insert_rule(
            "paid", ["p", "card"],
            '?auth(p, card, "ok") & ordered(p, card)',
        )
        .action_rule(
            "ship", ["p", "card"],
            '?auth(p, card, "ok") & ordered(p, card)',
        )
        .action_rule(
            "reject", ["p", "card"],
            '?auth(p, card, "declined") & ordered(p, card)',
        )
        # flat-send rules may not read non-ground state (Section 3.1,
        # condition 2), so the ship request triggers on the auth message
        # alone; the payment processor only authorizes charged orders
        .send_rule(
            "shipReq", ["p", "card"],
            '?auth(p, card, "ok")',
        )
        .insert_rule("unavailable", ["p"], "?stockout(p)")
        .build()
    )


def payment_peer() -> Peer:
    return (
        PeerBuilder("Pay")
        .database("cards", 2)                  # (card, standing: good|bad)
        .flat_in_queue("charge", 2)
        .flat_out_queue("auth", 3)
        .send_rule(
            "auth", ["p", "card", "verdict"],
            '?charge(p, card) & '
            '( (cards(card, "good") & verdict = "ok")'
            ' | (cards(card, "bad") & verdict = "declined") )',
        )
        .build()
    )


def warehouse_peer() -> Peer:
    return (
        PeerBuilder("Wh")
        .database("stock", 1)                  # products on hand
        .state("fulfilled", 2)                 # (product, card)
        .flat_in_queue("shipReq", 2)
        .flat_out_queue("stockout", 1)
        .insert_rule(
            "fulfilled", ["p", "card"],
            "?shipReq(p, card) & stock(p)",
        )
        .send_rule(
            "stockout", ["p"],
            "exists card: ?shipReq(p, card) & ~stock(p)",
        )
        .build()
    )


def ecommerce_composition() -> Composition:
    """The closed three-peer store composition."""
    return Composition([store_peer(), payment_peer(), warehouse_peer()])


def standard_database(card_standing: str = "good",
                      in_stock: bool = True) -> dict[str, Instance]:
    """One product ``widget``; card standings and stock configurable."""
    return {
        "Store": Instance({"catalog": [("widget", "cheap")]}),
        "Pay": Instance({
            "cards": [("visa", card_standing), ("amex", card_standing)]
        }),
        "Wh": Instance({"stock": [("widget",)] if in_stock else []}),
    }


#: Safety (holds): shipments only for paid orders from the catalog.
PROPERTY_SHIP_REQUIRES_AUTH = (
    "forall p, card: "
    "G( Store.ship(p, card) -> Store.ordered(p, card) )"
)

#: Safety (holds): nothing ships on a declined authorization --
#: a ship action always coincides with a positive auth message.
PROPERTY_NO_SHIP_ON_DECLINE = (
    "forall p, card: "
    'G( Store.ship(p, card) -> ~Store.reject(p, card) )'
)

#: Safety (holds): payment processor answers reflect its card database.
PROPERTY_AUTH_HONEST = (
    "forall p, card: "
    'G( Pay.!auth(p, card, "ok") -> Pay.cards(card, "good") )'
)

#: Liveness (fails under lossy channels): every order is eventually
#: shipped or rejected.
PROPERTY_ORDER_RESOLVED = (
    "forall p, card: "
    "G( Store.buy(p, card) "
    "   -> F( Store.ship(p, card) | Store.reject(p, card) ) )"
)
