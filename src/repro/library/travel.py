"""A travel-booking composition in the spirit of the paper's [11] models.

An Expedia-like flow with two independent suppliers -- nested messages
carry *sets* of offers, exercising the nested-queue machinery:

* ``Agency``  -- the traveler picks a destination; the agency fans out
  quote requests to the airline and the hotel chain, collects the offer
  sets, and lets the traveler book one flight.
* ``Air``     -- the airline: replies to a quote request with the set of
  flights serving the destination (a nested message).
* ``Hotel``   -- the hotel chain: same shape for rooms.

Channels::

    Agency --qfly--> Air   --flights--> Agency      (flights nested)
    Agency --qhotel--> Hotel --rooms--> Agency      (rooms nested)
    Agency --bookFly--> Air  --fconf--> Agency
"""

from __future__ import annotations

from ..fo.instance import Instance
from ..spec.composition import Composition
from ..spec.peer import Peer, PeerBuilder


def agency_peer() -> Peer:
    return (
        PeerBuilder("Agency")
        .database("dests", 1)                   # destinations on offer
        .input("choose", 1)                     # destination
        .input("book", 1)                       # destination to book
        .state("searching", 1)                  # destination
        .state("flightOffers", 2)               # (flight, dest)
        .state("roomOffers", 2)                 # (room, dest)
        .state("booked", 2)                     # (flight, dest)
        .action("itinerary", 2)                 # (flight, dest)
        .flat_out_queue("qfly", 1)
        .flat_out_queue("qhotel", 1)
        .flat_out_queue("bookFly", 1)
        .nested_in_queue("flights", 2)          # (flight, dest)
        .nested_in_queue("rooms", 2)            # (room, dest)
        .flat_in_queue("fconf", 2)              # (flight, dest)
        .input_rule("choose", ["d"], "dests(d)")
        .insert_rule("searching", ["d"], "choose(d)")
        .send_rule("qfly", ["d"], "choose(d)")
        .send_rule("qhotel", ["d"], "choose(d)")
        .insert_rule("flightOffers", ["f", "d"], "?flights(f, d)")
        .insert_rule("roomOffers", ["r", "d"], "?rooms(r, d)")
        # the traveler books the destination searched most recently
        .input_rule("book", ["d"], "prev_choose(d)")
        .send_rule("bookFly", ["d"], "book(d)")
        .insert_rule("booked", ["f", "d"], "?fconf(f, d)")
        .action_rule("itinerary", ["f", "d"], "?fconf(f, d)")
        .build()
    )


def airline_peer() -> Peer:
    return (
        PeerBuilder("Air")
        .database("flights_db", 2)              # (flight, dest)
        .state("sold", 2)
        .flat_in_queue("qfly", 1)
        .flat_in_queue("bookFly", 1)
        .nested_out_queue("flights", 2)
        .flat_out_queue("fconf", 2)
        .send_rule(
            "flights", ["f", "d"],
            "?qfly(d) & flights_db(f, d)",
        )
        # several flights may serve the destination: the flat-send
        # discipline (nondeterministic pick or error flag) applies
        .send_rule(
            "fconf", ["f", "d"],
            "?bookFly(d) & flights_db(f, d)",
        )
        .insert_rule(
            "sold", ["f", "d"],
            "?bookFly(d) & flights_db(f, d)",
        )
        .build()
    )


def hotel_peer() -> Peer:
    return (
        PeerBuilder("Hotel")
        .database("rooms_db", 2)                # (room, dest)
        .flat_in_queue("qhotel", 1)
        .nested_out_queue("rooms", 2)
        .send_rule(
            "rooms", ["r", "d"],
            "?qhotel(d) & rooms_db(r, d)",
        )
        .build()
    )


def travel_composition() -> Composition:
    """The closed three-peer travel composition."""
    return Composition([agency_peer(), airline_peer(), hotel_peer()])


def standard_database() -> dict[str, Instance]:
    """One destination with one flight and one room."""
    return {
        "Agency": Instance({"dests": [("rome",)]}),
        "Air": Instance({"flights_db": [("fl1", "rome")]}),
        "Hotel": Instance({"rooms_db": [("rm1", "rome")]}),
    }


#: Safety (holds): itineraries only for flights the airline confirmed,
#: which in turn requires the flight to exist in the airline's database.
PROPERTY_ITINERARY_CONFIRMED = (
    "forall f, d: "
    "G( Agency.itinerary(f, d) -> Air.flights_db(f, d) )"
)

#: Safety (holds): collected flight offers serve a destination that was
#: searched at some point (offers come only from quote replies).
PROPERTY_OFFERS_FROM_CATALOG = (
    "forall f, d: "
    "G( Agency.flightOffers(f, d) -> Air.flights_db(f, d) )"
)

#: Liveness (fails under lossy channels): a booking is eventually
#: confirmed with some flight.
PROPERTY_BOOKING_CONFIRMED = (
    "forall d: "
    "G( Agency.book(d) -> F Agency.itinerary(\"fl1\", d) )"
)
