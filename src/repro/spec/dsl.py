"""A textual specification language for peers and compositions.

The paper's Introduction motivates verification by high-level web-service
specification tools (WebML and relatives): the specification *is* the
artifact to verify.  This module provides that surface: a small
declarative language from which :class:`~repro.spec.Composition` values
are loaded, so specifications can live in version-controlled ``.dws``
files next to the properties that govern them.

Syntax (line-oriented; ``#`` starts a comment)::

    peer O {
        database customer/3
        state    application/2
        state    applied/0
        input    reccom/2
        action   letter/4
        in  flat   apply/2
        in  nested history/3
        out flat   getRating/1
        out nested recommend/8

        input  reccom(id, rec) <- exists ssn, name:
                                  customer(id, ssn, name)
                                  & (rec = "approve" | rec = "deny")
        insert application(id, loan) <- ?apply(id, loan)
        delete application(id, loan) <- false
        action letter(id, n, l, d)   <- ...
        send   getRating(ssn)        <- ...
    }

    database O {
        customer: ("c1", "s1", "ann"), ("c2", "s2", "bob")
    }

Rule bodies may continue onto following lines: a rule extends until the
next statement keyword or closing brace.  :func:`load_composition` parses
a whole document; :func:`load_databases` extracts the ``database`` blocks.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..errors import ParseError, SpecificationError
from ..fo.instance import Instance
from ..fo.terms import Value, value_sort_key
from .composition import Composition
from .peer import Peer, PeerBuilder

_DECL_RE = re.compile(
    r"^(database|state|input|action)\s+([A-Za-z_]\w*)\s*/\s*(\d+)$"
)
_QUEUE_RE = re.compile(
    r"^(in|out)\s+(flat|nested)\s+([A-Za-z_]\w*)\s*/\s*(\d+)$"
)
_RULE_RE = re.compile(
    r"^(input|insert|delete|action|send)\s+([A-Za-z_]\w*)\s*"
    r"\(([^)]*)\)\s*<-\s*(.*)$", re.DOTALL,
)
_RULE_NOARGS_RE = re.compile(
    r"^(input|insert|delete|action|send)\s+([A-Za-z_]\w*)\s*"
    r"<-\s*(.*)$", re.DOTALL,
)
_PEER_RE = re.compile(r"^peer\s+([A-Za-z_]\w*)\s*\{$")
_DB_RE = re.compile(r"^database\s+([A-Za-z_]\w*)\s*\{$")
_ROWS_RE = re.compile(r"^([A-Za-z_]\w*)\s*:\s*(.*)$", re.DOTALL)

_STATEMENT_START = re.compile(
    r"^(database|state|input|action|insert|delete|send|property\s"
    r"|in\s|out\s|\})"
)


def _strip_comments(text: str) -> list[str]:
    lines = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        lines.append(line)
    return lines


def _join_continuations(lines: list[str]) -> list[str]:
    """Merge rule bodies that continue over several lines.

    A line belongs to the previous statement when it is indented content
    that does not itself start a new statement.
    """
    merged: list[str] = []
    for line in lines:
        stripped = line.strip()
        if not stripped:
            continue
        if (merged
                and not _STATEMENT_START.match(stripped)
                and not _PEER_RE.match(stripped)
                and not _DB_RE.match(stripped)
                and "<-" not in stripped
                and not _ROWS_RE.match(stripped)
                and merged[-1] not in ("}",)):
            merged[-1] = merged[-1] + " " + stripped
        else:
            merged.append(stripped)
    return merged


def _parse_row_list(text: str, where: str) -> list[tuple[Value, ...]]:
    """Parse ``("a", 1), ("b", 2)`` into rows of values."""
    rows: list[tuple[Value, ...]] = []
    rest = text.strip()
    while rest:
        if not rest.startswith("("):
            raise ParseError(f"{where}: expected '(' in row list: {rest!r}")
        end = rest.index(")")
        inner = rest[1:end]
        row: list[Value] = []
        for piece in filter(None, (p.strip() for p in inner.split(","))):
            if piece.startswith('"') and piece.endswith('"'):
                row.append(piece[1:-1])
            elif re.fullmatch(r"-?\d+", piece):
                row.append(int(piece))
            else:
                raise ParseError(
                    f"{where}: row values must be quoted strings or "
                    f"integers, got {piece!r}"
                )
        rows.append(tuple(row))
        rest = rest[end + 1:].lstrip()
        if rest.startswith(","):
            rest = rest[1:].lstrip()
        elif rest:
            raise ParseError(f"{where}: expected ',' between rows: {rest!r}")
    return rows


def _apply_declaration(builder: PeerBuilder, line: str, where: str) -> bool:
    match = _DECL_RE.match(line)
    if match:
        kind, name, arity = match.groups()
        getattr(builder, kind)(name, int(arity))
        return True
    match = _QUEUE_RE.match(line)
    if match:
        direction, shape, name, arity = match.groups()
        method = f"{shape}_{'in' if direction == 'in' else 'out'}_queue"
        getattr(builder, method)(name, int(arity))
        return True
    return False


def _apply_rule(builder: PeerBuilder, line: str, where: str) -> bool:
    match = _RULE_RE.match(line)
    if match:
        kind, target, head_text, body = match.groups()
        head = [h.strip() for h in head_text.split(",") if h.strip()]
    else:
        match = _RULE_NOARGS_RE.match(line)
        if not match:
            return False
        kind, target, body = match.groups()
        head = []
    method = {
        "input": builder.input_rule,
        "insert": builder.insert_rule,
        "delete": builder.delete_rule,
        "action": builder.action_rule,
        "send": builder.send_rule,
    }[kind]
    method(target, head, body.strip())
    return True


def parse_peer_block(name: str, lines: list[str]) -> Peer:
    """Parse the statements of one ``peer`` block."""
    builder = PeerBuilder(name)
    where = f"peer {name}"
    for line in lines:
        if _apply_declaration(builder, line, where):
            continue
        if _apply_rule(builder, line, where):
            continue
        raise ParseError(f"{where}: cannot parse statement {line!r}")
    return builder.build()


def load_composition(text: str) -> Composition:
    """Parse every ``peer`` block of *text* into a composition."""
    peers: list[Peer] = []
    lines = _join_continuations(_strip_comments(text))
    i = 0
    while i < len(lines):
        line = lines[i]
        peer_match = _PEER_RE.match(line)
        db_match = _DB_RE.match(line)
        if peer_match:
            block: list[str] = []
            i += 1
            while i < len(lines) and lines[i] != "}":
                block.append(lines[i])
                i += 1
            if i == len(lines):
                raise ParseError(
                    f"peer {peer_match.group(1)}: missing closing brace"
                )
            peers.append(parse_peer_block(peer_match.group(1), block))
        elif db_match:
            while i < len(lines) and lines[i] != "}":
                i += 1
        elif _PROPERTY_RE.match(line):
            pass  # properties are collected by load_properties()
        elif line:
            raise ParseError(f"cannot parse top-level statement {line!r}")
        i += 1
    if not peers:
        raise SpecificationError("no peer blocks found")
    return Composition(peers)


def load_databases(text: str) -> dict[str, Instance]:
    """Parse every ``database <peer>`` block of *text*."""
    out: dict[str, Instance] = {}
    lines = _join_continuations(_strip_comments(text))
    i = 0
    while i < len(lines):
        db_match = _DB_RE.match(lines[i])
        if not db_match:
            # skip over peer blocks and stray lines
            if _PEER_RE.match(lines[i]):
                while i < len(lines) and lines[i] != "}":
                    i += 1
            i += 1
            continue
        peer_name = db_match.group(1)
        relations: dict[str, list[tuple[Value, ...]]] = {}
        i += 1
        while i < len(lines) and lines[i] != "}":
            rows_match = _ROWS_RE.match(lines[i])
            if not rows_match:
                raise ParseError(
                    f"database {peer_name}: cannot parse {lines[i]!r}"
                )
            rel, row_text = rows_match.groups()
            relations[rel] = _parse_row_list(
                row_text, f"database {peer_name}.{rel}"
            )
            i += 1
        if i == len(lines):
            raise ParseError(
                f"database {peer_name}: missing closing brace"
            )
        out[peer_name] = Instance(relations)
        i += 1
    return out


_PROPERTY_RE = re.compile(r"^property\s+([A-Za-z_]\w*)\s*:\s*(.*)$",
                          re.DOTALL)


def load_properties(text: str) -> dict[str, str]:
    """Parse every ``property <name>: <ltlfo>`` statement of *text*.

    Properties are returned as raw LTL-FO text; callers parse them
    against the loaded composition's schema (``verify`` does this
    automatically).  A property extends until the next top-level
    statement, like rule bodies.
    """
    out: dict[str, str] = {}
    lines = _join_continuations(_strip_comments(text))
    i = 0
    while i < len(lines):
        if _PEER_RE.match(lines[i]) or _DB_RE.match(lines[i]):
            while i < len(lines) and lines[i] != "}":
                i += 1
            i += 1
            continue
        match = _PROPERTY_RE.match(lines[i])
        if match:
            name, body = match.groups()
            if name in out:
                raise ParseError(f"duplicate property name {name!r}")
            out[name] = body.strip()
        i += 1
    return out


# -- raw document IR (pre-build structural scanning) -------------------------
#
# ``repro lint`` needs to report structural mistakes -- a send into an
# undeclared queue, a head arity mismatch -- as diagnostics rather than
# crash in PeerBuilder.  scan_document() re-reads the surface syntax
# into a declaration/rule IR without building peers, so the analyzer can
# check structure first and only attempt the full build when it is safe.


@dataclass(frozen=True, slots=True)
class RawDecl:
    """One relation declaration as written: ``kind name/arity``."""

    kind: str          # database | state | input | action | in | out
    name: str
    arity: int
    nested: bool = False


@dataclass(frozen=True, slots=True)
class RawRule:
    """One rule as written: ``kind target(head) <- body``."""

    kind: str          # input | insert | delete | action | send
    target: str
    head: tuple[str, ...]
    body: str


@dataclass(frozen=True, slots=True)
class RawPeer:
    """One ``peer`` block, declarations and rules in document order."""

    name: str
    decls: tuple[RawDecl, ...]
    rules: tuple[RawRule, ...]

    def decl(self, name: str) -> RawDecl | None:
        for d in self.decls:
            if d.name == name:
                return d
        return None


@dataclass(frozen=True, slots=True)
class RawDocument:
    """The scanned document: peers plus property names (bodies unparsed)."""

    peers: tuple[RawPeer, ...] = ()
    properties: tuple[str, ...] = field(default_factory=tuple)


def _scan_peer_block(name: str, lines: list[str]) -> RawPeer:
    decls: list[RawDecl] = []
    rules: list[RawRule] = []
    for line in lines:
        match = _DECL_RE.match(line)
        if match:
            kind, rel, arity = match.groups()
            decls.append(RawDecl(kind, rel, int(arity)))
            continue
        match = _QUEUE_RE.match(line)
        if match:
            direction, shape, rel, arity = match.groups()
            decls.append(RawDecl(direction, rel, int(arity),
                                 nested=(shape == "nested")))
            continue
        match = _RULE_RE.match(line)
        if match:
            kind, target, head_text, body = match.groups()
            head = tuple(h.strip() for h in head_text.split(",")
                         if h.strip())
            rules.append(RawRule(kind, target, head, body.strip()))
            continue
        match = _RULE_NOARGS_RE.match(line)
        if match:
            kind, target, body = match.groups()
            rules.append(RawRule(kind, target, (), body.strip()))
            continue
        raise ParseError(f"peer {name}: cannot parse statement {line!r}")
    return RawPeer(name, tuple(decls), tuple(rules))


def scan_document(text: str) -> RawDocument:
    """Scan *text* into the raw IR without building peers.

    Raises :class:`ParseError` only for text that does not match the
    surface grammar at all; structural mistakes (undeclared targets,
    arity clashes, duplicate declarations) scan fine and are left for
    the analyzer to diagnose.
    """
    peers: list[RawPeer] = []
    properties: list[str] = []
    lines = _join_continuations(_strip_comments(text))
    i = 0
    while i < len(lines):
        line = lines[i]
        peer_match = _PEER_RE.match(line)
        db_match = _DB_RE.match(line)
        prop_match = _PROPERTY_RE.match(line)
        if peer_match:
            block: list[str] = []
            i += 1
            while i < len(lines) and lines[i] != "}":
                block.append(lines[i])
                i += 1
            if i == len(lines):
                raise ParseError(
                    f"peer {peer_match.group(1)}: missing closing brace"
                )
            peers.append(_scan_peer_block(peer_match.group(1), block))
        elif db_match:
            while i < len(lines) and lines[i] != "}":
                i += 1
        elif prop_match:
            properties.append(prop_match.group(1))
        elif line:
            raise ParseError(f"cannot parse top-level statement {line!r}")
        i += 1
    return RawDocument(tuple(peers), tuple(properties))


# -- emission (the inverse surface) ------------------------------------------
#
# The fuzzer persists generated compositions as replayable ``.dws``
# corpus files, and the round-trip oracle demands that what we write is
# what we parse: ``load_document(dump_document(c, dbs, props))`` must
# reproduce the composition structurally (peers, schemas, rules and all;
# see :func:`compositions_equal`).  Formula ``__str__`` is already a
# parseable rendering (the FO parser accepts ``exists x. (...)`` and
# resolves bare queue names against the schema), so emission is purely
# a matter of laying out declarations, rules, rows and properties in
# the line-oriented surface grammar.

_SAFE_STRING_RE = re.compile(r'[^"#\\\n\r]*\Z')


def _emit_value(value: Value, where: str) -> str:
    if isinstance(value, bool):  # bool is an int subclass; reject early
        raise SpecificationError(f"{where}: booleans are not domain values")
    if isinstance(value, int):
        return str(value)
    if not _SAFE_STRING_RE.match(value):
        raise SpecificationError(
            f"{where}: string value {value!r} cannot be emitted "
            "(quotes, comments and newlines do not round-trip)"
        )
    return f'"{value}"'


def _check_line(line: str, where: str) -> str:
    """Refuse to emit text the comment stripper would corrupt."""
    if "#" in line or "\n" in line:
        raise SpecificationError(
            f"{where}: rendered text {line!r} cannot be emitted "
            "('#' starts a comment in the surface syntax)"
        )
    return line


def dump_peer(peer: Peer) -> str:
    """Emit one ``peer`` block (declarations, then rules, in order)."""
    where = f"peer {peer.name}"
    lines = [f"peer {peer.name} {{"]
    for kind, symbols in (("database", peer.database),
                          ("state", peer.states),
                          ("input", peer.inputs),
                          ("action", peer.actions)):
        for sym in symbols:
            lines.append(f"    {kind:8s} {sym.name}/{sym.arity}")
    for direction, symbols in (("in", peer.in_queues),
                               ("out", peer.out_queues)):
        for sym in symbols:
            shape = "nested" if sym.nested else "flat"
            lines.append(f"    {direction:3s} {shape:6s} "
                         f"{sym.name}/{sym.arity}")
    if peer.rules:
        lines.append("")
    for rule in peer.rules:
        head = ", ".join(v.name for v in rule.head)
        target = f"{rule.target}({head})" if head else rule.target
        body = str(rule.body)
        lines.append(_check_line(
            f"    {rule.kind.value:6s} {target} <- {body}", where
        ))
    lines.append("}")
    return "\n".join(lines)


def dump_composition(composition: Composition) -> str:
    """Emit every peer of *composition* as ``.dws`` text."""
    return "\n\n".join(dump_peer(p) for p in composition.peers)


def dump_databases(databases: dict[str, Instance]) -> str:
    """Emit ``database <peer>`` blocks (non-empty relations only)."""
    blocks = []
    for peer_name in sorted(databases):
        instance = databases[peer_name]
        rows_lines = []
        for rel, rows in instance.items():
            if not rows:
                continue
            where = f"database {peer_name}.{rel}"
            rendered = ", ".join(
                "(" + ", ".join(_emit_value(v, where) for v in row) + ")"
                for row in sorted(
                    rows, key=lambda t: tuple(map(value_sort_key, t))
                )
            )
            rows_lines.append(_check_line(f"    {rel}: {rendered}", where))
        if not rows_lines:
            continue
        blocks.append(f"database {peer_name} {{\n"
                      + "\n".join(rows_lines) + "\n}")
    return "\n\n".join(blocks)


def dump_document(composition: Composition,
                  databases: dict[str, Instance] | None = None,
                  properties: dict[str, str] | None = None,
                  header: str | None = None) -> str:
    """Emit a complete document: peers, databases, properties.

    The inverse of :func:`load_document` up to formatting:
    ``load_document(dump_document(c, dbs, props))`` returns a
    structurally equal composition (:func:`compositions_equal`), equal
    database instances, and the same property texts modulo whitespace.
    """
    parts = []
    if header:
        parts.append("\n".join(
            f"# {line}".rstrip() for line in header.splitlines()
        ))
    parts.append(dump_composition(composition))
    if databases:
        block = dump_databases(databases)
        if block:
            parts.append(block)
    if properties:
        prop_lines = []
        for name, text in properties.items():
            flat = " ".join(text.split())
            prop_lines.append(_check_line(
                f"property {name}: {flat}", f"property {name}"
            ))
        parts.append("\n".join(prop_lines))
    return "\n\n".join(parts) + "\n"


def compositions_equal(a: Composition, b: Composition) -> bool:
    """Structural equality of two compositions.

    Peers are frozen dataclasses whose fields (schemas, rules, formula
    ASTs) all define structural equality, so comparing the peer tuples
    compares everything down to rule bodies.
    """
    return a.peers == b.peers


def load(text: str) -> tuple[Composition, dict[str, Instance]]:
    """Parse a full document: the composition and its databases."""
    return load_composition(text), load_databases(text)


def load_document(text: str) -> tuple[
        Composition, dict[str, Instance], dict[str, str]]:
    """Parse a full document including its ``property`` statements."""
    return (load_composition(text), load_databases(text),
            load_properties(text))
