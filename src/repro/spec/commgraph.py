"""The static communication graph of a composition.

Nodes are the ``(peer, rule)`` occurrences and the ``(peer, queue)``
channel endpoints of a composition; edges record the three ways data
moves through it:

* ``send``    -- a send rule enqueues into its target channel;
* ``receive`` -- a rule of the receiver peer reads a channel's payload
  (``?Q`` atoms in its body), with the atom's polarity recorded;
* ``derive``  -- an intra-peer head/body dependency: a rule writing a
  local relation feeds every rule of the same peer that reads it (for
  input relations, reads of the derived ``prev_I`` symbol count too).

The graph is the shared substrate of the interprocedural analyzer
passes (:mod:`repro.analysis.flow`, :mod:`repro.analysis.provenance`)
and of the cost model: the DWV5xx deadlock detector reads the
channel-dependency quotient (channel ``q`` *waits for* channel ``p``
when some producer of ``q`` positively reads ``p``), and the dropped-
message detector runs a backward fixpoint over ``receive``/``send``
paths.  It is deliberately a plain syntactic object -- no abstraction
is baked in, so each pass applies its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from ..fo import formulas as fo
from ..fo.schema import prev_name
from .composition import Channel, Composition
from .rules import Rule, RuleKind


@dataclass(frozen=True, slots=True)
class RuleNode:
    """One reaction rule of one peer (``index`` = position in the peer)."""

    peer: str
    kind: str       # the RuleKind value ("insert", "send", ...)
    target: str
    index: int

    def label(self) -> str:
        return f"peer {self.peer}, {self.kind} rule for {self.target}"


@dataclass(frozen=True, slots=True)
class QueueNode:
    """One channel (queue) of the composition."""

    name: str

    def label(self) -> str:
        return f"queue {self.name}"


Node = Union[RuleNode, QueueNode]


@dataclass(frozen=True, slots=True)
class CommEdge:
    """One dependency edge; ``label`` names the carrying relation."""

    src: Node
    dst: Node
    kind: str       # "send" | "receive" | "derive"
    label: str
    positive: bool = True


def formula_polarities(formula: fo.Formula,
                       positive: bool = True,
                       acc: dict[str, set[bool]] | None = None,
                       ) -> dict[str, set[bool]]:
    """Map each relation to the polarities it occurs under in *formula*."""
    if acc is None:
        acc = {}
    if isinstance(formula, fo.Atom):
        acc.setdefault(formula.rel, set()).add(positive)
    elif isinstance(formula, fo.Not):
        formula_polarities(formula.body, not positive, acc)
    elif isinstance(formula, fo.Implies):
        formula_polarities(formula.antecedent, not positive, acc)
        formula_polarities(formula.consequent, positive, acc)
    elif isinstance(formula, (fo.And, fo.Or)):
        for child in formula.children:
            formula_polarities(child, positive, acc)
    elif isinstance(formula, (fo.Exists, fo.Forall)):
        formula_polarities(formula.body, positive, acc)
    return acc


@dataclass
class CommGraph:
    """The communication graph; query through the accessors below."""

    composition: Composition
    rule_nodes: tuple[RuleNode, ...]
    queue_nodes: tuple[QueueNode, ...]
    edges: tuple[CommEdge, ...]
    _succ: dict[Node, tuple[CommEdge, ...]] = field(repr=False)
    _pred: dict[Node, tuple[CommEdge, ...]] = field(repr=False)
    _rules: dict[RuleNode, Rule] = field(repr=False)

    def nodes(self) -> Iterator[Node]:
        yield from self.rule_nodes
        yield from self.queue_nodes

    def successors(self, node: Node) -> tuple[CommEdge, ...]:
        return self._succ.get(node, ())

    def predecessors(self, node: Node) -> tuple[CommEdge, ...]:
        return self._pred.get(node, ())

    def rule(self, node: RuleNode) -> Rule:
        return self._rules[node]

    def channel(self, name: str) -> Channel:
        return self.composition.channel(name)

    def producers(self, queue: str) -> tuple[RuleNode, ...]:
        """Send rules enqueuing into channel *queue* (sender side)."""
        node = QueueNode(queue)
        return tuple(e.src for e in self.predecessors(node)
                     if e.kind == "send")

    def consumers(self, queue: str) -> tuple[RuleNode, ...]:
        """Receiver-side rules whose body mentions channel *queue*."""
        node = QueueNode(queue)
        return tuple(e.dst for e in self.successors(node)
                     if e.kind == "receive")

    def waits_for(self, queue: str) -> tuple[str, ...]:
        """Channels some producer of *queue* positively reads.

        The channel-dependency quotient the deadlock detector runs
        SCCs over: ``q`` waits for ``p`` when a send rule producing
        ``q`` has a positive ``?p`` atom in its body.
        """
        out: set[str] = set()
        for producer in self.producers(queue):
            for edge in self.predecessors(producer):
                if edge.kind == "receive" and edge.positive:
                    out.add(edge.label)
        return tuple(sorted(out))


def build_comm_graph(composition: Composition) -> CommGraph:
    """Extract the communication graph of *composition*."""
    rule_nodes: list[RuleNode] = []
    rules_by_node: dict[RuleNode, Rule] = {}
    # per peer: local relation -> the rule nodes writing it
    writers: dict[tuple[str, str], list[RuleNode]] = {}
    channel_names = {c.name for c in composition.channels}
    receivers = {c.name: c.receiver for c in composition.channels}

    for peer in composition.peers:
        for index, rule in enumerate(peer.rules):
            node = RuleNode(peer.name, rule.kind.value, rule.target, index)
            rule_nodes.append(node)
            rules_by_node[node] = rule
            writers.setdefault((peer.name, rule.target), []).append(node)

    edges: list[CommEdge] = []
    queue_nodes = tuple(QueueNode(c.name)
                        for c in composition.channels)

    for node in rule_nodes:
        rule = rules_by_node[node]
        peer = composition.peer(node.peer)
        in_names = {q.name for q in peer.in_queues}
        polarities = formula_polarities(rule.body)

        # send edges: the rule enqueues into its target channel
        if rule.kind is RuleKind.SEND and rule.target in channel_names:
            edges.append(CommEdge(node, QueueNode(rule.target),
                                  "send", rule.target))

        for rel, pols in sorted(polarities.items()):
            for positive in sorted(pols):
                # receive edges: ?Q atoms against the peer's in-queues
                if rel in in_names and receivers.get(rel) == peer.name:
                    edges.append(CommEdge(QueueNode(rel), node,
                                          "receive", rel, positive))
                    continue
                # derive edges: intra-peer head/body dependencies
                base = rel
                if (peer.name, rel) not in writers:
                    # prev_I reads depend on the input rule for I
                    for inp in peer.inputs:
                        if rel == prev_name(inp.name):
                            base = inp.name
                            break
                for writer in writers.get((peer.name, base), ()):
                    if writer != node:
                        edges.append(CommEdge(writer, node,
                                              "derive", base, positive))

    succ: dict[Node, list[CommEdge]] = {}
    pred: dict[Node, list[CommEdge]] = {}
    for edge in edges:
        succ.setdefault(edge.src, []).append(edge)
        pred.setdefault(edge.dst, []).append(edge)
    return CommGraph(
        composition=composition,
        rule_nodes=tuple(rule_nodes),
        queue_nodes=queue_nodes,
        edges=tuple(edges),
        _succ={k: tuple(v) for k, v in succ.items()},
        _pred={k: tuple(v) for k, v in pred.items()},
        _rules=rules_by_node,
    )


__all__ = [
    "CommEdge", "CommGraph", "Node", "QueueNode", "RuleNode",
    "build_comm_graph", "formula_polarities",
]
