"""Peer and composition specifications (Section 2)."""

from .channels import (
    ChannelSemantics, DECIDABLE_DEFAULT, DECIDABLE_FAITHFUL,
    DETERMINISTIC_LOSSY, FlatSendDiscipline, NestedEmptySend, PERFECT_BOUNDED,
)
from .rules import Rule, RuleKind, rename_formula_relations
from .peer import Peer, PeerBuilder
from .composition import Channel, Composition
from .commgraph import (
    CommEdge, CommGraph, QueueNode, RuleNode, build_comm_graph,
)
from .validate import validate_rule_vocabulary
from .dsl import (
    load, load_composition, load_databases, load_document,
    load_properties,
)

__all__ = [
    "Channel", "ChannelSemantics", "CommEdge", "CommGraph", "Composition",
    "DECIDABLE_DEFAULT", "DECIDABLE_FAITHFUL", "DETERMINISTIC_LOSSY",
    "FlatSendDiscipline", "NestedEmptySend", "PERFECT_BOUNDED", "Peer",
    "PeerBuilder", "QueueNode", "Rule", "RuleKind", "RuleNode",
    "build_comm_graph", "load", "load_composition", "load_databases",
    "load_document", "load_properties",
    "rename_formula_relations", "validate_rule_vocabulary",
]
