"""Peer reaction rules (Definition 2.1).

Five rule families, each pairing a target relation with an FO body:

* input rules    ``Options_I(x̄) <- phi_I(x̄)``   over D, S, PrevI, Qin
* insertion rules ``S(x̄) <- phi+_S(x̄)``          over D, S, I, PrevI, Qin
* deletion rules  ``~S(x̄) <- phi-_S(x̄)``          over D, S, I, PrevI, Qin
* action rules    ``A(x̄) <- phi_A(x̄)``            over D, S, I, PrevI, Qin
* send rules      ``Q(x̄) <- phi_Q(x̄)``            over D, S, I, PrevI, Qin

The head is an ordered tuple of distinct variables whose length matches the
target relation's arity; the body's free variables must be among the head
variables.  Vocabulary restrictions are validated when the rule is attached
to a peer (see :mod:`repro.spec.validate`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import SpecificationError
from ..fo.formulas import Formula, free_vars
from ..fo.terms import Var


class RuleKind(enum.Enum):
    INPUT = "input"
    INSERT = "insert"
    DELETE = "delete"
    ACTION = "action"
    SEND = "send"


@dataclass(frozen=True, slots=True)
class Rule:
    """One reaction rule: ``target(head) <- body``."""

    kind: RuleKind
    target: str
    head: tuple[Var, ...]
    body: Formula

    def __post_init__(self) -> None:
        names = [v.name for v in self.head]
        if len(set(names)) != len(names):
            raise SpecificationError(
                f"rule for {self.target!r}: head variables must be distinct, "
                f"got {names}"
            )
        extra = {v.name for v in free_vars(self.body)} - set(names)
        if extra:
            raise SpecificationError(
                f"rule for {self.target!r}: body has free variables "
                f"{sorted(extra)} not in the head {names}"
            )

    def rename_relations(self, mapping: dict[str, str]) -> "Rule":
        """A copy with relation names rewritten through *mapping*."""
        from ..fo.formulas import Atom

        def rewrite(f: Formula) -> Formula:
            from ..fo.formulas import (
                And, Eq, Exists, FalseF, Forall, Implies, Not, Or, TrueF,
            )
            if isinstance(f, Atom):
                return Atom(mapping.get(f.rel, f.rel), f.terms)
            if isinstance(f, (TrueF, FalseF, Eq)):
                return f
            if isinstance(f, Not):
                return Not(rewrite(f.body))
            if isinstance(f, And):
                return And(tuple(rewrite(c) for c in f.children))
            if isinstance(f, Or):
                return Or(tuple(rewrite(c) for c in f.children))
            if isinstance(f, Implies):
                return Implies(rewrite(f.antecedent), rewrite(f.consequent))
            if isinstance(f, Exists):
                return Exists(f.variables, rewrite(f.body))
            if isinstance(f, Forall):
                return Forall(f.variables, rewrite(f.body))
            raise SpecificationError(f"cannot rewrite {f!r}")

        return Rule(
            self.kind,
            mapping.get(self.target, self.target),
            self.head,
            rewrite(self.body),
        )

    def __str__(self) -> str:
        head = ", ".join(v.name for v in self.head)
        neg = "~" if self.kind is RuleKind.DELETE else ""
        return f"{neg}{self.target}({head}) <- {self.body}"


def rename_formula_relations(formula: Formula,
                             mapping: dict[str, str]) -> Formula:
    """Rewrite relation names of *formula* through *mapping* (public helper)."""
    rule = Rule(RuleKind.ACTION, "__tmp__",
                tuple(sorted(free_vars(formula), key=lambda v: v.name)),
                formula)
    return rule.rename_relations(mapping).body
