"""Compositions of peers (Definition 2.5) and the composition schema.

A composition wires peers together through named channels: a queue relation
named ``q`` declared as an out-queue by peer ``S`` and as an in-queue by
peer ``R`` becomes the channel ``q`` from ``S`` to ``R``.  Each queue has at
most one sender and one receiver; a composition is *closed* when every
queue has both, and *open* otherwise (the missing endpoint is the
environment, Section 5).

The composition schema (Section 3) qualifies every peer relation as
``Peer.relation`` and adds:

* ``Peer.prev_I`` for inputs, ``Peer.empty_Q`` for in-queues,
  ``Peer.error_Q`` for flat out-queues, ``Peer.received_Q`` for in-queues;
* the propositional ``move_Peer`` symbols (and ``move_ENV`` when open);
* for open compositions, the environment's view of its channels:
  ``ENV.q`` as the environment's out-queue (for channels the environment
  sends into) or in-queue (for channels it consumes).

An in-queue symbol in a property denotes the queue's *first* message; an
out-queue symbol denotes the message *last enqueued* (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..errors import SpecificationError
from ..fo.schema import (
    ENVIRONMENT_NAME, RelationKind, RelationSymbol, Schema,
    empty_name, error_name, move_name, prev_name, received_name,
)
from ..fo.terms import Value
from .peer import Peer
from .rules import Rule
from .validate import validate_composition_channels


@dataclass(frozen=True, slots=True)
class Channel:
    """One message queue: *sender* -> *receiver* (None marks the environment)."""

    name: str
    arity: int
    nested: bool
    sender: str | None
    receiver: str | None

    @property
    def from_environment(self) -> bool:
        return self.sender is None

    @property
    def to_environment(self) -> bool:
        return self.receiver is None

    def __str__(self) -> str:
        src = self.sender or ENVIRONMENT_NAME
        dst = self.receiver or ENVIRONMENT_NAME
        shape = "nested" if self.nested else "flat"
        return f"{src} --{self.name}/{self.arity} ({shape})--> {dst}"


class Composition:
    """An immutable set of peers wired through channels."""

    def __init__(self, peers: Iterable[Peer]) -> None:
        peer_list = list(peers)
        names = [p.name for p in peer_list]
        if len(set(names)) != len(names):
            raise SpecificationError(f"duplicate peer names in {names}")
        if not peer_list:
            raise SpecificationError("a composition needs at least one peer")
        self.peers: tuple[Peer, ...] = tuple(peer_list)
        self._peer_by_name: Mapping[str, Peer] = {
            p.name: p for p in peer_list
        }
        self.channels: tuple[Channel, ...] = self._wire_channels()
        self._channel_by_name: Mapping[str, Channel] = {
            c.name: c for c in self.channels
        }
        self.schema: Schema = self._build_schema()
        self._qualified_rules: Mapping[str, tuple[Rule, ...]] = {
            p.name: self._qualify_rules(p) for p in peer_list
        }

    # -- wiring ---------------------------------------------------------

    def _wire_channels(self) -> tuple[Channel, ...]:
        # Definition 2.5 channel validation is shared with `repro lint`
        # (see spec.validate.collect_channel_issues).
        validate_composition_channels(self.peers)

        senders: dict[str, tuple[str, RelationSymbol]] = {}
        receivers: dict[str, tuple[str, RelationSymbol]] = {}
        for peer in self.peers:
            for q in peer.out_queues:
                senders[q.name] = (peer.name, q)
            for q in peer.in_queues:
                receivers[q.name] = (peer.name, q)

        channels: list[Channel] = []
        for name in sorted(set(senders) | set(receivers)):
            out_end = senders.get(name)
            in_end = receivers.get(name)
            if out_end and in_end:
                s_peer, s_sym = out_end
                r_peer, _r_sym = in_end
                channels.append(Channel(name, s_sym.arity, s_sym.nested,
                                        s_peer, r_peer))
            elif out_end:
                s_peer, s_sym = out_end
                channels.append(Channel(name, s_sym.arity, s_sym.nested,
                                        s_peer, None))
            else:
                assert in_end is not None
                r_peer, r_sym = in_end
                channels.append(Channel(name, r_sym.arity, r_sym.nested,
                                        None, r_peer))
        return tuple(channels)

    # -- basic queries -----------------------------------------------------

    def peer(self, name: str) -> Peer:
        try:
            return self._peer_by_name[name]
        except KeyError:
            raise SpecificationError(f"unknown peer {name!r}") from None

    def channel(self, name: str) -> Channel:
        try:
            return self._channel_by_name[name]
        except KeyError:
            raise SpecificationError(f"unknown channel {name!r}") from None

    @property
    def is_closed(self) -> bool:
        """Closed iff every channel has both endpoints (Definition 2.5)."""
        return all(
            c.sender is not None and c.receiver is not None
            for c in self.channels
        )

    def environment_channels(self) -> tuple[Channel, ...]:
        """Channels with an environment endpoint (``C.Qin delta C.Qout``)."""
        return tuple(
            c for c in self.channels
            if c.sender is None or c.receiver is None
        )

    def env_out_channels(self) -> tuple[Channel, ...]:
        """Channels the environment sends into (``E.Qout``)."""
        return tuple(c for c in self.channels if c.sender is None)

    def env_in_channels(self) -> tuple[Channel, ...]:
        """Channels the environment consumes (``E.Qin``)."""
        return tuple(c for c in self.channels if c.receiver is None)

    def qualified_rules(self, peer_name: str) -> tuple[Rule, ...]:
        """The peer's rules with all relation names composition-qualified."""
        return self._qualified_rules[peer_name]

    def constants(self) -> frozenset[Value]:
        """All constants in any peer's rules."""
        out: set[Value] = set()
        for p in self.peers:
            out |= p.constants()
        return frozenset(out)

    def max_rule_variables(self) -> int:
        return max(p.max_rule_variables() for p in self.peers)

    def max_arity(self) -> int:
        return max(
            (s.arity for p in self.peers for s in p.relations()), default=0
        )

    # -- schema construction ---------------------------------------------------

    def _build_schema(self) -> Schema:
        symbols: list[RelationSymbol] = []
        for peer in self.peers:
            for sym in peer.relations():
                symbols.append(sym.qualify(peer.name))
            for inp in peer.inputs:
                symbols.append(RelationSymbol(
                    prev_name(inp.name), inp.arity,
                    RelationKind.PREV_INPUT, owner=peer.name,
                ))
            for q in peer.in_queues:
                symbols.append(RelationSymbol(
                    empty_name(q.name), 0, RelationKind.QUEUE_STATE,
                    owner=peer.name,
                ))
                symbols.append(RelationSymbol(
                    received_name(q.name), 0, RelationKind.RECEIVED_FLAG,
                    owner=peer.name,
                ))
            for q in peer.out_queues:
                if not q.nested:
                    symbols.append(RelationSymbol(
                        error_name(q.name), 0, RelationKind.ERROR_FLAG,
                        owner=peer.name,
                    ))
            symbols.append(RelationSymbol(
                move_name(peer.name), 0, RelationKind.MOVE,
            ))
        if not self.is_closed:
            symbols.append(RelationSymbol(
                move_name(ENVIRONMENT_NAME), 0, RelationKind.MOVE,
            ))
            for chan in self.env_out_channels():
                symbols.append(RelationSymbol(
                    chan.name, chan.arity, RelationKind.OUT_QUEUE,
                    nested=chan.nested, owner=ENVIRONMENT_NAME,
                ))
            for chan in self.env_in_channels():
                symbols.append(RelationSymbol(
                    chan.name, chan.arity, RelationKind.IN_QUEUE,
                    nested=chan.nested, owner=ENVIRONMENT_NAME,
                ))
        return Schema(symbols)

    def _qualify_rules(self, peer: Peer) -> tuple[Rule, ...]:
        mapping = {
            sym.name: f"{peer.name}.{sym.name}"
            for sym in peer.local_schema
        }
        return tuple(rule.rename_relations(mapping) for rule in peer.rules)

    def __repr__(self) -> str:
        kind = "closed" if self.is_closed else "open"
        return (f"Composition({kind}, peers={[p.name for p in self.peers]}, "
                f"channels={[c.name for c in self.channels]})")
