"""Vocabulary and channel validation (Definitions 2.1 and 2.5).

Per-peer rule vocabulary (Definition 2.1) -- each rule family may
mention a specific part of the peer's schema:

* input rules:  D, S, PrevI, Qin  (no current inputs, no actions)
* state rules:  D, S, I, PrevI, Qin
* action rules: D, S, I, PrevI, Qin
* send rules:   D, S, I, PrevI, Qin

No rule body may mention action relations or out-queue relations.  Queue
states ``empty_Q`` count as state (the paper puts them in S); the
``error_Q`` flags of Theorem 3.8 are likewise state-like and "can be
consulted by the peer rules".

Composition-level channel declarations (Definition 2.5) are validated by
:func:`collect_channel_issues`: duplicate queue names (two senders or two
receivers), self-channels, endpoint arity/shape mismatches, and dangling
endpoints.  :class:`~repro.spec.composition.Composition` raises on the
fatal issues at construction time; ``repro lint`` reports all of them as
structured diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import SpecificationError
from ..fo.formulas import relations as formula_relations
from ..fo.schema import RelationKind, Schema
from .rules import Rule, RuleKind

_COMMON_KINDS = frozenset({
    RelationKind.DATABASE,
    RelationKind.STATE,
    RelationKind.PREV_INPUT,
    RelationKind.IN_QUEUE,
    RelationKind.QUEUE_STATE,
    RelationKind.ERROR_FLAG,
})

_ALLOWED_KINDS: dict[RuleKind, frozenset[RelationKind]] = {
    RuleKind.INPUT: _COMMON_KINDS,
    RuleKind.INSERT: _COMMON_KINDS | {RelationKind.INPUT},
    RuleKind.DELETE: _COMMON_KINDS | {RelationKind.INPUT},
    RuleKind.ACTION: _COMMON_KINDS | {RelationKind.INPUT},
    RuleKind.SEND: _COMMON_KINDS | {RelationKind.INPUT},
}


def validate_rule_vocabulary(peer_name: str, rule: Rule,
                             schema: Schema) -> None:
    """Raise :class:`SpecificationError` if *rule* uses forbidden symbols."""
    allowed = _ALLOWED_KINDS[rule.kind]
    for rel in sorted(formula_relations(rule.body)):
        sym = schema.get(rel)
        if sym is None:
            raise SpecificationError(
                f"peer {peer_name}: rule for {rule.target!r} mentions "
                f"unknown relation {rel!r}"
            )
        if sym.kind not in allowed:
            raise SpecificationError(
                f"peer {peer_name}: {rule.kind.value} rule for "
                f"{rule.target!r} may not mention {rel!r} "
                f"(kind {sym.kind.value})"
            )


# -- composition-level channel validation (Definition 2.5) -------------------


@dataclass(frozen=True, slots=True)
class ChannelIssue:
    """One problem with a composition's channel declarations.

    ``fatal`` issues make the composition unbuildable (``Composition``
    raises); non-fatal ones (dangling endpoints) merely make it open.
    ``code`` is the stable ``DWV3xx`` diagnostic code for ``repro lint``.
    """

    kind: str                  # duplicate_sender | duplicate_receiver |
                               # self_channel | endpoint_mismatch | dangling
    queue: str
    peers: tuple[str, ...]
    message: str
    fatal: bool
    code: str

    def __str__(self) -> str:
        return self.message


def collect_channel_issues(peers: Sequence) -> list[ChannelIssue]:
    """All channel-declaration issues across *peers* (Definition 2.5).

    Accepts anything with ``name``/``in_queues``/``out_queues``
    attributes (normally :class:`~repro.spec.peer.Peer` values).
    """
    issues: list[ChannelIssue] = []
    senders: dict[str, tuple[str, object]] = {}
    receivers: dict[str, tuple[str, object]] = {}
    for peer in peers:
        for q in peer.out_queues:
            if q.name in senders:
                issues.append(ChannelIssue(
                    "duplicate_sender", q.name,
                    (senders[q.name][0], peer.name),
                    f"queue {q.name!r} is an out-queue of both "
                    f"{senders[q.name][0]!r} and {peer.name!r}",
                    fatal=True, code="DWV304",
                ))
            else:
                senders[q.name] = (peer.name, q)
        for q in peer.in_queues:
            if q.name in receivers:
                issues.append(ChannelIssue(
                    "duplicate_receiver", q.name,
                    (receivers[q.name][0], peer.name),
                    f"queue {q.name!r} is an in-queue of both "
                    f"{receivers[q.name][0]!r} and {peer.name!r}",
                    fatal=True, code="DWV304",
                ))
            else:
                receivers[q.name] = (peer.name, q)

    for name in sorted(set(senders) | set(receivers)):
        out_end = senders.get(name)
        in_end = receivers.get(name)
        if out_end and in_end:
            s_peer, s_sym = out_end
            r_peer, r_sym = in_end
            if s_peer == r_peer:
                issues.append(ChannelIssue(
                    "self_channel", name, (s_peer,),
                    f"queue {name!r}: self-channels (sender == receiver "
                    f"== {s_peer!r}) are not supported; route through a "
                    "relay peer instead",
                    fatal=True, code="DWV308",
                ))
            elif (s_sym.arity != r_sym.arity
                    or s_sym.nested != r_sym.nested):
                issues.append(ChannelIssue(
                    "endpoint_mismatch", name, (s_peer, r_peer),
                    f"queue {name!r}: endpoint mismatch between "
                    f"{s_peer!r} ({s_sym.arity}, nested={s_sym.nested}) "
                    f"and {r_peer!r} ({r_sym.arity}, "
                    f"nested={r_sym.nested})",
                    fatal=True, code="DWV305",
                ))
        else:
            end_peer = (out_end or in_end)[0]
            role = "receiver" if out_end else "sender"
            issues.append(ChannelIssue(
                "dangling", name, (end_peer,),
                f"queue {name!r} has no {role}: the environment becomes "
                "the missing endpoint (open composition)",
                fatal=False, code="DWV309",
            ))
    return issues


def validate_composition_channels(peers: Sequence) -> None:
    """Raise :class:`SpecificationError` on the first fatal channel issue."""
    for issue in collect_channel_issues(peers):
        if issue.fatal:
            raise SpecificationError(issue.message)
