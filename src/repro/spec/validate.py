"""Vocabulary validation for peer rules (Definition 2.1).

Each rule family may mention a specific part of the peer's schema:

* input rules:  D, S, PrevI, Qin  (no current inputs, no actions)
* state rules:  D, S, I, PrevI, Qin
* action rules: D, S, I, PrevI, Qin
* send rules:   D, S, I, PrevI, Qin

No rule body may mention action relations or out-queue relations.  Queue
states ``empty_Q`` count as state (the paper puts them in S); the
``error_Q`` flags of Theorem 3.8 are likewise state-like and "can be
consulted by the peer rules".
"""

from __future__ import annotations

from ..errors import SpecificationError
from ..fo.formulas import relations as formula_relations
from ..fo.schema import RelationKind, Schema
from .rules import Rule, RuleKind

_COMMON_KINDS = frozenset({
    RelationKind.DATABASE,
    RelationKind.STATE,
    RelationKind.PREV_INPUT,
    RelationKind.IN_QUEUE,
    RelationKind.QUEUE_STATE,
    RelationKind.ERROR_FLAG,
})

_ALLOWED_KINDS: dict[RuleKind, frozenset[RelationKind]] = {
    RuleKind.INPUT: _COMMON_KINDS,
    RuleKind.INSERT: _COMMON_KINDS | {RelationKind.INPUT},
    RuleKind.DELETE: _COMMON_KINDS | {RelationKind.INPUT},
    RuleKind.ACTION: _COMMON_KINDS | {RelationKind.INPUT},
    RuleKind.SEND: _COMMON_KINDS | {RelationKind.INPUT},
}


def validate_rule_vocabulary(peer_name: str, rule: Rule,
                             schema: Schema) -> None:
    """Raise :class:`SpecificationError` if *rule* uses forbidden symbols."""
    allowed = _ALLOWED_KINDS[rule.kind]
    for rel in sorted(formula_relations(rule.body)):
        sym = schema.get(rel)
        if sym is None:
            raise SpecificationError(
                f"peer {peer_name}: rule for {rule.target!r} mentions "
                f"unknown relation {rel!r}"
            )
        if sym.kind not in allowed:
            raise SpecificationError(
                f"peer {peer_name}: {rule.kind.value} rule for "
                f"{rule.target!r} may not mention {rel!r} "
                f"(kind {sym.kind.value})"
            )
