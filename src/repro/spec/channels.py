"""Communication-channel semantics knobs (Section 2, "Lossy and perfect
channels"; Section 3.1, bounded queues; Theorem 3.8, deterministic sends).

Every combination the paper's theorems distinguish is expressible as a
:class:`ChannelSemantics` value:

* ``lossy`` -- sent messages may nondeterministically fail to be enqueued
  (True, the default, matching Theorem 3.4's decidable configuration) or
  are always enqueued (perfect channels, Theorem 3.7's undecidable one);
* ``queue_bound`` -- the maximum number of messages a queue may hold
  (k-bounded queues; messages arriving at a full queue are dropped).
  ``None`` means unbounded, which is simulation-only (Corollary 3.6);
* ``flat_send`` -- what happens when a flat send rule yields several
  candidate tuples: pick one nondeterministically (the paper's default) or
  treat it as a run-time error, raising the ``error_Q`` flag and sending
  nothing (Theorem 3.8's "deterministic send rules");
* ``nested_empty_send`` -- whether a nested send rule that yields no tuples
  still enqueues an empty message (the letter of Definition 2.4) or skips
  sending.  Theorem 3.9's emptiness tests are only meaningful when empty
  nested messages exist, so ``ENQUEUE`` is the default.
* ``perfect_nested`` -- the remark after Theorem 3.4: decidability still
  holds when *nested* channels are perfect while flat channels stay lossy.
  When True and ``lossy`` is True, only flat messages may be dropped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import SemanticsError


class FlatSendDiscipline(enum.Enum):
    """Resolution of multiple candidate tuples on a flat send."""

    NONDETERMINISTIC = "nondeterministic"
    DETERMINISTIC_ERROR = "deterministic_error"


class NestedEmptySend(enum.Enum):
    """Treatment of a nested send rule yielding the empty set."""

    ENQUEUE = "enqueue"   # faithful to Definition 2.4
    SKIP = "skip"         # convenience mode for application modelling


@dataclass(frozen=True, slots=True)
class ChannelSemantics:
    """A complete choice of communication semantics for a composition."""

    lossy: bool = True
    queue_bound: int | None = 1
    flat_send: FlatSendDiscipline = FlatSendDiscipline.NONDETERMINISTIC
    nested_empty_send: NestedEmptySend = NestedEmptySend.SKIP
    perfect_nested: bool = False

    def __post_init__(self) -> None:
        if self.queue_bound is not None and self.queue_bound < 1:
            raise SemanticsError("queue_bound must be >= 1 or None")

    @property
    def bounded(self) -> bool:
        return self.queue_bound is not None

    def flat_is_lossy(self) -> bool:
        return self.lossy

    def nested_is_lossy(self) -> bool:
        return self.lossy and not self.perfect_nested

    def describe(self) -> str:
        """One-line human-readable description for reports."""
        parts = [
            "lossy" if self.lossy else "perfect",
            f"{self.queue_bound}-bounded" if self.bounded else "unbounded",
            self.flat_send.value.replace("_", "-") + "-flat-send",
        ]
        if self.perfect_nested and self.lossy:
            parts.append("perfect-nested")
        if self.nested_empty_send is NestedEmptySend.ENQUEUE:
            parts.append("empty-nested-sends")
        return ", ".join(parts)


#: Theorem 3.4's decidable configuration (the library default).
DECIDABLE_DEFAULT = ChannelSemantics(
    lossy=True, queue_bound=1,
    flat_send=FlatSendDiscipline.NONDETERMINISTIC,
    nested_empty_send=NestedEmptySend.SKIP,
)

#: The paper-faithful variant that enqueues empty nested messages.
DECIDABLE_FAITHFUL = ChannelSemantics(
    lossy=True, queue_bound=1,
    flat_send=FlatSendDiscipline.NONDETERMINISTIC,
    nested_empty_send=NestedEmptySend.ENQUEUE,
)

#: Theorem 3.7's undecidable configuration: perfect 1-bounded channels.
PERFECT_BOUNDED = ChannelSemantics(lossy=False, queue_bound=1)

#: Theorem 3.8's configuration: lossy flat queues with deterministic sends.
DETERMINISTIC_LOSSY = ChannelSemantics(
    lossy=True, queue_bound=1,
    flat_send=FlatSendDiscipline.DETERMINISTIC_ERROR,
)
