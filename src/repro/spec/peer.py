"""Web service peers (Definition 2.1) and a fluent builder API.

A :class:`Peer` bundles the six relational schemas (database, state, input,
action, in-queues, out-queues) with the reaction rules.  Peers are built
through :class:`PeerBuilder`, which parses rule bodies against the peer's
*local* vocabulary (bare relation names, ``?Q`` in-queue atoms, ``prev_I``
previous-input atoms, ``empty_Q`` queue states, ``error_Q`` flags) and
validates each rule's vocabulary per Definition 2.1.

Example::

    officer = (
        PeerBuilder("O")
        .database("customer", 3)
        .input("reccom", 2)
        .state("application", 2)
        .flat_in_queue("apply", 2)
        .flat_out_queue("getRating", 1)
        .input_rule("reccom", ["id", "rec"],
                    'exists ssn, name: customer(id, ssn, name) '
                    '& (rec = "approve" | rec = "deny")')
        .insert_rule("application", ["id", "loan"], "?apply(id, loan)")
        .send_rule("getRating", ["ssn"],
                   "exists id, loan, name: ?apply(id, loan) "
                   "& customer(id, ssn, name)")
        .build()
    )
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import SpecificationError
from ..fo.formulas import Formula, constants as formula_constants
from ..fo.parser import parse_fo
from ..fo.schema import (
    RelationKind, RelationSymbol, Schema,
    empty_name, error_name, prev_name,
)
from ..fo.terms import Value, Var
from .rules import Rule, RuleKind
from .validate import validate_rule_vocabulary


@dataclass(frozen=True)
class Peer:
    """An immutable peer specification.

    Attributes mirror Definition 2.1; ``rules`` holds all reaction rules.
    ``local_schema`` is the vocabulary rule bodies are written in: the six
    schema parts plus the derived ``prev_I``, ``empty_Q`` and ``error_Q``
    symbols.
    """

    name: str
    database: tuple[RelationSymbol, ...]
    states: tuple[RelationSymbol, ...]
    inputs: tuple[RelationSymbol, ...]
    actions: tuple[RelationSymbol, ...]
    in_queues: tuple[RelationSymbol, ...]
    out_queues: tuple[RelationSymbol, ...]
    rules: tuple[Rule, ...]
    local_schema: Schema = field(repr=False)

    # -- derived queries -----------------------------------------------

    def relations(self) -> tuple[RelationSymbol, ...]:
        """The declared (non-derived) relations of the peer."""
        return (self.database + self.states + self.inputs + self.actions
                + self.in_queues + self.out_queues)

    def rules_of_kind(self, kind: RuleKind) -> tuple[Rule, ...]:
        return tuple(r for r in self.rules if r.kind == kind)

    def rule_for(self, kind: RuleKind, target: str) -> Rule | None:
        for r in self.rules:
            if r.kind == kind and r.target == target:
                return r
        return None

    def consumed_in_queues(self) -> frozenset[str]:
        """In-queues mentioned in some rule body (these dequeue on a move).

        Definition 2.4: an in-queue is dequeued on each of the peer's moves
        iff it is *mentioned* in the peer's rule set.
        """
        in_names = {q.name for q in self.in_queues}
        mentioned: set[str] = set()
        from ..fo.formulas import relations as formula_relations
        for rule in self.rules:
            mentioned |= formula_relations(rule.body) & in_names
        return frozenset(mentioned)

    def constants(self) -> frozenset[Value]:
        """All constant values occurring in the peer's rule bodies."""
        out: set[Value] = set()
        for rule in self.rules:
            out |= formula_constants(rule.body)
        return frozenset(out)

    def max_rule_variables(self) -> int:
        """Maximum number of distinct variables in any rule (head + body)."""
        from ..fo.formulas import all_vars
        best = 0
        for rule in self.rules:
            names = {v.name for v in rule.head}
            names |= {v.name for v in all_vars(rule.body)}
            best = max(best, len(names))
        return best

    def __str__(self) -> str:
        return f"Peer({self.name})"


class PeerBuilder:
    """Fluent construction of :class:`Peer` values.

    Declare all relations first, then add rules (rule bodies are parsed and
    validated eagerly against the declarations so errors point at the
    offending rule).
    """

    def __init__(self, name: str) -> None:
        if not name or "." in name:
            raise SpecificationError(f"invalid peer name {name!r}")
        self.name = name
        self._parts: dict[RelationKind, list[RelationSymbol]] = {
            RelationKind.DATABASE: [],
            RelationKind.STATE: [],
            RelationKind.INPUT: [],
            RelationKind.ACTION: [],
            RelationKind.IN_QUEUE: [],
            RelationKind.OUT_QUEUE: [],
        }
        self._rules: list[tuple[RuleKind, str, tuple[str, ...], str | Formula]] = []

    # -- schema declaration -------------------------------------------------

    def _declare(self, name: str, arity: int, kind: RelationKind,
                 nested: bool = False) -> "PeerBuilder":
        for symbols in self._parts.values():
            if any(s.name == name for s in symbols):
                raise SpecificationError(
                    f"peer {self.name}: relation {name!r} declared twice"
                )
        self._parts[kind].append(
            RelationSymbol(name, arity, kind, nested=nested)
        )
        return self

    def database(self, name: str, arity: int) -> "PeerBuilder":
        """Declare a database relation (fixed throughout the run)."""
        return self._declare(name, arity, RelationKind.DATABASE)

    def state(self, name: str, arity: int) -> "PeerBuilder":
        """Declare a state relation (updated by insert/delete rules)."""
        return self._declare(name, arity, RelationKind.STATE)

    def input(self, name: str, arity: int) -> "PeerBuilder":
        """Declare a user-input relation (holds at most one tuple)."""
        return self._declare(name, arity, RelationKind.INPUT)

    def action(self, name: str, arity: int) -> "PeerBuilder":
        """Declare an action relation (side effects, e.g. letters)."""
        return self._declare(name, arity, RelationKind.ACTION)

    def flat_in_queue(self, name: str, arity: int) -> "PeerBuilder":
        """Declare a flat in-queue (single-tuple messages)."""
        return self._declare(name, arity, RelationKind.IN_QUEUE, nested=False)

    def nested_in_queue(self, name: str, arity: int) -> "PeerBuilder":
        """Declare a nested in-queue (set-of-tuples messages)."""
        return self._declare(name, arity, RelationKind.IN_QUEUE, nested=True)

    def flat_out_queue(self, name: str, arity: int) -> "PeerBuilder":
        """Declare a flat out-queue."""
        return self._declare(name, arity, RelationKind.OUT_QUEUE, nested=False)

    def nested_out_queue(self, name: str, arity: int) -> "PeerBuilder":
        """Declare a nested out-queue."""
        return self._declare(name, arity, RelationKind.OUT_QUEUE, nested=True)

    # -- rules ------------------------------------------------------------

    def input_rule(self, target: str, head: Sequence[str],
                   body: str | Formula) -> "PeerBuilder":
        """``Options_target(head) <- body``."""
        self._rules.append((RuleKind.INPUT, target, tuple(head), body))
        return self

    def insert_rule(self, target: str, head: Sequence[str],
                    body: str | Formula) -> "PeerBuilder":
        """``target(head) <- body`` (state insertion)."""
        self._rules.append((RuleKind.INSERT, target, tuple(head), body))
        return self

    def delete_rule(self, target: str, head: Sequence[str],
                    body: str | Formula) -> "PeerBuilder":
        """``~target(head) <- body`` (state deletion)."""
        self._rules.append((RuleKind.DELETE, target, tuple(head), body))
        return self

    def action_rule(self, target: str, head: Sequence[str],
                    body: str | Formula) -> "PeerBuilder":
        """``target(head) <- body`` (action)."""
        self._rules.append((RuleKind.ACTION, target, tuple(head), body))
        return self

    def send_rule(self, target: str, head: Sequence[str],
                  body: str | Formula) -> "PeerBuilder":
        """``target(head) <- body`` (send into out-queue *target*)."""
        self._rules.append((RuleKind.SEND, target, tuple(head), body))
        return self

    # -- assembly -------------------------------------------------------------

    def local_schema(self) -> Schema:
        """The vocabulary available to this peer's rule bodies."""
        symbols: list[RelationSymbol] = []
        for part in self._parts.values():
            symbols.extend(part)
        for inp in self._parts[RelationKind.INPUT]:
            symbols.append(RelationSymbol(
                prev_name(inp.name), inp.arity, RelationKind.PREV_INPUT,
            ))
        for q in self._parts[RelationKind.IN_QUEUE]:
            symbols.append(RelationSymbol(
                empty_name(q.name), 0, RelationKind.QUEUE_STATE,
            ))
        for q in self._parts[RelationKind.OUT_QUEUE]:
            if not q.nested:
                symbols.append(RelationSymbol(
                    error_name(q.name), 0, RelationKind.ERROR_FLAG,
                ))
        return Schema(symbols)

    def build(self) -> Peer:
        """Validate everything and produce the immutable :class:`Peer`."""
        schema = self.local_schema()
        rules: list[Rule] = []
        seen: set[tuple[RuleKind, str]] = set()
        for kind, target, head, body in self._rules:
            sym = schema.get(target)
            if sym is None:
                raise SpecificationError(
                    f"peer {self.name}: rule targets unknown "
                    f"relation {target!r}"
                )
            expected_kind = {
                RuleKind.INPUT: RelationKind.INPUT,
                RuleKind.INSERT: RelationKind.STATE,
                RuleKind.DELETE: RelationKind.STATE,
                RuleKind.ACTION: RelationKind.ACTION,
                RuleKind.SEND: RelationKind.OUT_QUEUE,
            }[kind]
            if sym.kind != expected_kind:
                raise SpecificationError(
                    f"peer {self.name}: {kind.value} rule targets "
                    f"{target!r} of kind {sym.kind.value}"
                )
            if sym.arity != len(head):
                raise SpecificationError(
                    f"peer {self.name}: rule head for {target!r} has "
                    f"{len(head)} variables, relation arity is {sym.arity}"
                )
            if (kind, target) in seen:
                raise SpecificationError(
                    f"peer {self.name}: duplicate {kind.value} rule "
                    f"for {target!r}"
                )
            seen.add((kind, target))
            parsed = parse_fo(body, schema) if isinstance(body, str) else body
            rule = Rule(kind, target, tuple(Var(h) for h in head), parsed)
            validate_rule_vocabulary(self.name, rule, schema)
            rules.append(rule)

        # every input relation needs an input rule (Definition 2.1 requires
        # one for each input of arity > 0; propositional inputs may omit it,
        # defaulting to an always-available option)
        for inp in self._parts[RelationKind.INPUT]:
            if inp.arity > 0 and (RuleKind.INPUT, inp.name) not in seen:
                raise SpecificationError(
                    f"peer {self.name}: input {inp.name!r} has no input rule"
                )

        return Peer(
            name=self.name,
            database=tuple(self._parts[RelationKind.DATABASE]),
            states=tuple(self._parts[RelationKind.STATE]),
            inputs=tuple(self._parts[RelationKind.INPUT]),
            actions=tuple(self._parts[RelationKind.ACTION]),
            in_queues=tuple(self._parts[RelationKind.IN_QUEUE]),
            out_queues=tuple(self._parts[RelationKind.OUT_QUEUE]),
            rules=tuple(rules),
            local_schema=schema,
        )
