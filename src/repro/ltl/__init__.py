"""Propositional LTL, Büchi automata, LTL->NBA translation, complementation."""

from .formulas import (
    AP, LAnd, LAtom, LFALSE, LFalse, LNext, LNot, LOr, LRelease, LTRUE,
    LTLFormula, LTrue, LUntil, atom_payloads, evaluate_on_word, land, latom,
    lbefore, lchildren, lfinally, lglobally, limplies, lnext, lnot, lor,
    lrelease, luntil, lwalk, to_nnf,
)
from .buchi import BuchiAutomaton, Edge, GeneralizedBuchi, Guard, TRUE_GUARD
from .translate import ltl_to_buchi, ltl_to_generalized_buchi
from .complement import complement

__all__ = [
    "AP", "BuchiAutomaton", "Edge", "GeneralizedBuchi", "Guard", "LAnd",
    "LAtom", "LFALSE", "LFalse", "LNext", "LNot", "LOr", "LRelease",
    "LTRUE", "LTLFormula", "LTrue", "LUntil", "TRUE_GUARD", "atom_payloads",
    "complement", "evaluate_on_word", "land", "latom", "lbefore",
    "lchildren", "lfinally", "lglobally", "limplies", "lnext", "lnot",
    "lor", "lrelease", "ltl_to_buchi", "ltl_to_generalized_buchi", "luntil",
    "lwalk", "to_nnf",
]
