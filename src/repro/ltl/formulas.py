"""Propositional linear temporal logic over an arbitrary atom type.

The temporal layer of LTL-FO (Definition 3.1) is ordinary LTL whose atomic
propositions are (instantiated) FO sentences.  This module is generic: an
atomic proposition is any hashable object.

Core operators are ``X`` (next) and ``U`` (until), exactly as in the paper;
``R`` (release) exists as the dual needed for negation normal form.  The
derived operators the paper uses as shorthand -- ``G``, ``F`` and ``B``
(before) -- are provided as constructors:

* ``F phi  ==  true U phi``
* ``G phi  ==  false B phi  ==  ~F~phi``
* ``phi B psi`` ("phi must hold before psi fails") ``==  ~(~phi U ~psi)``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, Union

from ..errors import FormulaError

AP = Hashable

LTLFormula = Union[
    "LTrue", "LFalse", "LAtom", "LNot", "LAnd", "LOr",
    "LNext", "LUntil", "LRelease",
]


@dataclass(frozen=True, slots=True)
class LTrue:
    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True, slots=True)
class LFalse:
    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True, slots=True)
class LAtom:
    """An atomic proposition (any hashable payload)."""

    ap: AP

    def __str__(self) -> str:
        return str(self.ap)


@dataclass(frozen=True, slots=True)
class LNot:
    body: LTLFormula

    def __str__(self) -> str:
        return f"~({self.body})"


@dataclass(frozen=True, slots=True)
class LAnd:
    left: LTLFormula
    right: LTLFormula

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@dataclass(frozen=True, slots=True)
class LOr:
    left: LTLFormula
    right: LTLFormula

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True, slots=True)
class LNext:
    body: LTLFormula

    def __str__(self) -> str:
        return f"X({self.body})"


@dataclass(frozen=True, slots=True)
class LUntil:
    left: LTLFormula
    right: LTLFormula

    def __str__(self) -> str:
        return f"({self.left} U {self.right})"


@dataclass(frozen=True, slots=True)
class LRelease:
    """Release, the dual of until: ``phi R psi == ~(~phi U ~psi)``."""

    left: LTLFormula
    right: LTLFormula

    def __str__(self) -> str:
        return f"({self.left} R {self.right})"


LTRUE = LTrue()
LFALSE = LFalse()


# -- constructors --------------------------------------------------------

def latom(ap: AP) -> LAtom:
    return LAtom(ap)


def lnot(body: LTLFormula) -> LTLFormula:
    if isinstance(body, LTrue):
        return LFALSE
    if isinstance(body, LFalse):
        return LTRUE
    if isinstance(body, LNot):
        return body.body
    return LNot(body)


def land(*parts: LTLFormula) -> LTLFormula:
    """Conjunction of any number of formulas (binary tree internally)."""
    useful = [p for p in parts if not isinstance(p, LTrue)]
    if any(isinstance(p, LFalse) for p in useful):
        return LFALSE
    if not useful:
        return LTRUE
    result = useful[0]
    for p in useful[1:]:
        result = LAnd(result, p)
    return result


def lor(*parts: LTLFormula) -> LTLFormula:
    """Disjunction of any number of formulas (binary tree internally)."""
    useful = [p for p in parts if not isinstance(p, LFalse)]
    if any(isinstance(p, LTrue) for p in useful):
        return LTRUE
    if not useful:
        return LFALSE
    result = useful[0]
    for p in useful[1:]:
        result = LOr(result, p)
    return result


def limplies(a: LTLFormula, b: LTLFormula) -> LTLFormula:
    return lor(lnot(a), b)


def lnext(body: LTLFormula) -> LTLFormula:
    return LNext(body)


def luntil(left: LTLFormula, right: LTLFormula) -> LTLFormula:
    return LUntil(left, right)


def lrelease(left: LTLFormula, right: LTLFormula) -> LTLFormula:
    return LRelease(left, right)


def lfinally(body: LTLFormula) -> LTLFormula:
    """``F phi == true U phi``."""
    return LUntil(LTRUE, body)


def lglobally(body: LTLFormula) -> LTLFormula:
    """``G phi == false R phi``."""
    return LRelease(LFALSE, body)


def lbefore(left: LTLFormula, right: LTLFormula) -> LTLFormula:
    """The paper's ``B``: "phi must hold before psi fails".

    ``phi B psi == ~(~phi U ~psi)`` (Section 3).
    """
    return lnot(LUntil(lnot(left), lnot(right)))


# -- structure ------------------------------------------------------------

def lchildren(formula: LTLFormula) -> tuple[LTLFormula, ...]:
    if isinstance(formula, (LTrue, LFalse, LAtom)):
        return ()
    if isinstance(formula, (LNot, LNext)):
        return (formula.body,)
    if isinstance(formula, (LAnd, LOr, LUntil, LRelease)):
        return (formula.left, formula.right)
    raise FormulaError(f"not an LTL formula: {formula!r}")


def lwalk(formula: LTLFormula) -> Iterator[LTLFormula]:
    stack = [formula]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(lchildren(node)))


def atom_payloads(formula: LTLFormula) -> frozenset[AP]:
    """All atomic-proposition payloads mentioned in *formula*."""
    return frozenset(
        node.ap for node in lwalk(formula) if isinstance(node, LAtom)
    )


def to_nnf(formula: LTLFormula) -> LTLFormula:
    """Negation normal form: negations pushed down to atoms.

    Uses the dualities ``~X phi == X ~phi``, ``~(phi U psi) == ~phi R ~psi``
    and ``~(phi R psi) == ~phi U ~psi``.
    """
    if isinstance(formula, (LTrue, LFalse, LAtom)):
        return formula
    if isinstance(formula, LAnd):
        return LAnd(to_nnf(formula.left), to_nnf(formula.right))
    if isinstance(formula, LOr):
        return LOr(to_nnf(formula.left), to_nnf(formula.right))
    if isinstance(formula, LNext):
        return LNext(to_nnf(formula.body))
    if isinstance(formula, LUntil):
        return LUntil(to_nnf(formula.left), to_nnf(formula.right))
    if isinstance(formula, LRelease):
        return LRelease(to_nnf(formula.left), to_nnf(formula.right))
    if isinstance(formula, LNot):
        body = formula.body
        if isinstance(body, LTrue):
            return LFALSE
        if isinstance(body, LFalse):
            return LTRUE
        if isinstance(body, LAtom):
            return formula
        if isinstance(body, LNot):
            return to_nnf(body.body)
        if isinstance(body, LAnd):
            return LOr(to_nnf(lnot(body.left)), to_nnf(lnot(body.right)))
        if isinstance(body, LOr):
            return LAnd(to_nnf(lnot(body.left)), to_nnf(lnot(body.right)))
        if isinstance(body, LNext):
            return LNext(to_nnf(lnot(body.body)))
        if isinstance(body, LUntil):
            return LRelease(to_nnf(lnot(body.left)),
                            to_nnf(lnot(body.right)))
        if isinstance(body, LRelease):
            return LUntil(to_nnf(lnot(body.left)),
                          to_nnf(lnot(body.right)))
    raise FormulaError(f"not an LTL formula: {formula!r}")


def evaluate_on_word(formula: LTLFormula,
                     prefix: list[frozenset[AP]],
                     cycle: list[frozenset[AP]]) -> bool:
    """Truth of *formula* on the ultimately periodic word ``prefix cycle^w``.

    Reference semantics used by tests: evaluated by unrolling positions;
    position ``i >= len(prefix)`` maps into the cycle.  Correctness relies on
    the standard fact that an LTL formula's truth at positions of an
    ultimately periodic word is itself ultimately periodic with the same
    period, so checking ``len(prefix) + 2 * len(cycle) * (size of formula)``
    unrollings suffices; we implement the classic fixpoint evaluation over
    the lasso instead, which is exact.
    """
    if not cycle:
        raise FormulaError("cycle must be non-empty")
    total = len(prefix) + len(cycle)

    def letter(i: int) -> frozenset[AP]:
        if i < len(prefix):
            return prefix[i]
        return cycle[(i - len(prefix)) % len(cycle)]

    def succ(i: int) -> int:
        nxt = i + 1
        if nxt >= total:
            nxt = len(prefix)
        return nxt

    cache: dict[tuple[int, LTLFormula], bool] = {}

    def ev(i: int, f: LTLFormula) -> bool:
        key = (i, f)
        if key in cache:
            return cache[key]
        if isinstance(f, LTrue):
            result = True
        elif isinstance(f, LFalse):
            result = False
        elif isinstance(f, LAtom):
            result = f.ap in letter(i)
        elif isinstance(f, LNot):
            result = not ev(i, f.body)
        elif isinstance(f, LAnd):
            result = ev(i, f.left) and ev(i, f.right)
        elif isinstance(f, LOr):
            result = ev(i, f.left) or ev(i, f.right)
        elif isinstance(f, LNext):
            result = ev(succ(i), f.body)
        elif isinstance(f, LUntil):
            # walk forward at most `total` steps from i
            result = False
            j = i
            for _ in range(total + 1):
                if ev(j, f.right):
                    result = True
                    break
                if not ev(j, f.left):
                    result = False
                    break
                j = succ(j)
        elif isinstance(f, LRelease):
            result = not ev(i, LUntil(lnot(f.left), lnot(f.right)))
        else:
            raise FormulaError(f"not an LTL formula: {f!r}")
        cache[key] = result
        return result

    # Guard against the self-referential Until cache trap: evaluate untils
    # by explicit bounded walk (done above), all else memoized.
    return ev(0, formula)
