"""Büchi automata with guard-labelled transitions.

A :class:`BuchiAutomaton` reads infinite words over valuations of a finite
set of atomic propositions.  Transitions carry :class:`Guard` objects --
conjunctions of positive/negative AP literals -- rather than explicit
letters, which keeps automata over large alphabets (``2^AP``) compact.

The module provides the operations verification needs:

* membership of ultimately periodic (lasso) words,
* intersection (product) of two automata,
* emptiness with counterexample lasso extraction,
* degeneralization of generalized Büchi acceptance.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Iterator, Mapping, Sequence

from ..errors import FormulaError, VerificationError
from .formulas import AP

State = Hashable
Letter = frozenset


@dataclass(frozen=True, slots=True)
class Guard:
    """A conjunction of AP literals: all of *pos* hold, none of *neg* hold."""

    pos: frozenset = frozenset()
    neg: frozenset = frozenset()

    def satisfied(self, letter: Letter) -> bool:
        return self.pos <= letter and not (self.neg & letter)

    def is_consistent(self) -> bool:
        return not (self.pos & self.neg)

    def conjoin(self, other: "Guard") -> "Guard | None":
        """Conjunction of two guards, or None if contradictory."""
        merged = Guard(self.pos | other.pos, self.neg | other.neg)
        return merged if merged.is_consistent() else None

    def __str__(self) -> str:
        parts = [str(a) for a in sorted(self.pos, key=str)]
        parts += [f"~{a}" for a in sorted(self.neg, key=str)]
        return " & ".join(parts) if parts else "true"


TRUE_GUARD = Guard()


@dataclass(frozen=True, slots=True)
class Edge:
    """One transition: from *src*, reading a letter satisfying *guard*."""

    src: State
    guard: Guard
    dst: State


class BuchiAutomaton:
    """A nondeterministic Büchi automaton with guard-labelled edges.

    ``aps`` lists the atomic propositions the guards mention (the alphabet
    is ``2^aps``).  ``accepting`` is the set of Büchi-accepting states; a
    run is accepting iff it visits an accepting state infinitely often.
    """

    def __init__(self, states: Iterable[State], initial: Iterable[State],
                 edges: Iterable[Edge], accepting: Iterable[State],
                 aps: Iterable[AP]) -> None:
        self.states = frozenset(states)
        self.initial = frozenset(initial)
        self.accepting = frozenset(accepting)
        self.aps = frozenset(aps)
        by_src: dict[State, list[Edge]] = {s: [] for s in self.states}
        for edge in edges:
            if edge.src not in self.states or edge.dst not in self.states:
                raise FormulaError(
                    f"edge {edge} references unknown state"
                )
            by_src[edge.src].append(edge)
        self._edges: Mapping[State, tuple[Edge, ...]] = {
            s: tuple(es) for s, es in by_src.items()
        }
        missing = self.initial - self.states
        if missing:
            raise FormulaError(f"unknown initial states {missing}")
        if not (self.accepting <= self.states):
            raise FormulaError("accepting states not a subset of states")

    # -- basic queries ------------------------------------------------------

    def edges_from(self, state: State) -> tuple[Edge, ...]:
        return self._edges.get(state, ())

    def all_edges(self) -> Iterator[Edge]:
        for edges in self._edges.values():
            yield from edges

    def successors(self, state: State, letter: Letter) -> frozenset:
        """States reachable from *state* reading *letter*."""
        return frozenset(
            e.dst for e in self.edges_from(state) if e.guard.satisfied(letter)
        )

    def alphabet(self) -> Iterator[Letter]:
        """All letters (subsets of the APs).  Exponential; small APs only."""
        aps = sorted(self.aps, key=str)
        for r in range(len(aps) + 1):
            for combo in itertools.combinations(aps, r):
                yield frozenset(combo)

    def num_states(self) -> int:
        return len(self.states)

    def num_edges(self) -> int:
        return sum(len(es) for es in self._edges.values())

    # -- lasso-word membership -----------------------------------------------

    def accepts_lasso(self, prefix: Sequence[Letter],
                      cycle: Sequence[Letter]) -> bool:
        """True iff the automaton accepts ``prefix . cycle^omega``.

        Standard algorithm: run the subset-reachability along the prefix,
        then look for a state q reachable at the cycle entry from which the
        cycle word can be read back to q passing through an accepting state.
        Implemented via reachability in the unrolled (state, cycle-position)
        graph with an accepting-visit bit.
        """
        if not cycle:
            raise FormulaError("cycle must be non-empty")
        current: set[State] = set(self.initial)
        for letter in prefix:
            nxt: set[State] = set()
            for s in current:
                nxt |= self.successors(s, letter)
            current = nxt
            if not current:
                return False

        n = len(cycle)
        # Explore the product of the automaton with the cycle positions.
        # The word is accepted iff some reachable strongly connected
        # component of that product contains a cycle through an accepting
        # automaton state (the run can then loop there forever).
        graph: dict[tuple[State, int], set[tuple[State, int]]] = {}
        seen: set[tuple[State, int]] = {(q, 0) for q in current}
        frontier = list(seen)
        while frontier:
            node = frontier.pop()
            q, i = node
            for dst in self.successors(q, cycle[i]):
                nxt_node = (dst, (i + 1) % n)
                graph.setdefault(node, set()).add(nxt_node)
                if nxt_node not in seen:
                    seen.add(nxt_node)
                    frontier.append(nxt_node)

        for scc in _tarjan_sccs(graph, seen):
            has_cycle = len(scc) > 1 or any(
                node in graph.get(node, ()) for node in scc
            )
            if has_cycle and any(q in self.accepting for (q, _i) in scc):
                return True
        return False

    def is_empty(self) -> bool:
        """True iff the automaton accepts no word (explicit alphabet)."""
        return self.find_accepting_lasso() is None

    def find_accepting_lasso(self
                             ) -> tuple[list[Letter], list[Letter]] | None:
        """An accepted lasso word (prefix, cycle), or None if L(A) is empty.

        Explores the automaton with explicit letters; exponential in
        ``len(aps)``, intended for the small protocol/property automata.
        """
        if len(self.aps) > 16:
            raise VerificationError(
                "explicit emptiness limited to <= 16 APs; "
                "use the on-the-fly product search instead"
            )
        letters = list(self.alphabet())

        # Graph over states with letter-labelled edges; find a reachable
        # accepting state on a cycle, then reconstruct prefix and cycle.
        parents: dict[State, tuple[State, Letter] | None] = {}
        order: list[State] = []
        for s in self.initial:
            if s not in parents:
                parents[s] = None
                order.append(s)
        idx = 0
        while idx < len(order):
            s = order[idx]
            idx += 1
            for letter in letters:
                for dst in self.successors(s, letter):
                    if dst not in parents:
                        parents[dst] = (s, letter)
                        order.append(dst)

        def path_to(state: State) -> list[Letter]:
            word: list[Letter] = []
            cur = state
            while parents[cur] is not None:
                prev, letter = parents[cur]  # type: ignore[misc]
                word.append(letter)
                cur = prev
            word.reverse()
            return word

        for acc in self.accepting:
            if acc not in parents:
                continue
            cycle = self._cycle_through(acc, letters)
            if cycle is not None:
                return path_to(acc), cycle
        return None

    def _cycle_through(self, anchor: State, letters: list[Letter]
                       ) -> list[Letter] | None:
        """A non-empty word returning from *anchor* to *anchor*, or None."""
        parents: dict[State, tuple[State, Letter]] = {}
        frontier = [anchor]
        first = True
        while frontier:
            nxt_frontier: list[State] = []
            for s in frontier:
                for letter in letters:
                    for dst in self.successors(s, letter):
                        if dst == anchor and (s != anchor or not first):
                            word = [letter]
                            cur = s
                            while cur != anchor:
                                prev, lt = parents[cur]
                                word.append(lt)
                                cur = prev
                            word.reverse()
                            return word
                        if dst == anchor and first:
                            # self loop on the very first expansion
                            return [letter]
                        if dst not in parents and dst != anchor:
                            parents[dst] = (s, letter)
                            nxt_frontier.append(dst)
            frontier = nxt_frontier
            first = False
        return None

    # -- operations -----------------------------------------------------------

    def intersection(self, other: "BuchiAutomaton") -> "BuchiAutomaton":
        """Product automaton accepting ``L(self) & L(other)``.

        Classic 3-track construction (tracks switch after seeing each
        automaton's accepting states in turn).
        """
        states = set()
        edges: list[Edge] = []
        accepting = set()
        initial = set()
        for a in self.states:
            for b in other.states:
                for t in (0, 1):
                    states.add((a, b, t))
        for a in self.initial:
            for b in other.initial:
                initial.add((a, b, 0))
        for ea in self.all_edges():
            for eb in other.all_edges():
                guard = ea.guard.conjoin(eb.guard)
                if guard is None:
                    continue
                for t in (0, 1):
                    if t == 0:
                        nt = 1 if ea.dst in self.accepting else 0
                    else:
                        nt = 0 if eb.dst in other.accepting else 1
                    edges.append(
                        Edge((ea.src, eb.src, t), guard, (ea.dst, eb.dst, nt))
                    )
        for a in self.states:
            for b in other.accepting:
                accepting.add((a, b, 1))
        return BuchiAutomaton(states, initial, edges, accepting,
                              self.aps | other.aps)

    def map_states(self, rename: Callable[[State], State]
                   ) -> "BuchiAutomaton":
        """A copy with every state renamed through *rename* (injective)."""
        return BuchiAutomaton(
            (rename(s) for s in self.states),
            (rename(s) for s in self.initial),
            (Edge(rename(e.src), e.guard, rename(e.dst))
             for e in self.all_edges()),
            (rename(s) for s in self.accepting),
            self.aps,
        )

    def __repr__(self) -> str:
        return (f"BuchiAutomaton(states={len(self.states)}, "
                f"edges={self.num_edges()}, "
                f"accepting={len(self.accepting)}, aps={len(self.aps)})")


def _tarjan_sccs(graph: Mapping, nodes: Iterable) -> list[set]:
    """Tarjan's strongly connected components, iterative."""
    index: dict = {}
    lowlink: dict = {}
    on_stack: set = set()
    stack: list = []
    sccs: list[set] = []
    counter = itertools.count()

    for root in nodes:
        if root in index:
            continue
        work = [(root, iter(graph.get(root, ())))]
        index[root] = lowlink[root] = next(counter)
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = next(counter)
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.add(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs


@dataclass(frozen=True, slots=True)
class GeneralizedBuchi:
    """A generalized Büchi automaton: several acceptance sets.

    A run is accepting iff it visits *every* acceptance set infinitely
    often.  Degeneralization produces an equivalent plain NBA with a
    round-robin counter.
    """

    states: frozenset
    initial: frozenset
    edges: tuple[Edge, ...]
    acceptance_sets: tuple[frozenset, ...]
    aps: frozenset

    def degeneralize(self) -> BuchiAutomaton:
        sets = self.acceptance_sets or (frozenset(self.states),)
        k = len(sets)
        states = {(s, i) for s in self.states for i in range(k)}
        initial = {(s, 0) for s in self.initial}
        edges: list[Edge] = []
        for e in self.edges:
            for i in range(k):
                ni = (i + 1) % k if e.src in sets[i] else i
                edges.append(Edge((e.src, i), e.guard, (e.dst, ni)))
        accepting = {(s, 0) for s in sets[0]}
        return BuchiAutomaton(states, initial, edges, accepting, self.aps)
