"""LTL to Büchi automaton translation (GPVW tableau construction).

Implements the classic "simple on-the-fly" construction of Gerth, Peled,
Vardi and Wolper (PSTV'95): the formula is put in negation normal form,
tableau nodes are expanded by splitting on the fixpoint characterizations
of ``U`` and ``R``, and the resulting node graph is read as a generalized
Büchi automaton (one acceptance set per ``U`` subformula), which is then
degeneralized.

The produced automaton reads words over valuations of the formula's atomic
propositions; guards on edges record the positive/negative literals a node
committed to.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..errors import FormulaError
from ..obs import PHASE_TRANSLATE, counter, histogram, phase
from .buchi import BuchiAutomaton, Edge, GeneralizedBuchi, Guard
from .formulas import (
    LAnd, LAtom, LFalse, LNext, LNot, LOr, LRelease, LTrue, LUntil,
    LTLFormula, atom_payloads, to_nnf,
)

_INIT = "__init__"


@dataclass
class _Node:
    """A GPVW tableau node under construction."""

    name: int
    incoming: set
    new: set
    old: set
    next: set


def _is_literal(f: LTLFormula) -> bool:
    if isinstance(f, (LTrue, LFalse, LAtom)):
        return True
    return isinstance(f, LNot) and isinstance(f.body, LAtom)


def _negated(f: LTLFormula) -> LTLFormula:
    """Negation of a literal, staying within literals."""
    if isinstance(f, LTrue):
        return LFalse()
    if isinstance(f, LFalse):
        return LTrue()
    if isinstance(f, LNot):
        return f.body
    return LNot(f)


def _expand(node: _Node, nodes: list[_Node],
            counter: "itertools.count") -> None:
    """The GPVW expand() procedure, iterative over an explicit stack."""
    stack = [node]
    while stack:
        cur = stack.pop()
        if not cur.new:
            # look for an existing node with identical old/next sets
            merged = False
            for existing in nodes:
                if existing.old == cur.old and existing.next == cur.next:
                    existing.incoming |= cur.incoming
                    merged = True
                    break
            if merged:
                continue
            nodes.append(cur)
            successor = _Node(
                name=next(counter),
                incoming={cur.name},
                new=set(cur.next),
                old=set(),
                next=set(),
            )
            stack.append(successor)
            continue

        eta = cur.new.pop()
        if _is_literal(eta):
            if isinstance(eta, LFalse) or _negated(eta) in cur.old:
                continue  # contradictory node: discard
            if not isinstance(eta, LTrue):
                cur.old.add(eta)
            stack.append(cur)
        elif isinstance(eta, LAnd):
            for part in (eta.left, eta.right):
                if part not in cur.old:
                    cur.new.add(part)
            cur.old.add(eta)
            stack.append(cur)
        elif isinstance(eta, LNext):
            cur.next.add(eta.body)
            cur.old.add(eta)
            stack.append(cur)
        elif isinstance(eta, (LOr, LUntil, LRelease)):
            if isinstance(eta, LOr):
                new1 = {eta.left}
                new2 = {eta.right}
                next1: set = set()
            elif isinstance(eta, LUntil):
                new1 = {eta.left}
                new2 = {eta.right}
                next1 = {eta}
            else:  # LRelease
                new1 = {eta.right}
                new2 = {eta.left, eta.right}
                next1 = {eta}
            node1 = _Node(
                name=next(counter),
                incoming=set(cur.incoming),
                new=cur.new | (new1 - cur.old),
                old=cur.old | {eta},
                next=cur.next | next1,
            )
            node2 = _Node(
                name=next(counter),
                incoming=set(cur.incoming),
                new=cur.new | (new2 - cur.old),
                old=cur.old | {eta},
                next=set(cur.next),
            )
            stack.append(node2)
            stack.append(node1)
        else:
            raise FormulaError(f"formula not in NNF: {eta}")


def _guard_of(old: set) -> Guard:
    pos = frozenset(f.ap for f in old if isinstance(f, LAtom))
    neg = frozenset(
        f.body.ap for f in old
        if isinstance(f, LNot) and isinstance(f.body, LAtom)
    )
    return Guard(pos, neg)


def ltl_to_generalized_buchi(formula: LTLFormula) -> GeneralizedBuchi:
    """Translate *formula* into a generalized Büchi automaton.

    The automaton has a distinguished initial state that reads the first
    letter on its outgoing edges, so a word ``w0 w1 ...`` is accepted iff
    the formula holds at position 0.
    """
    nnf = to_nnf(formula)
    counter = itertools.count(1)
    nodes: list[_Node] = []
    root = _Node(
        name=next(counter),
        incoming={_INIT},
        new={nnf},
        old=set(),
        next=set(),
    )
    _expand(root, nodes, counter)

    aps = atom_payloads(nnf)
    states: set = {_INIT} | {n.name for n in nodes}
    edges: list[Edge] = []
    for target in nodes:
        guard = _guard_of(target.old)
        for src in target.incoming:
            edges.append(Edge(src, guard, target.name))

    # one acceptance set per Until subformula
    untils = [
        f for n in nodes for f in n.old if isinstance(f, LUntil)
    ]
    unique_untils: list[LUntil] = []
    for u in untils:
        if u not in unique_untils:
            unique_untils.append(u)
    acceptance_sets = []
    for u in unique_untils:
        sat = frozenset(
            n.name for n in nodes
            if u.right in n.old or u not in n.old
        )
        acceptance_sets.append(sat)
    if not acceptance_sets:
        acceptance_sets.append(frozenset(n.name for n in nodes))

    return GeneralizedBuchi(
        states=frozenset(states),
        initial=frozenset({_INIT}),
        edges=tuple(edges),
        acceptance_sets=tuple(acceptance_sets),
        aps=frozenset(aps),
    )


def ltl_to_buchi(formula: LTLFormula) -> BuchiAutomaton:
    """Translate *formula* to a plain (degeneralized) Büchi automaton."""
    with phase(PHASE_TRANSLATE):
        nba = ltl_to_generalized_buchi(formula).degeneralize()
    counter("translate.automata_built").inc()
    counter("translate.nba_states").inc(nba.num_states())
    histogram("translate.nba_states_dist",
              boundaries=(2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
              ).observe(nba.num_states())
    return nba
