"""Büchi complementation via the rank-based (Kupferman-Vardi) construction.

Conversation protocols (Section 4) are given as Büchi automata ``B`` over
the message alphabet; a composition satisfies the protocol iff every run's
trace lies in ``L(B)``.  Checking this requires an automaton for the
*complement* language.  For protocols specified in LTL we negate the
formula instead, but for protocols given directly as automata we complement
with the classic rank-based construction:

States of the complement are pairs ``(ranking, obligation)`` where

* ``ranking`` maps each tracked state of ``B`` to a rank in ``0..2n``
  (accepting states of ``B`` only take even ranks), and
* ``obligation`` is the subset of even-ranked tracked states that still
  have to decrease to an odd rank.

A run of the complement is accepting iff the obligation set empties
infinitely often.  The construction is worst-case ``2^O(n log n)``; we use
it for the small protocol automata only (guarded by a size check).

Alphabet letters are explicit subsets of the AP set, so this module is
intended for automata with few atomic propositions.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Mapping

from ..errors import VerificationError
from .buchi import BuchiAutomaton, Edge, Guard, Letter

#: A ranking: immutable mapping state -> rank, as a sorted tuple of pairs.
Ranking = tuple[tuple[object, int], ...]


def _letter_guard(letter: Letter, aps: frozenset) -> Guard:
    """Guard satisfied exactly by *letter* over the AP universe *aps*."""
    return Guard(pos=frozenset(letter), neg=aps - letter)


def _rankings(domain: list, max_rank: Mapping, accepting: frozenset
              ) -> Iterable[Ranking]:
    """All rankings of *domain* bounded by *max_rank*, even on accepting."""
    choices: list[list[int]] = []
    for q in domain:
        allowed = range(0, max_rank[q] + 1)
        if q in accepting:
            choices.append([r for r in allowed if r % 2 == 0])
        else:
            choices.append(list(allowed))
    for combo in itertools.product(*choices):
        yield tuple(zip(domain, combo))


def is_deterministic(automaton: BuchiAutomaton) -> bool:
    """True iff the automaton has one initial state and, for every state
    and letter, at most one successor."""
    if len(automaton.initial) != 1:
        return False
    for state in automaton.states:
        for letter in automaton.alphabet():
            if len(automaton.successors(state, letter)) > 1:
                return False
    return True


def complement_deterministic(automaton: BuchiAutomaton) -> BuchiAutomaton:
    """Complement of a *deterministic* Büchi automaton.

    A word is rejected by a DBA iff its (unique) run visits accepting
    states only finitely often, or dies.  The complement guesses the point
    after which no accepting state is visited: it runs a copy of the
    automaton, nondeterministically jumps into a second track restricted to
    non-accepting states, and accepts when it stays there forever.  A sink
    state accepts words whose run dies.
    """
    letters = list(automaton.alphabet())
    aps = automaton.aps
    sink = ("__dead__",)
    states: set = {("wait", s) for s in automaton.states}
    states |= {("avoid", s) for s in automaton.states
               if s not in automaton.accepting}
    states.add(sink)
    edges: list[Edge] = []
    for state in automaton.states:
        for letter in letters:
            guard = _letter_guard(letter, aps)
            succs = automaton.successors(state, letter)
            if not succs:
                edges.append(Edge(("wait", state), guard, sink))
                if state not in automaton.accepting:
                    edges.append(Edge(("avoid", state), guard, sink))
                continue
            for dst in succs:
                edges.append(Edge(("wait", state), guard, ("wait", dst)))
                if dst not in automaton.accepting:
                    edges.append(
                        Edge(("wait", state), guard, ("avoid", dst))
                    )
                    if state not in automaton.accepting:
                        edges.append(
                            Edge(("avoid", state), guard, ("avoid", dst))
                        )
    for letter in letters:
        edges.append(Edge(sink, _letter_guard(letter, aps), sink))
    initial = {("wait", s) for s in automaton.initial}
    accepting = {s for s in states if s == sink or s[0] == "avoid"}
    return BuchiAutomaton(states, initial, edges, accepting, aps)


def complement(automaton: BuchiAutomaton,
               max_states: int = 200_000) -> BuchiAutomaton:
    """An NBA accepting exactly the words *automaton* rejects.

    Deterministic automata are complemented with the cheap two-track
    construction; nondeterministic ones fall back to the rank-based
    construction, which is guarded by a size check (protocol automata are
    small; anything larger should be expressed in LTL, where negation is
    free).

    Raises :class:`VerificationError` if the construction would exceed
    *max_states* states.
    """
    n = len(automaton.states)
    if len(automaton.aps) > 10:
        raise VerificationError(
            "complementation requires an explicit alphabet; "
            f"{len(automaton.aps)} APs is too many"
        )
    if is_deterministic(automaton):
        return complement_deterministic(automaton)
    if n > 5:
        raise VerificationError(
            f"rank-based complementation limited to 5 states, got {n}; "
            "specify the protocol in LTL or as a deterministic automaton"
        )
    top = 2 * n
    letters = list(automaton.alphabet())
    aps = automaton.aps

    initial_ranking: Ranking = tuple(
        sorted(((q, top) for q in automaton.initial), key=lambda p: str(p[0]))
    )
    initial_state = (initial_ranking, frozenset())

    states: set = set()
    edges: list[Edge] = []
    frontier = [initial_state]
    states.add(initial_state)

    while frontier:
        state = frontier.pop()
        ranking, obligation = state
        rank_of = dict(ranking)
        for letter in letters:
            # successor domain and the per-state rank ceiling
            max_rank: dict = {}
            for q, rank in ranking:
                for q2 in automaton.successors(q, letter):
                    prev = max_rank.get(q2)
                    max_rank[q2] = rank if prev is None else min(prev, rank)
            domain = sorted(max_rank, key=str)
            if not domain:
                # automaton has no run: complement accepts via the sink
                sink = ((), frozenset())
                if sink not in states:
                    states.add(sink)
                    frontier.append(sink)
                edges.append(
                    Edge(state, _letter_guard(letter, aps), sink)
                )
                continue
            for next_ranking in _rankings(domain, max_rank,
                                          automaton.accepting):
                next_rank_of = dict(next_ranking)
                if obligation:
                    successors_of_o: set = set()
                    for q in obligation:
                        successors_of_o |= automaton.successors(q, letter)
                    next_obligation = frozenset(
                        q for q in successors_of_o
                        if q in next_rank_of and next_rank_of[q] % 2 == 0
                    )
                else:
                    next_obligation = frozenset(
                        q for q, r in next_ranking if r % 2 == 0
                    )
                next_state = (next_ranking, next_obligation)
                if next_state not in states:
                    if len(states) >= max_states:
                        raise VerificationError(
                            f"complementation exceeded {max_states} states"
                        )
                    states.add(next_state)
                    frontier.append(next_state)
                edges.append(
                    Edge(state, _letter_guard(letter, aps), next_state)
                )

    # the empty-domain sink loops forever with empty obligation
    sink = ((), frozenset())
    if sink in states:
        for letter in letters:
            edges.append(Edge(sink, _letter_guard(letter, aps), sink))

    accepting = {s for s in states if not s[1]}
    return BuchiAutomaton(states, {initial_state}, edges, accepting, aps)
