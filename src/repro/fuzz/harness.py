"""The differential oracle harness: every generated spec, full pipeline.

For each :class:`GeneratedSpec` the harness runs a stack of layered
oracles, each of which must hold for every well-formed spec regardless
of its verdict:

1. **Classifier** -- the static analyzer never crashes on a generated
   spec, and :func:`repro.analysis.classify` places it on the theorem
   row it was generated for.
2. **Round-trip** -- the spec serializes to ``.dws`` text and parses
   back structurally equal (peers, databases, property texts); this is
   load-bearing for corpus replay.
3. **Engine differential** -- ``engine="seed"`` and ``engine="shared"``
   agree bit-for-bit: verdict, decisive order, valuation/node counts,
   decisive valuation, and counterexample lasso.
4. **Distribution** -- a 2-worker sweep and a 2-way ``--shard`` split
   merged back through :func:`merge_fragments` both reproduce the
   sequential result exactly.
5. **Replay** -- every counterexample lasso replays as a genuine run
   through :func:`repro.runtime.validate_lasso`.
6. **Verdict** -- rows with certain expected verdicts (the decidable
   baseline) must produce them.

Oracles 3-6 only run where the configuration is verifiable (bounded
queues); row 3.5 runs them with the IB pre-check disabled, which is
exactly the bug-finding-stays-sound claim of the paper's Section 3.

The ``verify_hook`` seam exists for the mutation test in the suite: a
deliberately buggy engine wrapper injected there must be caught by the
differential oracle and shrunk to a minimized reproducer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from ..obs import campaign_progress, instant
from ..runtime import validate_lasso
from ..verifier import (
    merge_fragments, result_from_merged, shard_fragment,
    verification_domain, verify,
)
from .generate import GeneratedSpec, generate
from .shrink import shrink

#: Signature of the verification seam: ``verify`` plus keyword options.
VerifyHook = Callable[..., object]


@dataclass(frozen=True)
class OracleViolation:
    """One oracle the spec failed, with a human-readable detail."""

    oracle: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.detail}"


@dataclass
class CaseOutcome:
    """The oracle verdicts for one generated spec."""

    spec: GeneratedSpec
    violations: list[OracleViolation] = field(default_factory=list)
    verified: bool = False   # did the verify-based oracles run?

    @property
    def ok(self) -> bool:
        return not self.violations

    def oracles_failed(self) -> frozenset[str]:
        return frozenset(v.oracle for v in self.violations)


@dataclass
class FuzzReport:
    """The aggregate outcome of one ``repro fuzz`` campaign."""

    seed: int
    count: int
    rows: tuple[str, ...]
    outcomes: list[CaseOutcome] = field(default_factory=list)
    corpus_files: list[str] = field(default_factory=list)
    emitted_files: list[str] = field(default_factory=list)

    @property
    def failures(self) -> list[CaseOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        verified = sum(1 for o in self.outcomes if o.verified)
        head = (f"fuzz: {len(self.outcomes)} case(s) over row(s) "
                f"{', '.join(self.rows)} (seed {self.seed}); "
                f"{verified} verified end-to-end; "
                f"{len(self.failures)} oracle violation(s)")
        lines = [head]
        if self.emitted_files:
            lines.append(
                f"  {len(self.emitted_files)} spec(s) emitted to corpus")
        for outcome in self.failures:
            for violation in outcome.violations:
                lines.append(
                    f"  seed={outcome.spec.seed} row={outcome.spec.row}: "
                    f"{violation}"
                )
        for path in self.corpus_files:
            lines.append(f"  minimized reproducer: {path}")
        return "\n".join(lines)


# -- individual oracles ------------------------------------------------------


def _classifier_oracle(spec: GeneratedSpec) -> list[OracleViolation]:
    from ..analysis import classify
    from ..ltlfo.parser import parse_ltlfo

    try:
        sentences = [parse_ltlfo(text, spec.composition.schema)
                     for text in spec.properties.values()]
        classification = classify(spec.composition, sentences,
                                  spec.semantics)
    except Exception as err:  # the oracle: lint must never crash
        return [OracleViolation(
            "classifier", f"classify crashed: {err!r}"
        )]
    if not spec.matches_classification(classification):
        want = (spec.expected_theorem or spec.expected_restriction
                or "decidable" if spec.expected_decidable else "undecidable")
        return [OracleViolation(
            "classifier",
            f"requested row {spec.row} ({want}), "
            f"classified as: {classification.describe()}"
        )]
    return []


def _roundtrip_oracle(spec: GeneratedSpec) -> list[OracleViolation]:
    from ..spec.dsl import compositions_equal, load_document

    try:
        text = spec.to_dws()
        comp, dbs, props = load_document(text)
    except Exception as err:
        return [OracleViolation(
            "roundtrip", f"dump/load crashed: {err!r}"
        )]
    out = []
    if not compositions_equal(spec.composition, comp):
        out.append(OracleViolation(
            "roundtrip", "composition did not round-trip structurally"
        ))
    if dbs != spec.databases:
        out.append(OracleViolation(
            "roundtrip", "databases did not round-trip"
        ))
    if set(props) != set(spec.properties):
        out.append(OracleViolation(
            "roundtrip",
            f"property names did not round-trip: "
            f"{sorted(props)} != {sorted(spec.properties)}"
        ))
    return out


def _diff(field_name: str, a, b) -> str | None:
    return None if a == b else f"{field_name}: {a!r} != {b!r}"


def _compare_results(reference, other, what: str) -> list[str]:
    """The determinism contract, field by field."""
    problems = [p for p in (
        _diff("verdict", reference.verdict, other.verdict),
        _diff("decisive_order", reference.stats.decisive_order,
              other.stats.decisive_order),
        _diff("valuations_checked", reference.stats.valuations_checked,
              other.stats.valuations_checked),
        _diff("product_nodes_visited",
              reference.stats.product_nodes_visited,
              other.stats.product_nodes_visited),
    ) if p]
    ref_cex, other_cex = reference.counterexample, other.counterexample
    if (ref_cex is None) != (other_cex is None):
        problems.append(
            f"counterexample presence: {ref_cex is not None} != "
            f"{other_cex is not None}"
        )
    elif ref_cex is not None:
        problems.extend(p for p in (
            _diff("decisive valuation", ref_cex.valuation,
                  other_cex.valuation),
            _diff("lasso", ref_cex.lasso, other_cex.lasso),
        ) if p)
    return [f"{what}: {p}" for p in problems]


def _verify_oracles(spec: GeneratedSpec,
                    verify_hook: VerifyHook) -> list[OracleViolation]:
    comp, dbs = spec.composition, spec.databases
    domain = verification_domain(comp, [], dbs, fresh_count=1)
    out: list[OracleViolation] = []

    for name, text in sorted(spec.properties.items()):
        kwargs = dict(
            semantics=spec.semantics, domain=domain,
            check_input_bounded=spec.check_input_bounded,
        )
        try:
            reference = verify(comp, text, dbs, engine="shared", **kwargs)
        except Exception as err:
            out.append(OracleViolation(
                "engine", f"{name}: sequential verify crashed: {err!r}"
            ))
            continue

        expected = spec.expected_verdicts.get(name)
        if expected is not None and reference.satisfied != expected:
            out.append(OracleViolation(
                "verdict",
                f"{name}: expected "
                f"{'SATISFIED' if expected else 'VIOLATED'}, "
                f"got {reference.verdict}"
            ))

        # engine differential: the per-valuation seed engine against
        # the shared-exploration engine (possibly hooked by a test)
        try:
            seeded = verify_hook(comp, text, dbs, engine="seed", **kwargs)
        except Exception as err:
            out.append(OracleViolation(
                "engine-differential",
                f"{name}: seed engine crashed: {err!r}"
            ))
            seeded = None
        if seeded is not None:
            out.extend(OracleViolation("engine-differential", p)
                       for p in _compare_results(
                           reference, seeded, f"{name} seed-vs-shared"))

        # distribution: a worker pool and a merged shard split
        try:
            pooled = verify_hook(comp, text, dbs, workers=2, **kwargs)
        except Exception as err:
            out.append(OracleViolation(
                "workers", f"{name}: 2-worker sweep crashed: {err!r}"
            ))
            pooled = None
        if pooled is not None:
            out.extend(OracleViolation("workers", p)
                       for p in _compare_results(
                           reference, pooled, f"{name} workers=2"))

        try:
            fragments = []
            for index in range(2):
                shard_result = verify_hook(
                    comp, text, dbs, shard=(index, 2), **kwargs
                )
                fragments.append(shard_fragment(
                    [shard_result], (index, 2), composition=comp
                ))
            merged = result_from_merged(
                merge_fragments(fragments)["properties"][0]
            )
        except Exception as err:
            out.append(OracleViolation(
                "shard", f"{name}: shard/merge crashed: {err!r}"
            ))
            merged = None
        if merged is not None:
            out.extend(OracleViolation("shard", p)
                       for p in _compare_results(
                           reference, merged, f"{name} merged 2 shards"))

        # replay: the counterexample must be a genuine lossy run
        if reference.counterexample is not None:
            problems = validate_lasso(
                comp, dbs, domain.values,
                reference.counterexample.lasso,
                semantics=spec.semantics,
            )
            if problems:
                out.append(OracleViolation(
                    "replay",
                    f"{name}: counterexample does not replay: "
                    f"{'; '.join(problems)}"
                ))
    return out


# -- the harness -------------------------------------------------------------


def run_case(spec: GeneratedSpec,
             verify_hook: VerifyHook = verify) -> CaseOutcome:
    """Run one generated spec through the full oracle stack."""
    outcome = CaseOutcome(spec=spec)
    outcome.violations.extend(_classifier_oracle(spec))
    outcome.violations.extend(_roundtrip_oracle(spec))
    if spec.verifiable:
        outcome.violations.extend(_verify_oracles(spec, verify_hook))
        outcome.verified = True
    return outcome


def _still_fails(oracles: frozenset[str],
                 verify_hook: VerifyHook) -> Callable[[GeneratedSpec], bool]:
    """The shrinker predicate: some originally failing oracle still fails."""
    def predicate(candidate: GeneratedSpec) -> bool:
        outcome = run_case(candidate, verify_hook=verify_hook)
        return bool(outcome.oracles_failed() & oracles)
    return predicate


def minimize(outcome: CaseOutcome,
             verify_hook: VerifyHook = verify) -> GeneratedSpec:
    """Shrink a failing case while its oracle violations persist."""
    return shrink(
        outcome.spec,
        _still_fails(outcome.oracles_failed(), verify_hook),
    )


def fuzz(count: int = 25,
         seed: int = 0,
         rows: Sequence[str] = ("3.4",),
         corpus_dir: str | Path | None = None,
         emit_dir: str | Path | None = None,
         verify_hook: VerifyHook = verify,
         log: Callable[[str], None] | None = None) -> FuzzReport:
    """Run a fuzz campaign: *count* cases round-robin over *rows*.

    Case ``i`` uses the derived seed ``seed * 1_000_003 + i``, so a
    campaign is fully replayable from ``(seed, count, rows)`` and any
    single case from the seed recorded in its corpus header.  Failing
    cases are shrunk and persisted under *corpus_dir* (when given) as
    replayable ``.dws`` files; *emit_dir* (when given) receives *every*
    generated spec, passing or not -- the corpus ``repro lint --cache``
    runs over in CI.
    """
    report = FuzzReport(seed=seed, count=count, rows=tuple(rows))
    progress = campaign_progress(count)
    progress.set_info(seed=seed, rows="/".join(rows))
    try:
        _fuzz_loop(report, count, seed, corpus_dir, emit_dir,
                   verify_hook, log, progress)
    finally:
        progress.finish()
    return report


def _fuzz_loop(report: FuzzReport, count: int, seed: int,
               corpus_dir, emit_dir, verify_hook, log, progress) -> None:
    for i in range(count):
        row = report.rows[i % len(report.rows)]
        case_seed = seed * 1_000_003 + i
        instant("fuzz-case", index=i, seed=case_seed, row=row)
        spec = generate(case_seed, row)
        if emit_dir is not None:
            directory = Path(emit_dir)
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / (
                f"gen_seed{case_seed}_row{row.replace('.', '_')}.dws")
            path.write_text(spec.to_dws())
            report.emitted_files.append(str(path))
        outcome = run_case(spec, verify_hook=verify_hook)
        report.outcomes.append(outcome)
        progress.advance(
            1, failing=int(not outcome.ok),
            verified=int(outcome.verified),
        )
        if outcome.ok:
            continue
        if log:
            log(f"case {i} (seed {case_seed}, row {row}): "
                f"{len(outcome.violations)} violation(s); shrinking")
        minimized = minimize(outcome, verify_hook=verify_hook)
        if corpus_dir is not None:
            directory = Path(corpus_dir)
            directory.mkdir(parents=True, exist_ok=True)
            oracle = sorted(outcome.oracles_failed())[0]
            path = directory / (
                f"case_seed{case_seed}_row{row.replace('.', '_')}"
                f"_{oracle}.dws"
            )
            extra = "violations:\n" + "\n".join(
                f"  {v}" for v in outcome.violations
            )
            path.write_text(minimized.to_dws(extra_header=extra))
            report.corpus_files.append(str(path))
