"""Greedy delta-debugging shrinker for generated scenarios.

Given a failing :class:`GeneratedSpec` and a predicate "does this
reduced spec still fail the same way?", repeatedly try structural
deletions -- whole peers, individual rules, unused declarations,
database rows, properties -- keeping each deletion that preserves the
failure, until a fixpoint.  Every candidate is rebuilt through
:class:`PeerBuilder`, so a deletion that leaves the spec malformed
(e.g. removing the only input rule of a populated input relation)
raises :class:`SpecificationError` and is simply skipped; the shrinker
never emits an ill-formed spec.

The result is what lands in the fuzz corpus: a minimal replayable
``.dws`` reproducer of the oracle violation.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..errors import ReproError
from ..fo.formulas import relations as formula_relations
from ..fo.instance import Instance
from ..spec.composition import Composition
from ..spec.peer import Peer, PeerBuilder
from .generate import GeneratedSpec, with_composition

#: PeerBuilder declaration method per (kind-ish) slot of a Peer.
_DECL_SLOTS = (
    ("database", "database"),
    ("states", "state"),
    ("inputs", "input"),
    ("actions", "action"),
)
_RULE_METHODS = {
    "input": "input_rule",
    "insert": "insert_rule",
    "delete": "delete_rule",
    "action": "action_rule",
    "send": "send_rule",
}


def _rebuild_peer(peer: Peer,
                  drop_rule: int | None = None,
                  drop_decl: str | None = None) -> Peer:
    """Rebuild *peer* without one rule / one declaration.

    Raises :class:`SpecificationError` when the reduced peer is
    ill-formed; callers treat that as "candidate not applicable".
    """
    builder = PeerBuilder(peer.name)
    for attr, method in _DECL_SLOTS:
        for sym in getattr(peer, attr):
            if sym.name == drop_decl:
                continue
            getattr(builder, method)(sym.name, sym.arity)
    for sym in peer.in_queues:
        if sym.name == drop_decl:
            continue
        method = "nested_in_queue" if sym.nested else "flat_in_queue"
        getattr(builder, method)(sym.name, sym.arity)
    for sym in peer.out_queues:
        if sym.name == drop_decl:
            continue
        method = "nested_out_queue" if sym.nested else "flat_out_queue"
        getattr(builder, method)(sym.name, sym.arity)
    for idx, rule in enumerate(peer.rules):
        if idx == drop_rule:
            continue
        method = getattr(builder, _RULE_METHODS[rule.kind.value])
        method(rule.target, [v.name for v in rule.head], rule.body)
    return builder.build()


def _unused_declarations(peer: Peer) -> list[str]:
    """Declared relations no remaining rule targets or mentions."""
    used: set[str] = set()
    for rule in peer.rules:
        used.add(rule.target)
        used |= formula_relations(rule.body)
    return [sym.name for sym in peer.relations() if sym.name not in used]


def _restrict_databases(databases: dict[str, Instance],
                        composition: Composition) -> dict[str, Instance]:
    names = {p.name for p in composition.peers}
    return {n: inst for n, inst in databases.items() if n in names}


def _candidates(spec: GeneratedSpec) -> Iterator[GeneratedSpec]:
    """All one-step reductions of *spec*, largest deletions first."""
    comp = spec.composition
    peers = comp.peers

    # whole peers (open compositions are legal: dangling channels become
    # environment channels)
    if len(peers) > 1:
        for idx in range(len(peers)):
            reduced = peers[:idx] + peers[idx + 1:]
            try:
                new_comp = Composition(reduced)
            except ReproError:
                continue
            yield with_composition(
                spec, new_comp,
                _restrict_databases(spec.databases, new_comp),
                dict(spec.properties),
            )

    # individual rules
    for p_idx, peer in enumerate(peers):
        for r_idx in range(len(peer.rules)):
            try:
                new_peer = _rebuild_peer(peer, drop_rule=r_idx)
                new_comp = Composition(
                    peers[:p_idx] + (new_peer,) + peers[p_idx + 1:]
                )
            except ReproError:
                continue
            yield with_composition(
                spec, new_comp,
                _restrict_databases(spec.databases, new_comp),
                dict(spec.properties),
            )

    # unused declarations
    for p_idx, peer in enumerate(peers):
        for decl in _unused_declarations(peer):
            try:
                new_peer = _rebuild_peer(peer, drop_decl=decl)
                new_comp = Composition(
                    peers[:p_idx] + (new_peer,) + peers[p_idx + 1:]
                )
            except ReproError:
                continue
            yield with_composition(
                spec, new_comp,
                _restrict_databases(spec.databases, new_comp),
                dict(spec.properties),
            )

    # properties (keep at least one: a spec without properties has
    # nothing for the verify-based oracles to disagree about)
    if len(spec.properties) > 1:
        for name in list(spec.properties):
            props = {n: t for n, t in spec.properties.items()
                     if n != name}
            yield with_composition(spec, comp, dict(spec.databases),
                                   props)

    # database rows
    for peer_name, instance in spec.databases.items():
        for rel, rows in instance.items():
            if len(rows) <= 1:
                continue
            for row in sorted(rows):
                remaining = [r for r in rows if r != row]
                dbs = dict(spec.databases)
                dbs[peer_name] = instance.updated(rel, remaining)
                yield with_composition(spec, comp, dbs,
                                       dict(spec.properties))


def shrink(spec: GeneratedSpec,
           still_fails: Callable[[GeneratedSpec], bool],
           max_steps: int = 200) -> GeneratedSpec:
    """Greedily minimize *spec* while ``still_fails`` stays true.

    One accepted deletion restarts the candidate scan (smaller specs
    unlock further deletions); the loop ends at a fixpoint or after
    *max_steps* accepted reductions, whichever comes first.
    """
    current = spec
    for _ in range(max_steps):
        for candidate in _candidates(current):
            try:
                failed = still_fails(candidate)
            except Exception:
                # a candidate that crashes the pipeline is itself a
                # finding, but not the one we are minimizing
                failed = False
            if failed:
                current = candidate
                break
        else:
            break
    return current
