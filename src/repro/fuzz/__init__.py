"""The scenario factory: a frontier-sweeping specification fuzzer.

The paper's contribution is a *decidability map* (Theorems 3.4-3.10)
over composition/property/semantics configurations.  This package turns
the reproduction into its own test subject:

* :mod:`repro.fuzz.generate` -- a seeded random generator of
  well-formed compositions (peers, channels, rules, databases,
  properties) targeted at a requested theorem row of the map;
* :mod:`repro.fuzz.harness` -- runs every generated spec through the
  full pipeline under a stack of layered oracles: the static analyzer
  must never crash and must classify the spec into its requested row,
  the ``seed`` and ``shared`` engines (and worker counts, and shard
  splits merged back) must agree bit-for-bit, and every counterexample
  must replay through :func:`repro.runtime.validate_lasso`;
* :mod:`repro.fuzz.shrink` -- minimizes any failing case by deleting
  peers, rules, declarations, database rows and properties while the
  failure persists, so the corpus holds small replayable ``.dws``
  reproducers.

Exposed on the command line as ``repro fuzz``.
"""

from .generate import GeneratedSpec, THEOREM_ROWS, generate
from .harness import (
    CaseOutcome, FuzzReport, OracleViolation, fuzz, minimize, run_case,
)
from .shrink import shrink

__all__ = [
    "CaseOutcome",
    "FuzzReport",
    "GeneratedSpec",
    "OracleViolation",
    "THEOREM_ROWS",
    "fuzz",
    "generate",
    "minimize",
    "run_case",
    "shrink",
]
