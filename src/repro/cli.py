"""Command-line interface: verify textual specifications.

Usage::

    python -m repro verify SPEC.dws [--property NAME] [--perfect]
                           [--queue-bound K] [--fair] [--fresh N]
                           [--counterexample] [--workers N] [--stats]
                           [--engine shared|seed] [--lint-first]
                           [--shard i/N] [--shard-output FILE]
                           [--trace FILE.jsonl] [--metrics-json FILE]
    python -m repro check SPEC.dws            # input-boundedness only
    python -m repro lint SPEC.dws|LIBRARY [--format text|json|sarif]
                         [--output FILE] [--strict]
    python -m repro simulate SPEC.dws [--steps N] [--seed S]
    python -m repro profile SPEC.dws|LIBRARY [--workers N] ...
    python -m repro merge-shards shard_*.json [--output FILE]
    python -m repro top [--run RUN_ID] [--once]
    python -m repro doctor [--clean]
    python -m repro trace convert TRACE.jsonl... [--output FILE]
    python -m repro metrics export METRICS.json [--output FILE]
    python -m repro bench check [--metrics-dir DIR] [--json]

``verify`` runs every ``property`` statement in the document (or just
``--property NAME``) and reports verdicts; the exit status is 0 iff all
checked properties are satisfied.  ``--workers N`` fans the valuation
sweep out across N processes (``--workers 0``: all cores; default: the
``REPRO_WORKERS`` environment variable, else sequential); ``--stats``
prints the full per-property statistics including task counts, compute
time, and rule-cache hit rates of the parallel sweep.

``--shard i/N`` (on ``verify`` and ``profile``) runs only the i-th of
N deterministic slices of the valuation sweep and writes a mergeable
fragment (verdicts, per-task stats, metrics snapshot, pickled
counterexamples); run every shard on its own machine, collect the
fragments, and ``merge-shards`` reassembles the exact unsharded
verdict, decisive counterexample, and fleet-wide metrics (see
:mod:`repro.verifier.shards`).  A shard's own exit status reflects
only its slice; the merged exit status is the global verdict.

``lint`` runs the full static analyzer (input-boundedness, dead and
shadowed rules, reachability, channel discipline, and the decidability
classifier; see :mod:`repro.analysis`) over a ``.dws`` document or a
library example and reports ``DWV***`` diagnostics as text, JSON, or
SARIF 2.1.0.  Exit status: 0 clean (notes/warnings allowed), 1 when
error-severity diagnostics exist (with ``--strict``: warnings too),
2 when the document cannot be parsed at all.  ``verify`` consults the
same classifier pre-flight and warns on stderr before searching an
undecidable configuration.

Every run command accepts ``--trace FILE.jsonl`` (structured
span/instant events, see :mod:`repro.obs.trace`), ``--metrics-json
FILE`` (a metrics snapshot plus per-result statistics), and
``--run-id ID`` (adopt a run-ledger id instead of minting one; the
``REPRO_RUN_ID`` environment variable does the same and is the
idiomatic way to correlate ``--shard`` slices launched on different
machines).  ``profile`` runs a verification and prints a per-phase
wall-time breakdown, with per-worker rows when ``--workers > 1``; its
target is either a ``.dws`` file or one of the built-in library
examples (``loan``, ``ecommerce``, ``travel``).

The observability surface (see :mod:`repro.obs`): every run command
opens a **run-ledger** context, so trace events carry ``run`` /
``worker`` / ``shard`` stamps and long sweeps write heartbeat records
under the runs directory.  ``repro top`` renders those heartbeats as a
refreshing terminal view of every active run.  ``repro trace convert``
stitches one run's JSONL trace files (driver + workers + remote
shards) into a Chrome trace-event JSON loadable in Perfetto.
``repro metrics export`` renders any metrics JSON (snapshot, fragment,
or merged document) in Prometheus text exposition format.
``repro bench check`` is the regression sentinel over
``benchmarks/metrics/BENCH_*.json``; ``repro doctor`` audits leaked
shared-memory segments (``--clean`` unlinks them).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import time
from pathlib import Path

from .errors import ReproError
from .ib import check_composition, summarize
from .obs import (
    REGISTRY, begin_run, configure_tracing, diff_numeric, end_run,
    phase_counts,
    phase_seconds, set_shard,
)
from .obs.metrics import SCHEMA as METRICS_SCHEMA
from .runtime import simulate
from .spec import ChannelSemantics
from .spec.dsl import load_document
from .verifier import verification_domain, verify

#: Library examples profilable without a .dws file: name -> loader
#: returning (composition, databases, properties, valuation_candidates).
PROFILE_LIBRARIES = ("loan", "ecommerce", "travel", "payments",
                     "dispatch")


def _parse_shard(text: str | None) -> tuple[int, int] | None:
    """Parse a ``--shard i/N`` selector (e.g. ``0/3``)."""
    if text is None:
        return None
    match = re.fullmatch(r"(\d+)/(\d+)", text.strip())
    if not match:
        raise ReproError(
            f"--shard expects i/N (e.g. 0/3), got {text!r}"
        )
    index, count = int(match.group(1)), int(match.group(2))
    if count < 1 or index >= count:
        raise ReproError(
            f"--shard {text}: need 0 <= i < N"
        )
    return (index, count)


def _write_shard_fragment(args: argparse.Namespace,
                          shard: tuple[int, int],
                          results: list, composition) -> None:
    """Write this shard's verdict/stats fragment for ``merge-shards``."""
    from .verifier import shard_fragment

    index, count = shard
    path = args.shard_output or f"shard_{index}of{count}.json"
    fragment = shard_fragment(results, shard, composition)
    Path(path).write_text(json.dumps(fragment, indent=2) + "\n")
    print(f"shard {index}/{count}: fragment written to {path}",
          file=sys.stderr)


def _semantics(args: argparse.Namespace) -> ChannelSemantics:
    return ChannelSemantics(
        lossy=not args.perfect,
        queue_bound=args.queue_bound,
    )


def _load(path: str):
    text = Path(path).read_text()
    return load_document(text)


def _write_metrics_json(path: str | None, command: str,
                        results: list[dict]) -> None:
    """Write the metrics snapshot file for ``--metrics-json``.

    Schema (``repro.metrics/2``): the process registry snapshot
    (counters/gauges/histograms/phases -- driver side only; worker
    numbers are folded into each result's ``stats``) plus one entry per
    verification result.  The registry snapshot inside carries the
    run-ledger id, correlating this file with the run's trace.
    """
    if not path:
        return
    payload = {
        "schema": METRICS_SCHEMA,
        "command": command,
        "registry": REGISTRY.snapshot(),
        "results": results,
    }
    Path(path).write_text(json.dumps(payload, indent=2, default=str) + "\n")


def _result_entry(name: str, result) -> dict:
    return {
        "property": name,
        "text": result.property_text,
        "verdict": result.verdict,
        "stats": result.stats.to_dict(),
    }


def _select_properties(args: argparse.Namespace, properties: dict
                       ) -> dict | None:
    if getattr(args, "property", None):
        missing = [n for n in args.property if n not in properties]
        if missing:
            print(f"unknown properties: {missing}; available: "
                  f"{sorted(properties)}", file=sys.stderr)
            return None
        return {n: properties[n] for n in args.property}
    return properties


def cmd_verify(args: argparse.Namespace) -> int:
    text = Path(args.spec).read_text()
    composition, databases, properties = load_document(text)
    properties = _select_properties(args, properties)
    if properties is None:
        return 2
    if not properties:
        print("the document declares no properties "
              "(add 'property <name>: <LTL-FO>')", file=sys.stderr)
        return 2

    from .ltlfo.parser import parse_ltlfo
    sentences = {
        name: parse_ltlfo(prop_text, composition.schema)
        for name, prop_text in properties.items()
    }

    # pre-flight: warn (never refuse) when the configuration falls on an
    # undecidable row of the paper's map -- the search stays sound for
    # bug finding, but exhausting it proves nothing in general.
    if args.lint_first:
        # full analyzer first, reusing what this command already built:
        # the structural pass re-reads the raw scan, every semantic pass
        # (and the decidability classifier) runs over the composition
        # and sentences parsed above -- nothing is constructed twice.
        from .analysis import (
            Severity, lint_composition, render_report,
            structural_diagnostics,
        )
        from .spec.dsl import scan_document
        report = lint_composition(composition, sentences,
                                  _semantics(args))
        report.diagnostics = (
            structural_diagnostics(scan_document(text))
            + report.diagnostics
        )
        if report.diagnostics:
            print(render_report(report.diagnostics), file=sys.stderr)
        if any(d.severity is Severity.ERROR for d in report.diagnostics):
            print("lint found errors; not verifying", file=sys.stderr)
            return 1
        classification = report.classifications["composition"]
    else:
        from .verifier import preflight
        classification = preflight(composition, list(sentences.values()),
                                   _semantics(args))
    if not classification.decidable:
        print(f"warning: {classification.describe()}\n"
              "warning: exhaustive search is not a proof here; "
              "run `repro lint` for details", file=sys.stderr)

    domain = None
    if args.fresh is not None:
        domain = verification_domain(composition, [], databases,
                                     fresh_count=args.fresh)
    shard = _parse_shard(args.shard)
    set_shard(shard)
    all_ok = True
    entries: list[dict] = []
    results: list = []
    for name, sentence in sorted(sentences.items()):
        result = verify(
            composition, sentence, databases,
            semantics=_semantics(args), domain=domain,
            fair_scheduling=args.fair, workers=args.workers,
            engine=args.engine, shard=shard,
        )
        results.append(result)
        entries.append(_result_entry(name, result))
        if args.stats:
            print(f"{name}:")
            for line in result.summary().splitlines():
                print(f"  {line}")
        else:
            print(f"{name}: {result.verdict}  "
                  f"(states={result.stats.system_states}, "
                  f"{result.stats.wall_seconds:.2f}s)")
        if not result.satisfied:
            all_ok = False
            if args.counterexample and result.counterexample:
                print(result.counterexample.describe(composition))
    if shard is not None:
        _write_shard_fragment(args, shard, results, composition)
    _write_metrics_json(args.metrics_json, "verify", entries)
    return 0 if all_ok else 1


def cmd_check(args: argparse.Namespace) -> int:
    composition, _databases, _properties = _load(args.spec)
    violations = check_composition(composition)
    print(summarize(violations, composition))
    _write_metrics_json(args.metrics_json, "check", [{
        "spec": args.spec,
        "violations": [str(v) for v in violations],
    }])
    return 0 if not violations else 1


def _lint_one(target: str, semantics, cache):
    """Lint one target: ``(report, artifact_uri)``.

    *target* is a library example name or a ``.dws`` path; *cache* is a
    :class:`~repro.analysis.cache.LintCache` or None (cold run).
    """
    from .analysis import (
        lint_cached, lint_cached_composition, lint_composition, lint_text,
    )
    from .ltlfo.parser import parse_ltlfo

    if target in PROFILE_LIBRARIES:
        composition, _databases, properties, _candidates = (
            _library_target(target)
        )
        if cache is not None:
            return (lint_cached_composition(
                composition, properties, semantics, cache=cache), None)
        sentences = {
            name: (parse_ltlfo(prop, composition.schema)
                   if isinstance(prop, str) else prop)
            for name, prop in properties.items()
        }
        return lint_composition(composition, sentences, semantics), None
    if not Path(target).is_file():
        raise ReproError(
            f"lint target {target!r} is neither a spec file nor a "
            f"library example ({', '.join(PROFILE_LIBRARIES)})"
        )
    text = Path(target).read_text()
    if cache is not None:
        return lint_cached(text, semantics=semantics, cache=cache), target
    return lint_text(text, semantics=semantics), target


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import (
        LintCache, count_by_severity, render_github, render_report,
        sarif_document, to_json, Severity,
    )

    targets = list(args.spec)
    semantics = _semantics(args)
    cache = LintCache(args.cache_dir) if args.cache else None

    entries = []           # (target, report, artifact_uri)
    statuses: list[int] = []
    metrics = []
    for target in targets:
        try:
            report, artifact = _lint_one(target, semantics, cache)
        except ReproError as err:
            if len(targets) == 1:
                raise
            print(f"repro lint: {target}: {err}", file=sys.stderr)
            statuses.append(2)
            continue
        entries.append((target, report, artifact))
        metrics.append({
            "target": target, "counts": count_by_severity(report.diagnostics),
            "codes": report.codes(), "passes": report.passes_run,
        })
        failing = report.has_errors or (
            args.strict and any(d.severity is Severity.WARNING
                                for d in report.diagnostics)
        )
        statuses.append(1 if failing else 0)

    def text_section(target, report):
        counts = count_by_severity(report.diagnostics)
        classifications = {
            name: c.describe()
            for name, c in report.classifications.items()
        }
        lines = [render_report(report.diagnostics)]
        lines.append(
            f"{counts['error']} error(s), {counts['warning']} "
            f"warning(s), {counts['note']} note(s) "
            f"[passes: {', '.join(report.passes_run)}]"
        )
        for name, described in sorted(classifications.items()):
            lines.append(f"{name}: {described}")
        return "\n".join(lines)

    def json_payload(target, report):
        classifications = {
            name: c.describe()
            for name, c in report.classifications.items()
        }
        return to_json(report.diagnostics, extra={
            "target": target,
            "passes": report.passes_run,
            "classifications": classifications,
            "cost_hints": dict(report.cost_hints),
        })

    if args.format == "sarif":
        rendered = sarif_document(
            [(report.diagnostics, artifact)
             for _target, report, artifact in entries])
    elif args.format == "json":
        if len(targets) == 1 and entries:
            rendered = json_payload(*entries[0][:2])
        else:
            rendered = json.dumps({
                "schema": "repro.lint/1",
                "targets": [json.loads(json_payload(target, report))
                            for target, report, _artifact in entries],
            }, indent=2)
    elif args.format == "github":
        rendered = "\n".join(
            part for part in
            (render_github(report.diagnostics)
             for _target, report, _artifact in entries)
            if part
        )
    else:
        sections = []
        for target, report, _artifact in entries:
            body = text_section(target, report)
            if len(targets) > 1:
                body = f"== {target} ==\n{body}"
            sections.append(body)
        rendered = "\n\n".join(sections)

    if args.output:
        Path(args.output).write_text(rendered + "\n")
    else:
        print(rendered)
    if cache is not None:
        print(cache.stats_line(), file=sys.stderr)

    _write_metrics_json(args.metrics_json, "lint", metrics)
    return max(statuses, default=0)


def cmd_simulate(args: argparse.Namespace) -> int:
    composition, databases, _properties = _load(args.spec)
    domain = verification_domain(composition, [], databases,
                                 fresh_count=args.fresh or 1)
    trace = simulate(composition, databases, domain.values,
                     steps=args.steps, seed=args.seed,
                     semantics=_semantics(args))
    for idx, state in enumerate(trace):
        events = ""
        if state.enqueued:
            events = f"  enqueued={sorted(state.enqueued)}"
        print(f"step {idx:3d}: mover={state.mover or '-':8s}{events}")
    _write_metrics_json(args.metrics_json, "simulate", [{
        "spec": args.spec, "steps": args.steps, "seed": args.seed,
    }])
    return 0


# ---------------------------------------------------------------------------
# profile


def _library_target(name: str):
    """(composition, databases, properties, candidates) for a library.

    Mirrors the E12 end-to-end benchmark setups, so profiling a library
    measures the same workload the perf history tracks.
    """
    if name == "loan":
        from .library import loan
        return (
            loan.loan_composition(), loan.standard_database("fair"),
            {
                "bank_policy_pointwise": loan.PROPERTY_BANK_POLICY_POINTWISE,
                "letter_needs_application":
                    loan.PROPERTY_LETTER_NEEDS_APPLICATION,
            },
            loan.STANDARD_CANDIDATES,
        )
    if name == "ecommerce":
        from .library import ecommerce
        return (
            ecommerce.ecommerce_composition(),
            ecommerce.standard_database("good"),
            {
                "ship_requires_auth": ecommerce.PROPERTY_SHIP_REQUIRES_AUTH,
                "no_ship_on_decline": ecommerce.PROPERTY_NO_SHIP_ON_DECLINE,
                "auth_honest": ecommerce.PROPERTY_AUTH_HONEST,
            },
            {"p": ("widget",), "card": ("visa", "amex")},
        )
    if name == "travel":
        from .library import travel
        return (
            travel.travel_composition(), travel.standard_database(),
            {
                "itinerary_confirmed": travel.PROPERTY_ITINERARY_CONFIRMED,
                "offers_from_catalog": travel.PROPERTY_OFFERS_FROM_CATALOG,
            },
            {"f": ("fl1",), "d": ("rome",)},
        )
    if name == "payments":
        from .library import payments
        return (
            payments.payments_composition(),
            payments.standard_database(),
            {
                "capture_cleared": payments.PROPERTY_CAPTURE_CLEARED,
                "dispute_honest": payments.PROPERTY_DISPUTE_HONEST,
            },
            payments.STANDARD_CANDIDATES,
        )
    if name == "dispatch":
        from .library import dispatch
        return (
            dispatch.dispatch_composition(),
            dispatch.standard_database(),
            {
                "offers_from_fleet": dispatch.PROPERTY_OFFERS_FROM_FLEET,
                "take_needs_offer": dispatch.PROPERTY_TAKE_NEEDS_OFFER,
            },
            dispatch.STANDARD_CANDIDATES,
        )
    raise ReproError(f"unknown profile library {name!r}; "
                     f"available: {', '.join(PROFILE_LIBRARIES)}")


#: Row order of the profile breakdown table (pipeline order).
_PHASE_ORDER = (
    "ib-check", "valuations", "translate", "search", "expand",
    "rule-fire", "fo-eval", "sweep",
)


def _phase_rows(seconds: dict, counts: dict, total: float) -> list[str]:
    """Render per-phase rows plus an ``(other)`` remainder row.

    ``seconds`` are exclusive self-times (see :mod:`repro.obs.phases`),
    so the rows -- including the uninstrumented remainder -- sum to
    *total*.
    """
    names = [n for n in _PHASE_ORDER if n in seconds]
    names += sorted(set(seconds) - set(names))
    rows = []
    accounted = 0.0
    for name in names:
        sec = seconds[name]
        accounted += sec
        share = 100.0 * sec / total if total > 0 else 0.0
        rows.append(f"  {name:12s} {counts.get(name, 0):>8d} "
                    f"{sec:>10.3f}s {share:>6.1f}%")
    other = max(0.0, total - accounted)
    share = 100.0 * other / total if total > 0 else 0.0
    rows.append(f"  {'(other)':12s} {'-':>8s} {other:>10.3f}s "
                f"{share:>6.1f}%")
    return rows


def _merge_worker_tables(results: list) -> dict[str, dict]:
    """Fold every result's per-worker stats into one table."""
    merged: dict[str, dict] = {}
    for result in results:
        for worker, slot in result.stats.per_worker.items():
            into = merged.setdefault(worker, {
                "tasks": 0, "task_seconds": 0.0,
                "phase_seconds": {}, "rule_cache": {},
            })
            into["tasks"] += slot["tasks"]
            into["task_seconds"] += slot["task_seconds"]
            for name, sec in slot["phase_seconds"].items():
                into["phase_seconds"][name] = (
                    into["phase_seconds"].get(name, 0.0) + sec
                )
            for key, val in slot["rule_cache"].items():
                into["rule_cache"][key] = (
                    into["rule_cache"].get(key, 0) + val
                )
    return merged


def cmd_profile(args: argparse.Namespace) -> int:
    target = args.spec
    if target not in PROFILE_LIBRARIES and not Path(target).is_file():
        raise ReproError(
            f"profile target {target!r} is neither a spec file nor a "
            f"library example ({', '.join(PROFILE_LIBRARIES)})"
        )
    if target in PROFILE_LIBRARIES:
        composition, databases, properties, candidates = (
            _library_target(target)
        )
        domain = verification_domain(composition, [], databases,
                                     fresh_count=args.fresh
                                     if args.fresh is not None else 1)
        semantics = None  # library defaults (decidable semantics)
    else:
        composition, databases, properties = _load(target)
        candidates = None
        domain = None
        if args.fresh is not None:
            domain = verification_domain(composition, [], databases,
                                         fresh_count=args.fresh)
        semantics = _semantics(args)
    properties = _select_properties(args, properties)
    if properties is None:
        return 2
    if not properties:
        print("nothing to profile: no properties declared",
              file=sys.stderr)
        return 2

    shard = _parse_shard(args.shard)
    set_shard(shard)
    seconds_before = phase_seconds()
    counts_before = phase_counts()
    t0 = time.perf_counter()
    results = []
    all_ok = True
    entries: list[dict] = []
    for name, prop in sorted(properties.items()):
        kwargs = dict(domain=domain, workers=args.workers,
                      fair_scheduling=args.fair, engine=args.engine,
                      shard=shard)
        if semantics is not None:
            kwargs["semantics"] = semantics
        if candidates:
            kwargs["valuation_candidates"] = candidates
        result = verify(composition, prop, databases, **kwargs)
        results.append(result)
        entries.append(_result_entry(name, result))
        all_ok = all_ok and result.satisfied
        print(f"{name}: {result.verdict}  "
              f"(valuations={result.stats.valuations_checked}, "
              f"states={result.stats.system_states}, "
              f"product nodes={result.stats.product_nodes_visited}, "
              f"{result.stats.wall_seconds:.3f}s)")
    wall = time.perf_counter() - t0
    driver_seconds = diff_numeric(phase_seconds(), seconds_before)
    driver_counts = diff_numeric(phase_counts(), counts_before)

    workers = max(r.stats.workers for r in results)
    print(f"\nprofile: {target} ({len(results)} properties, "
          f"workers={workers})")
    print(f"  {'phase':12s} {'count':>8s} {'seconds':>11s} {'%':>6s}")
    for row in _phase_rows(driver_seconds, driver_counts, wall):
        print(row)
    print(f"  {'total (wall)':12s} {'':>8s} {wall:>10.3f}s {100.0:>6.1f}%")

    compute = sum(r.stats.task_seconds + r.stats.cancelled_task_seconds
                  for r in results)
    if compute:
        print(f"  sweep compute: {compute:.3f}s across tasks "
              f"(parallelism {compute / wall:.2f}x)")

    cache = {}
    for r in results:
        for key, val in r.stats.rule_cache.items():
            cache[key] = cache.get(key, 0) + val
    if cache.get("hits", 0) + cache.get("misses", 0):
        total_lookups = cache.get("hits", 0) + cache.get("misses", 0)
        print(f"  rule cache: {cache.get('hits', 0)} hits / "
              f"{cache.get('misses', 0)} misses "
              f"({100.0 * cache.get('hits', 0) / total_lookups:.1f}% "
              "hit rate)")

    per_worker = _merge_worker_tables(results)
    if workers > 1 and per_worker:
        print("\n  per-worker breakdown (compute seconds by phase):")
        for worker in sorted(per_worker):
            slot = per_worker[worker]
            phases = " ".join(
                f"{name}={slot['phase_seconds'][name]:.3f}s"
                for name in _PHASE_ORDER
                if name in slot["phase_seconds"]
            )
            wcache = slot["rule_cache"]
            lookups = wcache.get("hits", 0) + wcache.get("misses", 0)
            if lookups:
                pct = 100.0 * wcache.get("hits", 0) / lookups
                rate = f" cache-hit={pct:.0f}%"
            else:
                rate = ""
            print(f"    {worker}: tasks={slot['tasks']} "
                  f"compute={slot['task_seconds']:.3f}s {phases}{rate}")

    if shard is not None:
        _write_shard_fragment(args, shard, results, composition)
    _write_metrics_json(args.metrics_json, "profile", entries)
    return 0 if all_ok else 1


# ---------------------------------------------------------------------------
# fuzz


def cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import THEOREM_ROWS, fuzz

    rows = tuple(args.row) if args.row else ("3.4",)
    unknown = [r for r in rows if r not in THEOREM_ROWS]
    if unknown:
        raise ReproError(
            f"unknown theorem row(s) {unknown}; "
            f"available: {', '.join(sorted(THEOREM_ROWS))}"
        )
    if args.count < 1:
        raise ReproError("--count must be >= 1")
    seed = args.seed
    if seed is None:
        seed = int(os.environ.get("REPRO_SEED", "0").strip() or "0")

    report = fuzz(
        count=args.count, seed=seed, rows=rows,
        corpus_dir=args.corpus,
        emit_dir=args.emit_corpus,
        log=lambda msg: print(msg, file=sys.stderr),
    )
    print(report.summary())
    _write_metrics_json(args.metrics_json, "fuzz", [{
        "seed": report.seed, "count": report.count,
        "rows": list(report.rows),
        "violations": [
            {"seed": o.spec.seed, "row": o.spec.row,
             "oracles": sorted(o.oracles_failed()),
             "details": [str(v) for v in o.violations]}
            for o in report.failures
        ],
        "corpus_files": report.corpus_files,
        "emitted_files": report.emitted_files,
    }])
    return 0 if report.ok else 1


# ---------------------------------------------------------------------------
# merge-shards


def cmd_merge_shards(args: argparse.Namespace) -> int:
    from .obs import merge_registry_snapshot
    from .verifier import merge_fragments, result_from_merged

    fragments = []
    for path in args.fragments:
        try:
            fragment = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as err:
            raise ReproError(f"cannot read fragment {path}: {err}")
        if not isinstance(fragment, dict):
            raise ReproError(
                f"fragment {path} is not a shard fragment object "
                f"(got JSON {type(fragment).__name__})"
            )
        fragments.append(fragment)
    if not fragments:
        raise ReproError("no shard fragments to merge")
    try:
        merged = merge_fragments(fragments)
    except ValueError as err:
        raise ReproError(str(err))

    # fold the merged registry into this process so --metrics-json (and
    # anything else reading REGISTRY) reports fleet-wide totals
    merge_registry_snapshot(merged["metrics"])

    all_ok = True
    entries: list[dict] = []
    for entry in merged["properties"]:
        result = result_from_merged(entry)
        stats = result.stats
        where = ""
        if entry["decisive_shard"] is not None:
            where = (f", decisive: order {entry['decisive_order']} "
                     f"in shard {entry['decisive_shard']}")
        print(f"{result.property_text}: {result.verdict}  "
              f"(valuations={stats.valuations_checked}, "
              f"states={stats.system_states}, "
              f"product nodes={stats.product_nodes_visited}{where})")
        if not result.satisfied:
            all_ok = False
            if args.counterexample and entry["counterexample"]:
                print(entry["counterexample"]["text"])
        entries.append({
            "property": entry["property"],
            "verdict": entry["verdict"],
            "stats": dict(entry["stats"],
                          decisive_order=entry["decisive_order"]),
        })
    if args.output:
        Path(args.output).write_text(json.dumps(merged, indent=2) + "\n")
        print(f"merged document written to {args.output}",
              file=sys.stderr)
    _write_metrics_json(args.metrics_json, "merge-shards", entries)
    return 0 if all_ok else 1


# ---------------------------------------------------------------------------
# observability surface: top / doctor / trace convert / metrics export
# / bench check


def cmd_top(args: argparse.Namespace) -> int:
    """Render live heartbeat records of running (and recent) sweeps."""
    from .obs import list_runs, read_progress, render_progress, runs_root

    def frame() -> str:
        if args.run:
            records = [r for r in [read_progress(args.run)]
                       if r is not None]
        else:
            records = list_runs()
        if not records:
            return (f"no runs under {runs_root()} "
                    "(heartbeats appear while a run command executes)")
        return "\n\n".join(render_progress(r) for r in records)

    if args.once:
        text = frame()
        print(text)
        return 0 if "no runs under" not in text else 1
    try:
        while True:
            # ANSI clear + home, like watch(1); stays a plain print so
            # output degrades gracefully when piped to a file
            print("\x1b[2J\x1b[H" + frame(), flush=True)
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def cmd_doctor(args: argparse.Namespace) -> int:
    """Audit the host for observability/shm hygiene problems."""
    from .verifier.shm import clean_segments, leaked_segments, shm_available
    from .obs import runs_root

    print(f"shared memory available: {shm_available()}")
    print(f"runs directory: {runs_root()}")
    leaks = leaked_segments()
    if not leaks:
        print("leaked graph segments: none")
        return 0
    print(f"leaked graph segments ({len(leaks)}):")
    for name in leaks:
        print(f"  /dev/shm/{name}")
    if not args.clean:
        print("stale segments hold shared memory until unlinked; "
              "re-run with --clean to remove them", file=sys.stderr)
        return 1
    removed = clean_segments(leaks)
    print(f"cleaned {len(removed)} segment(s)")
    remaining = leaked_segments()
    if remaining:
        print(f"could not remove: {remaining}", file=sys.stderr)
        return 1
    return 0


def cmd_trace_convert(args: argparse.Namespace) -> int:
    """Stitch trace JSONL files and write Chrome trace-event JSON."""
    from .obs import convert_trace_files

    for path in args.inputs:
        if not Path(path).is_file():
            raise ReproError(f"trace file not found: {path}")
    output = args.output
    if output is None:
        stem = re.sub(r"\.jsonl$", "", args.inputs[0])
        output = f"{stem}.chrome.json"
    doc = convert_trace_files(args.inputs, output)
    other = doc["otherData"]
    n_events = len(doc["traceEvents"])
    if not other["run_ids"]:
        print("warning: no run ids in inputs (trace predates the run "
              "ledger, or tracing ran without a run context)",
              file=sys.stderr)
    elif len(other["run_ids"]) > 1:
        print(f"warning: stitching events from {len(other['run_ids'])} "
              f"different runs: {other['run_ids']}", file=sys.stderr)
    if other["corrupt_lines"]:
        print(f"warning: skipped {other['corrupt_lines']} corrupt "
              "line(s)", file=sys.stderr)
    print(f"{output}: {n_events} events from "
          f"{other['processes']} process(es), "
          f"run(s) {', '.join(other['run_ids']) or '-'} "
          "(open in https://ui.perfetto.dev)")
    return 0


def cmd_metrics_export(args: argparse.Namespace) -> int:
    """Render a metrics JSON file in Prometheus text exposition format."""
    from .obs import extract_registry_snapshot, render_prometheus

    try:
        doc = json.loads(Path(args.file).read_text())
    except (OSError, json.JSONDecodeError) as err:
        raise ReproError(f"cannot read metrics file {args.file}: {err}")
    if not isinstance(doc, dict):
        raise ReproError(
            f"{args.file} is not a metrics document "
            f"(got JSON {type(doc).__name__})"
        )
    try:
        snapshot = extract_registry_snapshot(doc)
    except ValueError as err:
        raise ReproError(str(err))
    rendered = render_prometheus(snapshot)
    if args.output:
        Path(args.output).write_text(rendered)
        print(f"prometheus exposition written to {args.output}",
              file=sys.stderr)
    else:
        print(rendered, end="")
    return 0


def cmd_bench_check(args: argparse.Namespace) -> int:
    """The bench regression sentinel over BENCH_*.json trajectories."""
    from .obs import check_directory

    try:
        report = check_directory(
            args.metrics_dir,
            max_wall_ratio=args.max_wall_ratio,
            min_wall_seconds=args.min_wall_seconds,
        )
    except (OSError, ValueError, KeyError, TypeError) as err:
        raise ReproError(f"cannot check {args.metrics_dir}: {err}")
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


# ---------------------------------------------------------------------------
# parser


def _add_obs_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", metavar="FILE.jsonl", default=None,
                   help="write span/instant trace events as JSONL")
    p.add_argument("--metrics-json", metavar="FILE", default=None,
                   dest="metrics_json",
                   help="write a metrics snapshot as JSON")
    p.add_argument("--run-id", metavar="ID", default=None,
                   dest="run_id",
                   help="adopt this run-ledger id instead of minting "
                        "one (or set REPRO_RUN_ID; used to correlate "
                        "shards launched on different machines)")


def _add_shard_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--shard", metavar="i/N", default=None,
                   help="run only the i-th of N deterministic shards "
                        "of the valuation sweep and write a mergeable "
                        "fragment (see `repro merge-shards`)")
    p.add_argument("--shard-output", metavar="FILE", default=None,
                   dest="shard_output",
                   help="fragment path (default: shard_{i}of{N}.json)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Verify communicating data-driven web services "
                    "(PODS 2006 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser,
               spec_help: str = "path to a .dws specification") -> None:
        p.add_argument("spec", help=spec_help)
        p.add_argument("--perfect", action="store_true",
                       help="perfect channels (default: lossy)")
        p.add_argument("--queue-bound", type=int, default=1,
                       help="queue capacity k (default 1)")
        p.add_argument("--fresh", type=int, default=None,
                       help="override the number of fresh domain values")
        _add_obs_options(p)

    p_verify = sub.add_parser("verify", help="verify the document's "
                                             "properties")
    common(p_verify)
    p_verify.add_argument("--property", action="append",
                          help="check only this property (repeatable)")
    p_verify.add_argument("--fair", action="store_true",
                          help="restrict to fair scheduling")
    p_verify.add_argument("--counterexample", action="store_true",
                          help="print counterexample runs")
    p_verify.add_argument("--workers", type=int, default=None,
                          help="parallel sweep worker processes "
                               "(0: all cores; default: $REPRO_WORKERS "
                               "or sequential)")
    p_verify.add_argument("--stats", action="store_true",
                          help="print full per-property statistics")
    p_verify.add_argument("--engine", choices=("shared", "seed"),
                          default=None,
                          help="search engine: 'shared' reuses one "
                               "hash-consed exploration across "
                               "valuations (default; $REPRO_ENGINE), "
                               "'seed' is the per-valuation engine")
    p_verify.add_argument("--lint-first", action="store_true",
                          dest="lint_first",
                          help="run the full static analyzer before "
                               "verifying (reusing the parsed spec); "
                               "refuse to verify on lint errors")
    _add_shard_options(p_verify)
    p_verify.set_defaults(func=cmd_verify)

    p_check = sub.add_parser("check", help="input-boundedness check only")
    common(p_check)
    p_check.set_defaults(func=cmd_check)

    p_lint = sub.add_parser(
        "lint",
        help="run the static analyzer and decidability classifier",
    )
    # like common(), but lint accepts several targets in one run
    p_lint.add_argument("spec", nargs="+",
                        help="paths to .dws specifications, or library "
                             f"examples ({', '.join(PROFILE_LIBRARIES)})")
    p_lint.add_argument("--perfect", action="store_true",
                        help="perfect channels (default: lossy)")
    p_lint.add_argument("--queue-bound", type=int, default=1,
                        help="queue capacity k (default 1)")
    p_lint.add_argument("--fresh", type=int, default=None,
                        help="override the number of fresh domain values")
    _add_obs_options(p_lint)
    p_lint.add_argument("--format",
                        choices=("text", "json", "sarif", "github"),
                        default="text",
                        help="report format (default: text); 'github' "
                             "emits Actions ::warning/::error annotations")
    p_lint.add_argument("--output", metavar="FILE", default=None,
                        help="write the report to FILE instead of stdout")
    p_lint.add_argument("--strict", action="store_true",
                        help="exit 1 on warnings too, not just errors")
    p_lint.add_argument("--cache", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="serve unchanged documents/peers from the "
                             "content-addressed lint cache")
    p_lint.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="cache root (default: $REPRO_LINT_CACHE_DIR, "
                             "$REPRO_RUN_DIR/lint-cache, or "
                             "~/.cache/repro/lint)")
    p_lint.set_defaults(func=cmd_lint)

    p_sim = sub.add_parser("simulate", help="print one random run")
    common(p_sim)
    p_sim.add_argument("--steps", type=int, default=25)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.set_defaults(func=cmd_simulate)

    p_prof = sub.add_parser(
        "profile",
        help="verify and print a per-phase time/node breakdown",
    )
    common(p_prof,
           spec_help="path to a .dws specification, or a library "
                     f"example ({', '.join(PROFILE_LIBRARIES)})")
    p_prof.add_argument("--property", action="append",
                        help="profile only this property (repeatable)")
    p_prof.add_argument("--fair", action="store_true",
                        help="restrict to fair scheduling")
    p_prof.add_argument("--workers", type=int, default=None,
                        help="parallel sweep worker processes "
                             "(0: all cores)")
    p_prof.add_argument("--engine", choices=("shared", "seed"),
                        default=None,
                        help="search engine (see `repro verify`)")
    _add_shard_options(p_prof)
    p_prof.set_defaults(func=cmd_profile)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="generate random specs along the decidability frontier "
             "and run them through the differential oracle stack",
    )
    p_fuzz.add_argument("--count", type=int, default=25,
                        help="number of generated cases (default 25)")
    p_fuzz.add_argument("--seed", type=int, default=None,
                        help="campaign seed; case i derives its own "
                             "seed from it (default: the REPRO_SEED "
                             "env var, else 0)")
    p_fuzz.add_argument("--row", action="append", metavar="ROW",
                        help="theorem row to target, e.g. 3.4 or 3.9 "
                             "(repeatable; cases round-robin over the "
                             "rows; default: 3.4)")
    p_fuzz.add_argument("--corpus", metavar="DIR", default=None,
                        help="persist minimized failing cases as "
                             "replayable .dws files under DIR")
    p_fuzz.add_argument("--emit-corpus", metavar="DIR", default=None,
                        dest="emit_corpus",
                        help="write every generated spec (passing or "
                             "not) as a .dws file under DIR, e.g. to "
                             "lint the corpus afterwards")
    _add_obs_options(p_fuzz)
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_merge = sub.add_parser(
        "merge-shards",
        help="reassemble the global verdict from --shard fragments",
    )
    p_merge.add_argument("fragments", nargs="+",
                         help="the N fragment files written by "
                              "`repro verify --shard i/N`")
    p_merge.add_argument("--counterexample", action="store_true",
                         help="print the decisive counterexample runs")
    p_merge.add_argument("--output", metavar="FILE", default=None,
                         help="write the merged document as JSON")
    _add_obs_options(p_merge)
    p_merge.set_defaults(func=cmd_merge_shards)

    p_top = sub.add_parser(
        "top",
        help="live view of running sweeps (reads heartbeat records)",
    )
    p_top.add_argument("--run", metavar="RUN_ID", default=None,
                       help="show only this run (default: all runs "
                            "under the runs directory)")
    p_top.add_argument("--once", action="store_true",
                       help="print one snapshot and exit (exit 1 when "
                            "no runs are found)")
    p_top.add_argument("--interval", type=float, default=1.0,
                       help="refresh interval in seconds (default 1.0)")
    p_top.set_defaults(func=cmd_top)

    p_doctor = sub.add_parser(
        "doctor",
        help="audit shm/observability hygiene (exit 1 on leaked "
             "segments)",
    )
    p_doctor.add_argument("--clean", action="store_true",
                          help="unlink stale graph segments")
    p_doctor.set_defaults(func=cmd_doctor)

    p_trace = sub.add_parser(
        "trace",
        help="operate on trace JSONL files",
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command",
                                       required=True)
    p_convert = trace_sub.add_parser(
        "convert",
        help="stitch trace files into Chrome trace-event JSON "
             "(Perfetto)",
    )
    p_convert.add_argument("inputs", nargs="+", metavar="TRACE.jsonl",
                           help="trace files of one run (driver + "
                                "shards; workers share the driver's "
                                "file)")
    p_convert.add_argument("--output", metavar="FILE", default=None,
                           help="output path (default: first input "
                                "with .chrome.json suffix)")
    p_convert.set_defaults(func=cmd_trace_convert)

    p_metrics = sub.add_parser(
        "metrics",
        help="operate on metrics JSON files",
    )
    metrics_sub = p_metrics.add_subparsers(dest="metrics_command",
                                           required=True)
    p_export = metrics_sub.add_parser(
        "export",
        help="render a metrics JSON file as Prometheus text exposition",
    )
    p_export.add_argument("file", metavar="METRICS.json",
                          help="a --metrics-json document, shard "
                               "fragment, merged document, or bare "
                               "registry snapshot")
    p_export.add_argument("--output", metavar="FILE", default=None,
                          help="write to FILE instead of stdout")
    p_export.set_defaults(func=cmd_metrics_export)

    p_bench = sub.add_parser(
        "bench",
        help="operate on benchmark trajectories",
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command",
                                       required=True)
    p_check_bench = bench_sub.add_parser(
        "check",
        help="regression sentinel over BENCH_*.json (exit 1 on "
             "regression)",
    )
    p_check_bench.add_argument("--metrics-dir", metavar="DIR",
                               dest="metrics_dir",
                               default="benchmarks/metrics",
                               help="directory of BENCH_*.json files "
                                    "(default: benchmarks/metrics)")
    p_check_bench.add_argument("--max-wall-ratio", type=float,
                               dest="max_wall_ratio", default=1.5,
                               help="fail when the newest wall_seconds "
                                    "exceeds this multiple of the "
                                    "baseline median (default 1.5)")
    p_check_bench.add_argument("--min-wall-seconds", type=float,
                               dest="min_wall_seconds", default=0.05,
                               help="ignore absolute slowdowns smaller "
                                    "than this (default 0.05s)")
    p_check_bench.add_argument("--json", action="store_true",
                               help="print the report as JSON")
    p_check_bench.set_defaults(func=cmd_bench_check)

    return parser


#: Run-ledger role per command; commands absent here (top, doctor,
#: trace, metrics, bench) are read-only observers and open no run.
_RUN_ROLES = {
    "verify": "driver", "check": "driver", "lint": "driver",
    "simulate": "driver", "profile": "driver",
    "fuzz": "fuzz", "merge-shards": "merge",
}


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    role = _RUN_ROLES.get(args.command)
    if role is not None:
        # open the run ledger before tracing starts, so even the
        # opening stream-start anchor carries the run stamp
        begin_run(run_id=getattr(args, "run_id", None), role=role)
    if getattr(args, "trace", None):
        configure_tracing(args.trace)
    try:
        return args.func(args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    finally:
        if getattr(args, "trace", None):
            configure_tracing(None)
        if role is not None:
            end_run()


if __name__ == "__main__":
    sys.exit(main())
