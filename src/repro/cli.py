"""Command-line interface: verify textual specifications.

Usage::

    python -m repro verify SPEC.dws [--property NAME] [--perfect]
                           [--queue-bound K] [--fair] [--fresh N]
                           [--counterexample] [--workers N] [--stats]
    python -m repro check SPEC.dws            # input-boundedness only
    python -m repro simulate SPEC.dws [--steps N] [--seed S]

``verify`` runs every ``property`` statement in the document (or just
``--property NAME``) and reports verdicts; the exit status is 0 iff all
checked properties are satisfied.  ``--workers N`` fans the valuation
sweep out across N processes (``--workers 0``: all cores; default: the
``REPRO_WORKERS`` environment variable, else sequential); ``--stats``
prints the full per-property statistics including task counts and
compute time of the parallel sweep.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .errors import ReproError
from .ib import check_composition, summarize
from .runtime import simulate
from .spec import ChannelSemantics
from .spec.dsl import load_document
from .verifier import verification_domain, verify


def _semantics(args: argparse.Namespace) -> ChannelSemantics:
    return ChannelSemantics(
        lossy=not args.perfect,
        queue_bound=args.queue_bound,
    )


def _load(path: str):
    text = Path(path).read_text()
    return load_document(text)


def cmd_verify(args: argparse.Namespace) -> int:
    composition, databases, properties = _load(args.spec)
    if args.property:
        missing = [n for n in args.property if n not in properties]
        if missing:
            print(f"unknown properties: {missing}; available: "
                  f"{sorted(properties)}", file=sys.stderr)
            return 2
        properties = {n: properties[n] for n in args.property}
    if not properties:
        print("the document declares no properties "
              "(add 'property <name>: <LTL-FO>')", file=sys.stderr)
        return 2

    domain = None
    if args.fresh is not None:
        domain = verification_domain(composition, [], databases,
                                     fresh_count=args.fresh)
    all_ok = True
    for name, prop_text in sorted(properties.items()):
        result = verify(
            composition, prop_text, databases,
            semantics=_semantics(args), domain=domain,
            fair_scheduling=args.fair, workers=args.workers,
        )
        if args.stats:
            print(f"{name}:")
            for line in result.summary().splitlines():
                print(f"  {line}")
        else:
            print(f"{name}: {result.verdict}  "
                  f"(states={result.stats.system_states}, "
                  f"{result.stats.wall_seconds:.2f}s)")
        if not result.satisfied:
            all_ok = False
            if args.counterexample and result.counterexample:
                print(result.counterexample.describe(composition))
    return 0 if all_ok else 1


def cmd_check(args: argparse.Namespace) -> int:
    composition, _databases, _properties = _load(args.spec)
    violations = check_composition(composition)
    print(summarize(violations))
    return 0 if not violations else 1


def cmd_simulate(args: argparse.Namespace) -> int:
    composition, databases, _properties = _load(args.spec)
    domain = verification_domain(composition, [], databases,
                                 fresh_count=args.fresh or 1)
    trace = simulate(composition, databases, domain.values,
                     steps=args.steps, seed=args.seed,
                     semantics=_semantics(args))
    for idx, state in enumerate(trace):
        events = ""
        if state.enqueued:
            events = f"  enqueued={sorted(state.enqueued)}"
        print(f"step {idx:3d}: mover={state.mover or '-':8s}{events}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Verify communicating data-driven web services "
                    "(PODS 2006 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("spec", help="path to a .dws specification")
        p.add_argument("--perfect", action="store_true",
                       help="perfect channels (default: lossy)")
        p.add_argument("--queue-bound", type=int, default=1,
                       help="queue capacity k (default 1)")
        p.add_argument("--fresh", type=int, default=None,
                       help="override the number of fresh domain values")

    p_verify = sub.add_parser("verify", help="verify the document's "
                                             "properties")
    common(p_verify)
    p_verify.add_argument("--property", action="append",
                          help="check only this property (repeatable)")
    p_verify.add_argument("--fair", action="store_true",
                          help="restrict to fair scheduling")
    p_verify.add_argument("--counterexample", action="store_true",
                          help="print counterexample runs")
    p_verify.add_argument("--workers", type=int, default=None,
                          help="parallel sweep worker processes "
                               "(0: all cores; default: $REPRO_WORKERS "
                               "or sequential)")
    p_verify.add_argument("--stats", action="store_true",
                          help="print full per-property statistics")
    p_verify.set_defaults(func=cmd_verify)

    p_check = sub.add_parser("check", help="input-boundedness check only")
    common(p_check)
    p_check.set_defaults(func=cmd_check)

    p_sim = sub.add_parser("simulate", help="print one random run")
    common(p_sim)
    p_sim.add_argument("--steps", type=int, default=25)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.set_defaults(func=cmd_simulate)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
