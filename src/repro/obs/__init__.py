"""Observability: metrics, structured tracing, and phase profiling.

A zero-dependency measurement substrate for the verifier pipeline:

* :mod:`repro.obs.metrics` -- a process-local registry of counters,
  gauges, and fixed-bucket histograms, importable from anywhere in
  ``repro`` without circular-import risk (this package imports nothing
  from the rest of the library);
* :mod:`repro.obs.trace` -- a structured span/instant event stream
  written as JSONL, thread- and fork-safe, and a strict no-op while
  disabled (one module-global boolean check);
* :mod:`repro.obs.phases` -- exclusive ("self-time") phase timers wired
  through the pipeline: when phases nest, time spent in a child is
  *not* double-counted in the parent, so per-phase seconds sum to the
  total instrumented wall time.

The registry and trace sink are per process.  Worker processes of the
parallel sweep start from a clean slate (:func:`reset_for_worker`) and
ship their phase/cache deltas back to the driver inside
``TaskOutcome``; see :mod:`repro.verifier.parallel`.
"""

from .metrics import (
    DEFAULT_TIME_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry,
    REGISTRY, counter, counters_snapshot, diff_numeric, gauge, histogram,
    merge_counters, merge_numeric, merge_registry_snapshot,
)
from .phases import (
    LINT_PHASE_PREFIX, PHASE_EXPAND, PHASE_FO_EVAL, PHASE_IB_CHECK,
    PHASE_LINT, PHASE_RULE_FIRE, PHASE_SEARCH, PHASE_SWEEP,
    PHASE_TRANSLATE, PHASE_VALUATIONS, lint_phase, phase, phase_counts,
    phase_seconds, phase_snapshot,
)
from .trace import (
    configure_tracing, instant, trace_path, tracing_enabled,
)


def reset_for_worker() -> None:
    """Start a fresh per-process observability slate (pool initializer).

    Forked workers inherit the parent's registry contents and the open
    trace sink; the registry is cleared so per-task deltas are private,
    while the trace configuration is kept (the sink reopens the JSONL
    file on first use in the new pid, so worker spans land in the same
    file as the driver's).
    """
    REGISTRY.reset()
    from . import trace as _trace
    _trace.reopen_in_child()


__all__ = [
    "Counter", "DEFAULT_TIME_BUCKETS", "Gauge", "Histogram",
    "LINT_PHASE_PREFIX", "MetricsRegistry", "PHASE_EXPAND",
    "PHASE_FO_EVAL", "PHASE_IB_CHECK", "PHASE_LINT", "PHASE_RULE_FIRE",
    "PHASE_SEARCH", "PHASE_SWEEP", "PHASE_TRANSLATE",
    "PHASE_VALUATIONS", "REGISTRY", "configure_tracing", "counter",
    "counters_snapshot", "diff_numeric", "gauge", "histogram", "instant",
    "lint_phase", "merge_counters",
    "merge_numeric", "merge_registry_snapshot", "phase",
    "phase_counts", "phase_seconds",
    "phase_snapshot", "reset_for_worker", "trace_path",
    "tracing_enabled",
]
