"""Observability: metrics, structured tracing, and phase profiling.

A zero-dependency measurement substrate for the verifier pipeline:

* :mod:`repro.obs.metrics` -- a process-local registry of counters,
  gauges, and fixed-bucket histograms, importable from anywhere in
  ``repro`` without circular-import risk (this package imports nothing
  from the rest of the library);
* :mod:`repro.obs.trace` -- a structured span/instant event stream
  written as JSONL, thread- and fork-safe, and a strict no-op while
  disabled (one module-global boolean check);
* :mod:`repro.obs.phases` -- exclusive ("self-time") phase timers wired
  through the pipeline: when phases nest, time spent in a child is
  *not* double-counted in the parent, so per-phase seconds sum to the
  total instrumented wall time;
* :mod:`repro.obs.ledger` -- the distributed run ledger: per-run ids
  stamped into every trace event, propagated through pool workers and
  remote shards, and a stitcher that reassembles many JSONL streams
  into one causally-ordered trace;
* :mod:`repro.obs.live` -- the live progress plane: heartbeat records
  under a well-known run directory, read by ``repro top``;
* :mod:`repro.obs.export` -- Chrome trace-event (Perfetto) and
  Prometheus text exposition converters;
* :mod:`repro.obs.bench` -- the bench regression sentinel gating
  ``benchmarks/metrics/BENCH_*.json`` trajectories.

The registry and trace sink are per process.  Worker processes of the
parallel sweep start from a clean slate (:func:`reset_for_worker`) and
ship their phase/cache deltas back to the driver inside
``TaskOutcome``; see :mod:`repro.verifier.parallel`.
"""

from .bench import (
    BenchCheckReport, Regression, check_directory, check_entries,
    load_trajectories,
)
from .export import (
    chrome_trace_document, chrome_trace_events, convert_trace_files,
    extract_registry_snapshot, render_prometheus,
)
from .ledger import (
    RunContext, Span, StitchedTrace, adopt_worker, begin_run,
    current_run, current_run_id, end_run, new_run_id, set_shard,
    stitch, worker_bootstrap,
)
from .live import (
    NULL_PROGRESS, NullProgress, ProgressPlane, campaign_progress,
    heartbeats_enabled, latest_run, list_runs, read_progress,
    render_progress, run_dir, runs_root, sweep_progress,
)
from .metrics import (
    COMPAT_SCHEMAS, DEFAULT_TIME_BUCKETS, Counter, Gauge, Histogram,
    MetricsRegistry,
    REGISTRY, counter, counters_snapshot, diff_numeric, gauge, histogram,
    merge_counters, merge_numeric, merge_registry_snapshot,
)
from .phases import (
    LINT_PHASE_PREFIX, PHASE_EXPAND, PHASE_FO_EVAL, PHASE_IB_CHECK,
    PHASE_LINT, PHASE_RULE_FIRE, PHASE_SEARCH, PHASE_SWEEP,
    PHASE_TRANSLATE, PHASE_VALUATIONS, lint_phase, phase, phase_counts,
    phase_seconds, phase_snapshot,
)
from .trace import (
    configure_tracing, instant, set_stamp, stamp, trace_path,
    tracing_enabled,
)


def reset_for_worker() -> None:
    """Start a fresh per-process observability slate (pool initializer).

    Forked workers inherit the parent's registry contents and the open
    trace sink; the registry is cleared so per-task deltas are private,
    while the trace configuration is kept (the sink reopens the JSONL
    file on first use in the new pid, so worker spans land in the same
    file as the driver's).
    """
    REGISTRY.reset()
    from . import trace as _trace
    _trace.reopen_in_child()


__all__ = [
    "BenchCheckReport", "COMPAT_SCHEMAS", "Counter",
    "DEFAULT_TIME_BUCKETS", "Gauge", "Histogram",
    "LINT_PHASE_PREFIX", "MetricsRegistry", "NULL_PROGRESS",
    "NullProgress", "PHASE_EXPAND",
    "PHASE_FO_EVAL", "PHASE_IB_CHECK", "PHASE_LINT", "PHASE_RULE_FIRE",
    "PHASE_SEARCH", "PHASE_SWEEP", "PHASE_TRANSLATE",
    "PHASE_VALUATIONS", "ProgressPlane", "REGISTRY", "Regression",
    "RunContext", "Span", "StitchedTrace", "adopt_worker", "begin_run",
    "campaign_progress", "check_directory", "check_entries",
    "chrome_trace_document", "chrome_trace_events",
    "configure_tracing", "convert_trace_files", "counter",
    "counters_snapshot", "current_run", "current_run_id",
    "diff_numeric", "end_run", "extract_registry_snapshot", "gauge",
    "heartbeats_enabled", "histogram", "instant",
    "latest_run", "lint_phase", "list_runs", "load_trajectories",
    "merge_counters",
    "merge_numeric", "merge_registry_snapshot", "new_run_id", "phase",
    "phase_counts", "phase_seconds",
    "phase_snapshot", "read_progress", "render_progress",
    "render_prometheus", "reset_for_worker", "run_dir", "runs_root",
    "set_shard", "set_stamp", "stamp", "stitch", "sweep_progress",
    "trace_path", "tracing_enabled", "worker_bootstrap",
]
