"""The distributed run ledger: one ``run_id``, one stitched trace.

The multi-process pipeline (driver, pool workers, shard slices on other
machines, fuzz campaigns) emits per-process JSONL span streams
(:mod:`repro.obs.trace`).  This module is the correlation layer that
turns those streams into *one* picture:

* :func:`begin_run` assigns (or adopts, via the ``REPRO_RUN_ID``
  environment variable or ``--run-id``) a globally unique run id and
  installs it as the trace stamp, so every subsequent event carries
  ``run``/``worker``/``shard`` fields;
* :func:`worker_bootstrap` / :func:`adopt_worker` propagate the run
  context across the pool boundary -- including under the ``spawn``
  start method, where a worker imports a fresh module tree and would
  otherwise lose both the run id and the trace sink;
* :func:`stitch` reads any number of trace files (the driver's, a
  shard's from another machine, ...) and reassembles them into one
  causally-ordered event sequence plus a span forest, aligning the
  per-process monotonic clocks on the shared wall-clock axis via each
  stream's ``stream-start`` anchor.

The stitched form is what the exporters consume
(:mod:`repro.obs.export`) and what the upcoming ``repro serve`` daemon
will stream incrementally.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from . import trace

#: Version tag of the run-ledger context/stitch contract.
SCHEMA = "repro.run/1"

#: Environment variable carrying a caller-assigned run id, the
#: cross-machine correlation hook: export the same ``REPRO_RUN_ID``
#: before every ``--shard i/N`` slice and the fragments' traces stitch
#: under one id.
RUN_ID_ENV = "REPRO_RUN_ID"

_CURRENT: "RunContext | None" = None


@dataclass(frozen=True)
class RunContext:
    """Identity of one verification run, shared by all its processes."""

    run_id: str
    role: str = "driver"            #: driver | worker | fuzz | merge
    worker: int | None = None       #: pool-worker index (workers only)
    shard: tuple[int, int] | None = None  #: ``(i, N)`` slice, if any

    def stamp(self) -> dict:
        """The fields merged into every trace event of this process."""
        out: dict = {"run": self.run_id}
        if self.worker is not None:
            out["worker"] = self.worker
        if self.shard is not None:
            out["shard"] = f"{self.shard[0]}/{self.shard[1]}"
        return out


def new_run_id() -> str:
    """A fresh, sortable, collision-resistant run id."""
    return ("r-" + time.strftime("%Y%m%dT%H%M%S")
            + "-" + os.urandom(4).hex())


def current_run() -> RunContext | None:
    return _CURRENT


def current_run_id() -> str | None:
    return _CURRENT.run_id if _CURRENT is not None else None


def begin_run(run_id: str | None = None, role: str = "driver",
              worker: int | None = None,
              shard: tuple[int, int] | None = None) -> RunContext:
    """Open a run context and install its trace stamp.

    ``run_id=None`` adopts ``$REPRO_RUN_ID`` when set (the shard /
    cross-machine case) and mints a fresh id otherwise.
    """
    global _CURRENT
    if run_id is None:
        run_id = os.environ.get(RUN_ID_ENV, "").strip() or new_run_id()
    ctx = RunContext(run_id=run_id, role=role, worker=worker, shard=shard)
    _CURRENT = ctx
    trace.set_stamp(ctx.stamp())
    return ctx


def set_shard(shard: tuple[int, int] | None) -> RunContext | None:
    """Record the shard selector on the active run (no-op without one)."""
    global _CURRENT
    if _CURRENT is None or shard is None:
        return _CURRENT
    ctx = RunContext(run_id=_CURRENT.run_id, role=_CURRENT.role,
                     worker=_CURRENT.worker, shard=shard)
    _CURRENT = ctx
    trace.set_stamp(ctx.stamp())
    return ctx


def end_run() -> None:
    """Close the run context and clear the trace stamp."""
    global _CURRENT
    _CURRENT = None
    trace.set_stamp(None)


def worker_bootstrap(worker: int) -> dict:
    """Everything a pool worker needs to join this process's run.

    Shipped in the worker's start arguments (plain picklable dict).
    Works under any start method: ``fork`` children inherit the module
    state and merely re-stamp; ``spawn`` children rebuild it from this
    dict, including re-attaching the trace sink in append mode.
    """
    ctx = _CURRENT
    return {
        "run_id": ctx.run_id if ctx is not None else None,
        "shard": ctx.shard if ctx is not None else None,
        "worker": worker,
        "trace_path": trace.trace_path() if trace.tracing_enabled()
        else None,
    }


def adopt_worker(bootstrap: Mapping | None) -> RunContext | None:
    """Join the driver's run from inside a pool worker.

    Call after :func:`repro.obs.reset_for_worker`.  Attaches the trace
    sink without truncating (spawn workers start with tracing off), and
    installs the worker-indexed run stamp.
    """
    if not bootstrap:
        return None
    path = bootstrap.get("trace_path")
    if path and not trace.tracing_enabled():
        trace.configure_tracing(path, truncate=False)
    if bootstrap.get("run_id") is None:
        return None
    shard = bootstrap.get("shard")
    return begin_run(run_id=bootstrap["run_id"], role="worker",
                     worker=bootstrap.get("worker"),
                     shard=tuple(shard) if shard is not None else None)


# ---------------------------------------------------------------------------
# stitching: N JSONL files -> one causally-ordered trace


@dataclass
class Span:
    """One closed (or force-closed) span in the stitched tree."""

    name: str
    pid: int
    tid: int
    start: float                 #: wall-clock seconds (epoch)
    end: float | None = None
    worker: int | None = None
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start


@dataclass
class StitchedTrace:
    """The merged view over every input stream of one (or more) runs."""

    #: All events, each with a computed ``wall`` field, in causal
    #: (wall-clock) order; ties break on (pid, tid, input order).
    events: list[dict]
    #: Distinct run ids seen (ideally exactly one).
    run_ids: tuple[str, ...]
    #: pid -> {"role", "worker", "shard", "first_wall", "files"}.
    processes: dict[int, dict]
    #: Per-(pid, tid) span forests, driver streams first.
    roots: list[Span]
    #: Input lines that failed to parse (torn writes, truncation).
    corrupt_lines: int = 0

    def driver_pids(self) -> list[int]:
        return [pid for pid, info in sorted(self.processes.items())
                if info["role"] == "driver"]

    def worker_pids(self) -> list[int]:
        return [pid for pid, info in sorted(self.processes.items())
                if info["role"] == "worker"]


def read_trace_events(paths: Iterable[str | Path]
                      ) -> tuple[list[dict], int]:
    """Parse JSONL trace files; returns (events, corrupt line count).

    Every event is annotated with ``_file`` (input path) and ``_seq``
    (position within its file) for stable downstream ordering; corrupt
    lines -- possible when a machine died mid-write -- are counted, not
    fatal.
    """
    events: list[dict] = []
    corrupt = 0
    for path in paths:
        text = Path(path).read_text()
        for seq, line in enumerate(text.splitlines()):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except ValueError:
                corrupt += 1
                continue
            if not isinstance(event, dict) or "ts" not in event:
                corrupt += 1
                continue
            event["_file"] = str(path)
            event["_seq"] = seq
            events.append(event)
    return events, corrupt


def _anchor_offsets(events: Sequence[dict]) -> dict[tuple[str, int], float]:
    """Per-(file, pid) ``wall - ts`` offsets from the stream anchors.

    A pid's monotonic clock is only meaningful within its machine; the
    ``stream-start`` anchor pairs it with an epoch timestamp, giving
    the additive offset that places the stream on the shared wall
    axis.  Streams without an anchor (pre-/2 files) borrow their
    file's earliest anchor, and a file with no anchors at all falls
    back to offset 0 -- events stay ordered within the file either way.
    """
    offsets: dict[tuple[str, int], float] = {}
    file_fallback: dict[str, float] = {}
    for event in events:
        args = event.get("args") or {}
        if event.get("name") == "stream-start" and "wall" in args:
            key = (event["_file"], event["pid"])
            if key not in offsets:
                offsets[key] = args["wall"] - event["ts"]
                file_fallback.setdefault(event["_file"],
                                         args["wall"] - event["ts"])
    for event in events:
        key = (event["_file"], event["pid"])
        if key not in offsets:
            offsets[key] = file_fallback.get(event["_file"], 0.0)
    return offsets


def _build_forest(events: Sequence[dict]) -> list[Span]:
    """Per-(pid, tid) span trees from the B/E events, driver first.

    Unbalanced tails (a worker killed mid-span) are force-closed at the
    stream's last timestamp instead of being dropped -- truthful about
    what ran, honest about not knowing when it would have ended.
    """
    streams: dict[tuple[int, int], list[dict]] = {}
    for event in events:
        streams.setdefault((event["pid"], event["tid"]), []).append(event)
    forests: list[tuple[tuple, list[Span]]] = []
    for key, stream in streams.items():
        roots: list[Span] = []
        stack: list[Span] = []
        worker = next((e["worker"] for e in stream if "worker" in e), None)
        for event in stream:
            if event["ph"] == "B":
                span = Span(name=event["name"], pid=event["pid"],
                            tid=event["tid"], start=event["wall"],
                            worker=worker)
                (stack[-1].children if stack else roots).append(span)
                stack.append(span)
            elif event["ph"] == "E":
                if stack and stack[-1].name == event["name"]:
                    stack.pop().end = event["wall"]
                elif stack:  # mismatched nesting: close what we can
                    stack.pop().end = event["wall"]
        last = stream[-1]["wall"] if stream else 0.0
        while stack:
            stack.pop().end = last
        sort_key = (0 if worker is None else 1, worker or 0, key)
        forests.append((sort_key, roots))
    forests.sort(key=lambda item: item[0])
    return [span for _, roots in forests for span in roots]


def stitch(paths: Sequence[str | Path]) -> StitchedTrace:
    """Merge trace files into one causally-ordered, anchored trace."""
    events, corrupt = read_trace_events(paths)
    offsets = _anchor_offsets(events)
    for event in events:
        event["wall"] = (offsets[(event["_file"], event["pid"])]
                         + event["ts"])
    events.sort(key=lambda e: (e["wall"], e["pid"], e["tid"], e["_seq"]))

    processes: dict[int, dict] = {}
    for event in events:
        info = processes.setdefault(event["pid"], {
            "role": "driver", "worker": None, "shard": None,
            "first_wall": event["wall"], "files": [],
        })
        if "worker" in event and info["worker"] is None:
            info["worker"] = event["worker"]
            info["role"] = "worker"
        if "shard" in event and info["shard"] is None:
            info["shard"] = event["shard"]
        if event["_file"] not in info["files"]:
            info["files"].append(event["_file"])

    run_ids = tuple(sorted({e["run"] for e in events if "run" in e}))
    return StitchedTrace(
        events=events,
        run_ids=run_ids,
        processes=processes,
        roots=_build_forest(events),
        corrupt_lines=corrupt,
    )
