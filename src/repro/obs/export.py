"""Exporters: stitched traces -> Chrome trace JSON, metrics -> Prometheus.

Two one-way bridges from the repo's private, versioned formats into
the two de-facto standard observability surfaces:

* :func:`convert_trace_files` turns any number of ``repro.trace/2``
  JSONL files (driver + workers + remote shards of one run) into one
  Chrome trace-event JSON document -- the format Perfetto
  (https://ui.perfetto.dev) and ``chrome://tracing`` load directly.
  Stitching, clock alignment, and process attribution come from
  :func:`repro.obs.ledger.stitch`; this module only reshapes.
* :func:`render_prometheus` renders a ``repro.metrics/*`` registry
  snapshot in the Prometheus text exposition format (version 0.0.4),
  ready to be served from a ``/metrics`` endpoint or pushed through a
  node-exporter textfile collector.  This is the exposition contract
  the ROADMAP's ``repro serve`` health endpoint will speak.

Both are exposed on the CLI as ``repro trace convert`` and
``repro metrics export``.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Mapping, Sequence

from . import metrics
from .ledger import StitchedTrace, stitch

#: Microseconds per second -- Chrome trace timestamps are in µs.
_US = 1_000_000.0


def _process_label(pid: int, info: Mapping) -> str:
    if info.get("role") == "worker":
        label = f"worker {info['worker']}"
    else:
        label = "driver"
    if info.get("shard"):
        label = f"shard {info['shard']} {label}"
    return f"{label} (pid {pid})"


def _process_sort_index(info: Mapping) -> int:
    # drivers first, then workers by index; shards interleave by the
    # same rule so the Perfetto track order mirrors the hierarchy.
    if info.get("role") == "worker":
        return 1 + int(info.get("worker") or 0)
    return 0


def chrome_trace_events(stitched: StitchedTrace) -> list[dict]:
    """The stitched trace as a Chrome trace-event list.

    Timestamps are wall-aligned microseconds relative to the earliest
    event across all inputs, so multi-machine traces line up on one
    axis.  Process metadata events name each track after its role
    (``driver`` / ``worker i`` / ``shard i/N ...``).
    """
    out: list[dict] = []
    for pid, info in sorted(stitched.processes.items()):
        out.append({"name": "process_name", "ph": "M", "pid": pid,
                    "tid": 0, "args": {"name": _process_label(pid, info)}})
        out.append({"name": "process_sort_index", "ph": "M", "pid": pid,
                    "tid": 0,
                    "args": {"sort_index": _process_sort_index(info)}})
    base = stitched.events[0]["wall"] if stitched.events else 0.0
    for event in stitched.events:
        converted = {
            "name": event["name"],
            "cat": "repro",
            "ph": event["ph"] if event["ph"] in ("B", "E") else "i",
            "ts": (event["wall"] - base) * _US,
            "pid": event["pid"],
            "tid": event["tid"],
        }
        if converted["ph"] == "i":
            converted["s"] = "t"  # thread-scoped instant
        args = dict(event.get("args") or {})
        for key in ("run", "worker", "shard"):
            if key in event:
                args[key] = event[key]
        if args:
            converted["args"] = args
        out.append(converted)
    return out


def chrome_trace_document(stitched: StitchedTrace,
                          inputs: Sequence[str] = ()) -> dict:
    """The full Chrome trace JSON object (``traceEvents`` wrapper)."""
    return {
        "traceEvents": chrome_trace_events(stitched),
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": "repro.trace.chrome/1",
            "source_schema": "repro.trace/2",
            "run_ids": list(stitched.run_ids),
            "inputs": [str(p) for p in inputs],
            "processes": len(stitched.processes),
            "corrupt_lines": stitched.corrupt_lines,
        },
    }


def convert_trace_files(inputs: Sequence[str | Path],
                        output: str | Path | None = None) -> dict:
    """Stitch *inputs* and convert; optionally write the JSON to *output*."""
    stitched = stitch(inputs)
    doc = chrome_trace_document(stitched, inputs=[str(p) for p in inputs])
    if output is not None:
        Path(output).write_text(json.dumps(doc, default=str) + "\n")
    return doc


# ---------------------------------------------------------------------------
# Prometheus text exposition


def _prom_name(name: str, prefix: str = "repro_") -> str:
    """A valid Prometheus metric name for a registry metric name."""
    sanitized = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not re.match(r"[a-zA-Z_]", sanitized):
        sanitized = "_" + sanitized
    return prefix + sanitized


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def extract_registry_snapshot(doc: Mapping) -> Mapping:
    """Find the registry snapshot inside any of the on-disk JSON shapes.

    Accepts a bare ``repro.metrics/*`` snapshot, a ``--metrics-json``
    document (snapshot under ``registry``), or a shard fragment /
    merged document (snapshot under ``metrics``).
    """
    # nested forms first: the --metrics-json wrapper reuses the
    # repro.metrics/* schema tag at its own top level, so a bare-
    # snapshot check must not shadow the registry inside it
    for key in ("registry", "metrics"):
        inner = doc.get(key)
        if (isinstance(inner, Mapping)
                and inner.get("schema") in metrics.COMPAT_SCHEMAS):
            return inner
    if (doc.get("schema") in metrics.COMPAT_SCHEMAS
            and isinstance(doc.get("counters"), Mapping)):
        return doc
    raise ValueError(
        "no repro.metrics/1-or-/2 registry snapshot found in document "
        f"(top-level schema {doc.get('schema')!r})"
    )


def render_prometheus(snapshot: Mapping) -> str:
    """A registry snapshot in Prometheus text exposition format 0.0.4.

    Counters become ``repro_<name>_total``; gauges keep their name;
    histograms emit the standard cumulative ``_bucket{le=...}`` series
    (our registry stores per-bucket counts with inclusive upper bounds,
    which accumulate into exactly Prometheus's ``le`` semantics) plus
    ``_sum``/``_count``; phase accumulators become
    ``repro_phase_seconds_total{phase="..."}`` and
    ``repro_phase_runs_total{phase="..."}``.  A run-ledger id, when
    present, is exposed as the standard info-metric pattern
    ``repro_run_info{run="..."} 1`` rather than as a label on every
    series (which would explode cardinality across runs).
    """
    lines: list[str] = []
    run_id = snapshot.get("run")
    if run_id:
        lines += [
            "# HELP repro_run_info Run-ledger identity of this snapshot.",
            "# TYPE repro_run_info gauge",
            f'repro_run_info{{run="{run_id}"}} 1',
        ]
    for name, value in (snapshot.get("counters") or {}).items():
        prom = _prom_name(name) + "_total"
        lines += [
            f"# TYPE {prom} counter",
            f"{prom} {_prom_value(value)}",
        ]
    for name, value in (snapshot.get("gauges") or {}).items():
        prom = _prom_name(name)
        lines += [
            f"# TYPE {prom} gauge",
            f"{prom} {_prom_value(value)}",
        ]
    for name, hist in (snapshot.get("histograms") or {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for boundary, count in zip(hist["boundaries"], hist["counts"]):
            cumulative += count
            lines.append(
                f'{prom}_bucket{{le="{_prom_value(boundary)}"}} {cumulative}'
            )
        lines.append(f'{prom}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{prom}_sum {_prom_value(hist['sum'])}")
        lines.append(f"{prom}_count {hist['count']}")
    phases = snapshot.get("phases") or {}
    if phases:
        lines.append("# TYPE repro_phase_seconds_total counter")
        for name, entry in phases.items():
            lines.append(
                f'repro_phase_seconds_total{{phase="{name}"}} '
                f"{_prom_value(entry['seconds'])}"
            )
        lines.append("# TYPE repro_phase_runs_total counter")
        for name, entry in phases.items():
            lines.append(
                f'repro_phase_runs_total{{phase="{name}"}} '
                f"{entry['count']}"
            )
    return "\n".join(lines) + "\n"
