"""A process-local metrics registry: counters, gauges, histograms.

The registry is deliberately tiny and dependency-free so every layer of
the pipeline (FO evaluation, rule firing, translation, search) can
record into it without import cycles or measurable overhead: a counter
increment is one attribute add, and nothing allocates on the hot path
after the first ``counter(name)`` lookup.

Snapshots are plain JSON-able dicts with a versioned ``schema`` tag, so
they can be shipped across process boundaries (the parallel sweep sends
per-task deltas back to the driver) and merged numerically.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Mapping

#: Version tag stamped on every registry snapshot.  ``/2`` adds an
#: optional top-level ``run`` key (the run-ledger id) and allows the
#: ``shm.segments_active`` additive gauge; the numeric layout of
#: counters/gauges/histograms/phases is unchanged from ``/1``.
SCHEMA = "repro.metrics/2"

#: Snapshot schemas the merge paths accept.  Committed ``BENCH_*.json``
#: trajectories and shard fragments written by older builds carry
#: ``/1``; their numeric payload is layout-identical, so merges and the
#: bench sentinel read both.
COMPAT_SCHEMAS = frozenset({"repro.metrics/1", "repro.metrics/2"})

#: Default histogram boundaries for durations in seconds (upper bounds;
#: one overflow bucket is implied past the last boundary).
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-set value (e.g. a cache size or a high-water mark)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Fixed-boundary histogram of observations.

    ``boundaries`` are inclusive upper bounds; observations above the
    last boundary land in the implicit overflow bucket, so
    ``len(counts) == len(boundaries) + 1``.
    """

    __slots__ = ("name", "boundaries", "counts", "total", "count")

    def __init__(self, name: str,
                 boundaries: tuple[float, ...] = DEFAULT_TIME_BUCKETS
                 ) -> None:
        if tuple(sorted(boundaries)) != tuple(boundaries):
            raise ValueError(f"histogram boundaries not sorted: {boundaries}")
        self.name = name
        self.boundaries = tuple(boundaries)
        self.counts = [0] * (len(boundaries) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.total += value
        self.count += 1

    def snapshot(self) -> dict:
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class MetricsRegistry:
    """Get-or-create store of named metrics plus the phase accumulators.

    ``phase_seconds``/``phase_counts`` are written by
    :mod:`repro.obs.phases`; they live here so one ``snapshot()`` /
    ``reset()`` covers everything a process measured.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self.phase_seconds: dict[str, float] = {}
        self.phase_counts: dict[str, int] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str,
                  boundaries: tuple[float, ...] = DEFAULT_TIME_BUCKETS
                  ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, boundaries)
        return h

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.phase_seconds.clear()
        self.phase_counts.clear()

    def snapshot(self) -> dict:
        """A JSON-able snapshot of everything recorded in this process.

        When a run-ledger context is active, the snapshot carries the
        ``run`` id so metrics files correlate with trace files of the
        same run; without one the key is absent, keeping snapshots of
        library-level calls byte-stable.
        """
        from . import ledger  # local: ledger imports trace, not metrics
        out = {
            "schema": SCHEMA,
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self._histograms.items())
            },
            "phases": {
                name: {
                    "seconds": self.phase_seconds[name],
                    "count": self.phase_counts.get(name, 0),
                }
                for name in sorted(self.phase_seconds)
            },
        }
        run_id = ledger.current_run_id()
        if run_id is not None:
            out["run"] = run_id
        return out


def counters_snapshot() -> dict[str, int]:
    """Current value of every counter in this process's registry.

    The flat form the parallel sweep ships across process boundaries:
    workers snapshot before/after a task, :func:`diff_numeric` the two,
    and the driver folds the delta back in with :func:`merge_counters`
    so ``--metrics-json`` reports fleet-wide totals.
    """
    return {name: c.value for name, c in REGISTRY._counters.items()}


def merge_counters(delta: Mapping) -> None:
    """Add a worker's counter deltas into this process's registry."""
    for name, value in delta.items():
        if value:
            REGISTRY.counter(name).inc(value)


def merge_registry_snapshot(snapshot: Mapping) -> None:
    """Fold a full ``repro.metrics/1``-or-``/2`` snapshot into this registry.

    The shard-merge primitive: each shard of a distributed sweep writes
    ``REGISTRY.snapshot()`` into its fragment, and ``repro merge-shards``
    replays every fragment through this function to reconstruct
    fleet-wide totals.  Counters and phases add; gauges take the
    maximum (they are high-water marks or sizes of per-process
    structures, where "largest seen anywhere" is the honest merge);
    histograms add bucket-wise when boundaries agree and are skipped
    otherwise (mismatched boundaries cannot be combined losslessly).
    """
    schema = snapshot.get("schema")
    if schema not in COMPAT_SCHEMAS:
        raise ValueError(
            f"cannot merge metrics snapshot with schema {schema!r}; "
            f"expected one of {sorted(COMPAT_SCHEMAS)}"
        )
    merge_counters(snapshot.get("counters", {}))
    for name, value in snapshot.get("gauges", {}).items():
        REGISTRY.gauge(name).set_max(value)
    for name, snap in snapshot.get("histograms", {}).items():
        hist = REGISTRY.histogram(name, tuple(snap["boundaries"]))
        if hist.boundaries != tuple(snap["boundaries"]):
            continue
        for i, count in enumerate(snap["counts"]):
            hist.counts[i] += count
        hist.total += snap["sum"]
        hist.count += snap["count"]
    for name, entry in snapshot.get("phases", {}).items():
        merge_numeric(REGISTRY.phase_seconds, {name: entry["seconds"]})
        merge_numeric(REGISTRY.phase_counts, {name: entry["count"]})


def merge_numeric(into: dict, extra: Mapping) -> dict:
    """Sum *extra*'s numeric values into *into*, key by key (in place).

    Used to aggregate per-task/per-worker deltas (phase seconds, cache
    counters) shipped back from pool workers.
    """
    for key, value in extra.items():
        into[key] = into.get(key, 0) + value
    return into


def diff_numeric(after: Mapping, before: Mapping) -> dict:
    """Per-key numeric difference ``after - before`` (non-zero keys only)."""
    out = {}
    for key, value in after.items():
        delta = value - before.get(key, 0)
        if delta:
            out[key] = delta
    return out


#: The process-global registry.  Worker processes reset it on start
#: (:func:`repro.obs.reset_for_worker`) so their numbers are private.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str,
              boundaries: tuple[float, ...] = DEFAULT_TIME_BUCKETS
              ) -> Histogram:
    return REGISTRY.histogram(name, boundaries)
