"""Exclusive phase timers for the verifier pipeline.

``with phase(PHASE_SEARCH): ...`` accumulates *self time* into the
process registry: when phases nest (the emptiness search expands
system states, which fires rules, which evaluates FO bodies), entering
a child pauses the parent's clock, so each phase's seconds count only
the work done at that level and the per-phase totals sum to the total
instrumented wall time.  That additivity is what lets ``repro
profile`` print a breakdown whose rows sum to the observed wall clock.

The phase stack is thread-local; the accumulators live in
:data:`repro.obs.metrics.REGISTRY` (process-local).  When tracing is
enabled each enter/exit also emits a ``B``/``E`` span event.

Overhead per enter+exit is two ``perf_counter`` calls and a few dict
operations; every instrumented site sits behind real work (a cache
miss, a state expansion, a whole automaton translation), keeping the
disabled-trace cost well under the noise floor of the benchmarks.
"""

from __future__ import annotations

import threading
from time import perf_counter

from . import trace
from .metrics import REGISTRY

# Canonical phase names, in pipeline order (see DESIGN.md section 4:
# translation -> product -> emptiness).
PHASE_IB_CHECK = "ib-check"      #: input-boundedness restriction check
PHASE_VALUATIONS = "valuations"  #: universal-closure valuation enumeration
PHASE_TRANSLATE = "translate"    #: LTL -> Büchi (GPVW + degeneralize)
PHASE_SEARCH = "search"          #: nested-DFS emptiness (self: DFS bookkeeping)
PHASE_EXPAND = "expand"          #: system-state successor expansion
PHASE_RULE_FIRE = "rule-fire"    #: rule firing (self: cache lookup/key cost)
PHASE_FO_EVAL = "fo-eval"        #: FO formula evaluation (sat-set computation)
PHASE_SWEEP = "sweep"            #: driver side of the valuation sweep
PHASE_LINT = "lint"              #: static analyzer driver (repro lint)

#: Per-pass lint phases are named dynamically as ``lint:<pass-name>``.
LINT_PHASE_PREFIX = "lint:"


def lint_phase(pass_name: str) -> str:
    """The phase name timing one static-analysis pass."""
    return LINT_PHASE_PREFIX + pass_name

_local = threading.local()


def _stack() -> list:
    try:
        return _local.stack
    except AttributeError:
        stack = _local.stack = []
        return stack


class phase:
    """Context manager timing one pipeline phase (exclusive/self time)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __enter__(self) -> "phase":
        now = perf_counter()
        stack = _stack()
        if stack:
            parent = stack[-1]
            seconds = REGISTRY.phase_seconds
            pname = parent[0]
            seconds[pname] = seconds.get(pname, 0.0) + (now - parent[1])
        counts = REGISTRY.phase_counts
        counts[self.name] = counts.get(self.name, 0) + 1
        stack.append([self.name, now])
        if trace._ENABLED:
            trace.emit_span("B", self.name)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        now = perf_counter()
        stack = _stack()
        name, start = stack.pop()
        seconds = REGISTRY.phase_seconds
        seconds[name] = seconds.get(name, 0.0) + (now - start)
        if stack:
            stack[-1][1] = now
        if trace._ENABLED:
            trace.emit_span("E", name)


def phase_seconds() -> dict[str, float]:
    """Copy of the per-phase self-time accumulators (this process)."""
    return dict(REGISTRY.phase_seconds)


def phase_counts() -> dict[str, int]:
    """Copy of the per-phase entry counters (this process)."""
    return dict(REGISTRY.phase_counts)


def phase_snapshot() -> dict:
    """Both accumulators in one JSON-able dict."""
    return {"seconds": phase_seconds(), "counts": phase_counts()}
