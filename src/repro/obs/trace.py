"""Structured trace events as JSONL: span begin/end plus instants.

Event schema (one JSON object per line; ``repro.trace/2``):

``ts``
    seconds on the shared monotonic clock (comparable across the
    driver and fork-started workers on Linux);
``pid`` / ``tid``
    emitting process and thread;
``ph``
    ``"B"`` (span begin), ``"E"`` (span end), or ``"I"`` (instant);
``name``
    the span/instant name (phase names for pipeline spans);
``args``
    optional JSON object of extra fields (instants only);
``run`` / ``worker`` / ``shard``
    the run-ledger stamp (:mod:`repro.obs.ledger`): the run id this
    event belongs to, the pool-worker index, and the ``i/N`` shard
    selector.  Present whenever a run context is active; these fields
    are what lets ``repro trace convert`` stitch JSONL files from many
    processes -- and many machines -- into one causally-ordered trace.

The first event a process writes into the sink is a ``stream-start``
instant whose ``args`` carry the schema tag and a ``wall`` epoch
timestamp.  That pairing of (monotonic ``ts``, epoch ``wall``) is the
stream's clock anchor: exporters compute ``wall - ts`` per pid and can
then place events from different files -- whose monotonic clocks are
not comparable across machines -- on one shared wall-clock axis.

Within one ``(pid, tid)`` stream, ``B``/``E`` events are properly
nested and balanced -- spans are emitted by :class:`repro.obs.phases.
phase`, a context manager.  Across processes the file is append-only
and **unbuffered**: every event is one ``write()`` of a full line on an
``O_APPEND`` handle opened with ``buffering=0``, so concurrent writers
never interleave mid-line and a fork can never capture half a line in
a userspace buffer.

Disabled (the default) means one module-global boolean check per
candidate event -- no clock reads, no allocation.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Mapping

#: Version tag stamped on every stream's opening instant event.
SCHEMA = "repro.trace/2"

_ENABLED = False
_PATH: str | None = None
_FILE = None
_LOCK = threading.Lock()
#: Run-ledger fields merged into every event (``run``/``worker``/...).
_STAMP: dict = {}
#: The pid that has written its ``stream-start`` anchor to the sink.
_ANCHORED_PID: int | None = None


def configure_tracing(path: str | None, truncate: bool = True) -> None:
    """Start tracing to *path*, or stop with ``None``.

    ``truncate=True`` (the driver's path) starts a fresh file;
    ``truncate=False`` attaches to an existing sink in append mode --
    how a spawn-started pool worker joins the driver's trace file
    (:func:`repro.obs.ledger.adopt_worker`).
    """
    global _ENABLED, _PATH, _FILE, _ANCHORED_PID
    with _LOCK:
        if _FILE is not None:
            _FILE.close()
            _FILE = None
        _PATH = path
        _ENABLED = path is not None
        _ANCHORED_PID = None
        if path is not None and truncate:
            open(path, "w").close()
    if path is not None:
        instant("stream-start", schema=SCHEMA, wall=time.time())


def tracing_enabled() -> bool:
    return _ENABLED


def trace_path() -> str | None:
    return _PATH


def set_stamp(fields: Mapping | None) -> None:
    """Install the run-ledger stamp merged into every subsequent event.

    Called by :mod:`repro.obs.ledger` when a run context begins or
    ends; pass ``None`` (or ``{}``) to clear.  Keys land at the top
    level of each event (``run``, ``worker``, ``shard``).
    """
    global _STAMP
    _STAMP = dict(fields) if fields else {}


def stamp() -> dict:
    """A copy of the current run-ledger stamp."""
    return dict(_STAMP)


def reopen_in_child() -> None:
    """Flush and drop the inherited handle; the next event reopens.

    Called from the pool-worker initializer.  A forked child inherits
    the parent's open handle *and* its lock: the handle is flushed and
    closed (the sink is unbuffered, so this releases the child's dup of
    the file descriptor without ever replaying parent bytes -- a
    garbage-collected inherited handle can therefore never emit a
    partial line into the shared file), and the lock is replaced with a
    fresh one, because the inherited lock may have been held at fork
    time by a parent thread that does not exist in the child.  The pid
    anchor resets so the child's first event is preceded by its own
    ``stream-start`` clock anchor.
    """
    global _FILE, _LOCK, _ANCHORED_PID
    _LOCK = threading.Lock()
    inherited = _FILE
    _FILE = None
    _ANCHORED_PID = None
    if inherited is not None:
        try:
            inherited.flush()
            inherited.close()
        except (OSError, ValueError):  # pragma: no cover - defensive
            pass


def _encode(event: dict) -> bytes:
    return (json.dumps(event, separators=(",", ":"), default=str)
            + "\n").encode("utf-8")


def _write(event: dict) -> None:
    global _FILE, _ANCHORED_PID
    if _STAMP:
        event = {**event, **_STAMP}
    with _LOCK:
        if _FILE is None:
            if _PATH is None:
                return
            # O_APPEND + buffering=0: every line is a single atomic
            # write syscall landing at end-of-file, even with the
            # driver and fork-started workers sharing one sink.
            _FILE = open(_PATH, "ab", buffering=0)
        pid = event["pid"]
        if pid != _ANCHORED_PID:
            _ANCHORED_PID = pid
            if event.get("name") != "stream-start":
                anchor = {
                    "ts": event["ts"], "pid": pid, "tid": event["tid"],
                    "ph": "I", "name": "stream-start",
                    "args": {"schema": SCHEMA, "wall": time.time()},
                }
                if _STAMP:
                    anchor = {**anchor, **_STAMP}
                _FILE.write(_encode(anchor))
        _FILE.write(_encode(event))


def emit_span(ph: str, name: str) -> None:
    if not _ENABLED:
        return
    _write({
        "ts": time.monotonic(),
        "pid": os.getpid(),
        "tid": threading.get_ident(),
        "ph": ph,
        "name": name,
    })


def instant(name: str, **args) -> None:
    """Emit an instant event with optional JSON-able payload fields."""
    if not _ENABLED:
        return
    event = {
        "ts": time.monotonic(),
        "pid": os.getpid(),
        "tid": threading.get_ident(),
        "ph": "I",
        "name": name,
    }
    if args:
        event["args"] = args
    _write(event)
