"""Structured trace events as JSONL: span begin/end plus instants.

Event schema (one JSON object per line; ``repro.trace/1``):

``ts``
    seconds on the shared monotonic clock (comparable across the
    driver and fork-started workers on Linux);
``pid`` / ``tid``
    emitting process and thread;
``ph``
    ``"B"`` (span begin), ``"E"`` (span end), or ``"I"`` (instant);
``name``
    the span/instant name (phase names for pipeline spans);
``args``
    optional JSON object of extra fields (instants only).

Within one ``(pid, tid)`` stream, ``B``/``E`` events are properly
nested and balanced -- spans are emitted by :class:`repro.obs.phases.
phase`, a context manager.  Across processes the file is append-only:
every event is written as one ``write()`` of a full line to a file
opened in append mode, so concurrent writers do not interleave
mid-line.

Disabled (the default) means one module-global boolean check per
candidate event -- no clock reads, no allocation.
"""

from __future__ import annotations

import json
import os
import threading
import time

#: Version tag stamped on the stream's opening instant event.
SCHEMA = "repro.trace/1"

_ENABLED = False
_PATH: str | None = None
_FILE = None
_LOCK = threading.Lock()


def configure_tracing(path: str | None) -> None:
    """Start tracing to *path* (truncating it), or stop with ``None``."""
    global _ENABLED, _PATH, _FILE
    with _LOCK:
        if _FILE is not None:
            _FILE.close()
            _FILE = None
        _PATH = path
        _ENABLED = path is not None
        if path is not None:
            # Truncate, then write in append mode: O_APPEND writes land
            # at end-of-file atomically, so the driver and fork-started
            # workers can share one sink without tearing lines.  A "w"
            # handle would keep its own offset and overwrite them.
            open(path, "w").close()
            _FILE = open(path, "a")
    if path is not None:
        instant("trace-start", schema=SCHEMA)


def tracing_enabled() -> bool:
    return _ENABLED


def trace_path() -> str | None:
    return _PATH


def reopen_in_child() -> None:
    """Drop the inherited file handle; the next event reopens for append.

    Called from the pool-worker initializer so a forked child does not
    share the parent's userspace file buffer.
    """
    global _FILE
    _FILE = None


def _write(event: dict) -> None:
    global _FILE
    line = json.dumps(event, separators=(",", ":"), default=str) + "\n"
    with _LOCK:
        if _FILE is None:
            if _PATH is None:
                return
            _FILE = open(_PATH, "a")
        _FILE.write(line)
        _FILE.flush()


def emit_span(ph: str, name: str) -> None:
    if not _ENABLED:
        return
    _write({
        "ts": time.monotonic(),
        "pid": os.getpid(),
        "tid": threading.get_ident(),
        "ph": ph,
        "name": name,
    })


def instant(name: str, **args) -> None:
    """Emit an instant event with optional JSON-able payload fields."""
    if not _ENABLED:
        return
    event = {
        "ts": time.monotonic(),
        "pid": os.getpid(),
        "tid": threading.get_ident(),
        "ph": "I",
        "name": name,
    }
    if args:
        event["args"] = args
    _write(event)
