"""The bench regression sentinel: gate on ``BENCH_*.json`` trajectories.

The benchmark harness appends one metrics entry per (experiment, case)
run into ``benchmarks/metrics/BENCH_*.json``; PRs commit those files, so
the directory is the repo's performance trajectory.  Until now it was
write-only -- nothing *read* the trajectory, so a PR could double a
sweep's wall time and land green.  ``repro bench check`` closes that
loop:

* entries are grouped by ``(experiment, case)`` and ordered by their
  ``recorded_at`` stamp (file position breaks ties);
* within each group the **newest** entry is compared against the
  median of all earlier entries;
* ``wall_seconds`` regresses when the ratio exceeds the threshold
  (default 1.5x) *and* the absolute slowdown exceeds a noise floor
  (default 0.05 s) -- micro-cases jitter by scheduler luck, and a 2 ms
  case tripling is noise, not regression;
* the determinism metrics (``valuations_checked``, ``system_states``,
  ``product_nodes_visited``, ``nba_states_total``) and the ``verdict``
  must match **exactly** whenever all earlier entries agree: these are
  outputs of a deterministic algorithm, so any drift means the engine
  changed behaviour, not just speed.

Groups with a single entry have no baseline and are reported as new,
not checked.  The CLI exits non-zero when any regression is found --
the CI ``bench-check`` job plants a doctored 2x ``wall_seconds`` entry
to prove the gate actually fires.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from statistics import median
from typing import Sequence

#: Deterministic outputs that must not drift between runs of one case.
EXACT_METRICS: tuple[str, ...] = (
    "valuations_checked", "system_states", "product_nodes_visited",
    "nba_states_total",
)

#: Newest ``wall_seconds`` may be at most this multiple of the baseline.
DEFAULT_MAX_WALL_RATIO = 1.5

#: ...but only slowdowns larger than this many seconds count at all.
DEFAULT_MIN_WALL_SECONDS = 0.05


@dataclass(frozen=True)
class Regression:
    """One threshold violation in one (experiment, case) group."""

    experiment: str
    case: str
    metric: str
    baseline: float | str | None
    latest: float | str | None
    message: str

    def to_dict(self) -> dict:
        return {
            "experiment": self.experiment, "case": self.case,
            "metric": self.metric, "baseline": self.baseline,
            "latest": self.latest, "message": self.message,
        }


@dataclass
class BenchCheckReport:
    """The sentinel's verdict over one metrics directory."""

    entries: int = 0
    groups_checked: int = 0
    groups_new: int = 0
    regressions: list[Regression] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict:
        return {
            "schema": "repro.bench-check/1",
            "ok": self.ok,
            "entries": self.entries,
            "groups_checked": self.groups_checked,
            "groups_new": self.groups_new,
            "regressions": [r.to_dict() for r in self.regressions],
        }

    def render(self) -> str:
        lines = [
            f"bench check: {self.entries} entries, "
            f"{self.groups_checked} cases with history, "
            f"{self.groups_new} new cases"
        ]
        for reg in self.regressions:
            lines.append(
                f"REGRESSION {reg.experiment} / {reg.case}: {reg.message}"
            )
        lines.append("bench check: "
                     + ("OK" if self.ok
                        else f"{len(self.regressions)} regression(s)"))
        return "\n".join(lines)


def load_trajectories(metrics_dir: str | Path) -> list[dict]:
    """Every entry of every ``BENCH_*.json``, stamped with its origin.

    Files are read in sorted name order and positions preserved, so the
    (``recorded_at``, origin) sort downstream is total and stable even
    for entries recorded within the same second.
    """
    entries: list[dict] = []
    paths = sorted(Path(metrics_dir).glob("BENCH_*.json"))
    if not paths:
        raise ValueError(f"no BENCH_*.json files under {metrics_dir}")
    order = 0
    for path in paths:
        rows = json.loads(path.read_text())
        if not isinstance(rows, list):
            raise ValueError(f"{path}: expected a JSON list of entries")
        for row in rows:
            row["_origin"] = (str(path.name), order)
            order += 1
            entries.append(row)
    return entries


def _group(entries: Sequence[dict]) -> dict[tuple[str, str], list[dict]]:
    groups: dict[tuple[str, str], list[dict]] = {}
    for entry in entries:
        key = (str(entry.get("experiment")), str(entry.get("case")))
        groups.setdefault(key, []).append(entry)
    for rows in groups.values():
        rows.sort(key=lambda r: (str(r.get("recorded_at", "")),
                                 r["_origin"]))
    return groups


def _check_group(key: tuple[str, str], rows: Sequence[dict],
                 max_wall_ratio: float,
                 min_wall_seconds: float) -> list[Regression]:
    experiment, case = key
    latest, earlier = rows[-1], rows[:-1]
    latest_stats = latest.get("stats") or {}
    found: list[Regression] = []

    walls = [r["stats"]["wall_seconds"] for r in earlier
             if isinstance((r.get("stats") or {}).get("wall_seconds"),
                           (int, float))]
    wall = latest_stats.get("wall_seconds")
    if walls and isinstance(wall, (int, float)):
        baseline = median(walls)
        if (baseline > 0 and wall / baseline > max_wall_ratio
                and wall - baseline > min_wall_seconds):
            found.append(Regression(
                experiment, case, "wall_seconds", baseline, wall,
                f"wall_seconds {wall:.4f}s is {wall / baseline:.2f}x the "
                f"baseline median {baseline:.4f}s "
                f"(threshold {max_wall_ratio}x)",
            ))

    for metric in EXACT_METRICS:
        history = {(r.get("stats") or {}).get(metric) for r in earlier}
        history.discard(None)
        if len(history) == 1 and metric in latest_stats:
            expected = history.pop()
            if latest_stats[metric] != expected:
                found.append(Regression(
                    experiment, case, metric, expected,
                    latest_stats[metric],
                    f"{metric} drifted from {expected} to "
                    f"{latest_stats[metric]} (deterministic output "
                    f"changed)",
                ))

    verdicts = {r.get("verdict") for r in earlier}
    verdicts.discard(None)
    if len(verdicts) == 1 and latest.get("verdict") is not None:
        expected = verdicts.pop()
        if latest["verdict"] != expected:
            found.append(Regression(
                experiment, case, "verdict", expected, latest["verdict"],
                f"verdict flipped from {expected} to {latest['verdict']}",
            ))
    return found


def check_entries(entries: Sequence[dict],
                  max_wall_ratio: float = DEFAULT_MAX_WALL_RATIO,
                  min_wall_seconds: float = DEFAULT_MIN_WALL_SECONDS,
                  ) -> BenchCheckReport:
    """Run the sentinel over already-loaded trajectory entries."""
    report = BenchCheckReport(entries=len(entries))
    for key, rows in sorted(_group(entries).items()):
        if len(rows) < 2:
            report.groups_new += 1
            continue
        report.groups_checked += 1
        report.regressions.extend(
            _check_group(key, rows, max_wall_ratio, min_wall_seconds))
    return report


def check_directory(metrics_dir: str | Path,
                    max_wall_ratio: float = DEFAULT_MAX_WALL_RATIO,
                    min_wall_seconds: float = DEFAULT_MIN_WALL_SECONDS,
                    ) -> BenchCheckReport:
    """Load ``BENCH_*.json`` under *metrics_dir* and run the sentinel."""
    return check_entries(load_trajectories(metrics_dir),
                         max_wall_ratio=max_wall_ratio,
                         min_wall_seconds=min_wall_seconds)
