"""The live progress plane: heartbeat records for running sweeps.

Long sweeps (thousands of valuations, multiple workers, remote shards)
are opaque while they run: the trace file is append-only raw material
and the metrics snapshot only exists at exit.  This module gives every
*active* run a small, always-current presence on disk:

``<runs root>/<run_id>/progress.json``
    the latest heartbeat, rewritten atomically (tmp + ``os.replace``)
    so readers never see a torn record;
``<runs root>/<run_id>/heartbeat.jsonl``
    the append-only history of heartbeats, for post-hoc rate plots.

``repro top`` (:mod:`repro.cli`) polls these files and renders a
refreshing terminal view -- from any terminal, with no connection to
the verifying process.  The same records are the obvious payload for
the ROADMAP's ``repro serve`` status endpoint.

Heartbeats are written only when a run-ledger context is active (CLI
entry points open one; library-level ``verify()`` calls in tests do
not), and can be disabled outright with ``REPRO_HEARTBEAT=0``.  The
writer is a null object when disabled, so call sites never branch.

Heartbeat record schema (``repro.heartbeat/1``)::

    {"schema": "repro.heartbeat/1", "run": ..., "kind": "sweep",
     "status": "running" | "done" | <terminal status>, "pid": ...,
     "total": ..., "done": ..., "elapsed": ..., "rate": ...,
     "eta_seconds": ..., "started": <epoch>, "updated": <epoch>,
     "counters": {...}, "info": {...}}

``total``/``done`` count sweep tasks (valuation batches) or fuzz
cases; ``eta_seconds`` extrapolates the observed rate over the
remaining count and is ``None`` until the first completion.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Mapping

from . import ledger

#: Version tag stamped on every heartbeat record.
HEARTBEAT_SCHEMA = "repro.heartbeat/1"

#: Root directory for per-run progress records; defaults to
#: ``<tempdir>/repro-runs`` so `repro top` finds runs with zero setup.
RUN_DIR_ENV = "REPRO_RUN_DIR"

#: Set to ``0`` to suppress heartbeat writing entirely.
HEARTBEAT_ENV = "REPRO_HEARTBEAT"

#: Minimum seconds between on-disk heartbeats (finish always writes).
DEFAULT_INTERVAL = 0.5


def runs_root() -> Path:
    override = os.environ.get(RUN_DIR_ENV, "").strip()
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / "repro-runs"


def run_dir(run_id: str) -> Path:
    return runs_root() / run_id


def heartbeats_enabled() -> bool:
    """Heartbeats are on by default; ``REPRO_HEARTBEAT=0`` disables."""
    return os.environ.get(HEARTBEAT_ENV, "").strip().lower() not in (
        "0", "false", "off", "no",
    )


class NullProgress:
    """The do-nothing stand-in used when heartbeats are off."""

    enabled = False

    def advance(self, n: int = 1, **counters) -> None:
        pass

    def add_counters(self, extra: Mapping) -> None:
        pass

    def set_info(self, **fields) -> None:
        pass

    def tick(self, force: bool = False) -> None:
        pass

    def reset(self) -> None:
        pass

    def finish(self, status: str = "done") -> None:
        pass


class ProgressPlane(NullProgress):
    """Writes rate-limited heartbeats for one run to the runs root.

    Single-writer by design: the driver process owns it and folds in
    worker outcomes as they arrive on the result queue, so no
    cross-process coordination is needed beyond the atomic replace.
    """

    enabled = True

    def __init__(self, run_id: str, kind: str, total: int | None,
                 interval: float = DEFAULT_INTERVAL) -> None:
        self.run_id = run_id
        self.kind = kind
        self.total = total
        self.done = 0
        self.counters: dict[str, float] = {}
        self.info: dict = {}
        self.started = time.time()
        self._last_write = 0.0
        self.interval = interval
        self.directory = run_dir(run_id)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.tick(force=True)

    def advance(self, n: int = 1, **counters) -> None:
        """Record *n* finished work items (plus counter deltas)."""
        self.done += n
        for name, value in counters.items():
            if value:
                self.counters[name] = self.counters.get(name, 0) + value
        self.tick()

    def add_counters(self, extra: Mapping) -> None:
        """Fold a flat counter-delta mapping (a worker's) into the view."""
        for name, value in extra.items():
            if value:
                self.counters[name] = self.counters.get(name, 0) + value

    def set_info(self, **fields) -> None:
        """Attach static context (spec path, workers, graph size, ...)."""
        self.info.update(
            {k: v for k, v in fields.items() if v is not None})

    def reset(self) -> None:
        """Start progress over (pool-broken -> sequential fallback)."""
        self.done = 0
        self.counters.clear()
        self.started = time.time()
        self.tick(force=True)

    def _record(self, status: str) -> dict:
        now = time.time()
        elapsed = max(now - self.started, 1e-9)
        rate = self.done / elapsed if self.done else None
        eta = None
        if (status == "running" and rate and self.total is not None
                and self.total > self.done):
            eta = (self.total - self.done) / rate
        return {
            "schema": HEARTBEAT_SCHEMA,
            "run": self.run_id,
            "kind": self.kind,
            "status": status,
            "pid": os.getpid(),
            "total": self.total,
            "done": self.done,
            "elapsed": elapsed,
            "rate": rate,
            "eta_seconds": eta,
            "started": self.started,
            "updated": now,
            "counters": dict(sorted(self.counters.items())),
            "info": self.info,
        }

    def _write(self, record: dict) -> None:
        payload = json.dumps(record, separators=(",", ":"), default=str)
        target = self.directory / "progress.json"
        tmp = self.directory / "progress.json.tmp"
        try:
            tmp.write_text(payload)
            os.replace(tmp, target)
            with open(self.directory / "heartbeat.jsonl", "a") as fh:
                fh.write(payload + "\n")
        except OSError:  # progress is best-effort; never fail the run
            pass
        self._last_write = time.time()

    def tick(self, force: bool = False) -> None:
        """Write a heartbeat if the rate-limit interval has elapsed."""
        if force or time.time() - self._last_write >= self.interval:
            self._write(self._record("running"))

    def finish(self, status: str = "done") -> None:
        """Write the final heartbeat (always, ignoring the interval)."""
        self._write(self._record(status))


#: Shared null instance; factories return it when heartbeats are off.
NULL_PROGRESS = NullProgress()


def _make(kind: str, total: int | None) -> NullProgress:
    run_id = ledger.current_run_id()
    if run_id is None or not heartbeats_enabled():
        return NULL_PROGRESS
    try:
        return ProgressPlane(run_id, kind, total)
    except OSError:  # unwritable runs root: degrade, don't fail
        return NULL_PROGRESS


def sweep_progress(total_tasks: int | None) -> NullProgress:
    """Progress writer for a valuation sweep (driver side)."""
    return _make("sweep", total_tasks)


def campaign_progress(total_cases: int | None) -> NullProgress:
    """Progress writer for a fuzz campaign."""
    return _make("fuzz", total_cases)


# ---------------------------------------------------------------------------
# reader side (`repro top`)


def read_progress(run_id: str) -> dict | None:
    """The latest heartbeat of *run_id*, or ``None``."""
    try:
        return json.loads((run_dir(run_id) / "progress.json").read_text())
    except (OSError, ValueError):
        return None


def list_runs() -> list[dict]:
    """Latest heartbeat of every run under the runs root, newest first."""
    root = runs_root()
    if not root.is_dir():
        return []
    records = []
    for entry in root.iterdir():
        record = read_progress(entry.name)
        if record is not None:
            records.append(record)
    records.sort(key=lambda r: r.get("updated", 0), reverse=True)
    return records


def latest_run() -> str | None:
    """The most recently updated run id, or ``None``."""
    records = list_runs()
    return records[0]["run"] if records else None


def _bar(done: int, total: int | None, width: int = 30) -> str:
    if not total:
        return "-" * width
    filled = min(width, int(width * done / total))
    return "#" * filled + "-" * (width - filled)


def render_progress(record: Mapping) -> str:
    """One heartbeat as the multi-line text block ``repro top`` shows."""
    total = record.get("total")
    done = record.get("done", 0)
    pct = f"{100 * done / total:5.1f}%" if total else "    ?"
    eta = record.get("eta_seconds")
    rate = record.get("rate")
    age = time.time() - record.get("updated", time.time())
    lines = [
        f"run {record.get('run')}  [{record.get('kind')}]  "
        f"{record.get('status')}  pid {record.get('pid')}"
        + (f"  (stale {age:.0f}s)" if age > 5 else ""),
        f"  [{_bar(done, total)}] {pct}  {done}/{total if total else '?'}"
        f"  elapsed {record.get('elapsed', 0):.1f}s"
        + (f"  rate {rate:.1f}/s" if rate else "")
        + (f"  eta {eta:.0f}s" if eta is not None else ""),
    ]
    info = record.get("info") or {}
    if info:
        pairs = "  ".join(f"{k}={v}" for k, v in sorted(info.items()))
        lines.append(f"  {pairs}")
    counters = record.get("counters") or {}
    if counters:
        pairs = "  ".join(f"{k}={v}" for k, v in sorted(counters.items()))
        lines.append(f"  {pairs}")
    return "\n".join(lines)
