"""Recursive-descent parser for the paper's FO surface syntax.

Grammar (FO layer)::

    formula   := 'exists' vars ':' formula
               | 'forall' vars ':' formula
               | iff
    iff       := implies ('<->' implies)*
    implies   := or ('->' implies)?            (right associative)
    or        := and (('|' | 'or') and)*
    and       := unary (('&' | 'and') unary)*
    unary     := ('~' | 'not') unary | primary
    primary   := 'true' | 'false' | '(' formula ')' | atom | equality
    atom      := relref '(' terms? ')' | relref      (arity-0 proposition)
    relref    := ['?' | '!'] dotted_ident
    equality  := term ('=' | '!=') term
    term      := ident | string | integer

The in-queue sigil ``?`` and out-queue sigil ``!`` follow the paper's
notation.  In a *peer-local* formula the sigil resolves to the bare queue
name.  In a *composition-level* formula a queue atom is written
``Peer.?queue`` / ``Peer.!queue`` (the paper writes ``O.?apply``); the
qualified name keeps the peer prefix.  When a schema is supplied, atoms are
validated: the relation must exist, the arity must match, and the sigil (if
any) must agree with the relation's role.

Bare identifiers in term position are variables; quoted strings and integer
literals are constants.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import ParseError, SchemaError
from .formulas import (
    Atom, Formula, conj, disj, eq, exists, forall, implies, neg,
    FALSE, TRUE,
)
from .schema import RelationKind, Schema
from .terms import Const, Term, Var

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<string>"[^"]*"|'[^']*')
  | (?P<number>-?\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_?!][A-Za-z0-9_]*)*)
  | (?P<op><->|->|!=|[()~&|=:,.?!])
""", re.VERBOSE)

_KEYWORDS = frozenset({
    "true", "false", "not", "and", "or", "exists", "forall",
})


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with its source position."""

    kind: str    # 'string' | 'number' | 'ident' | 'op' | 'eof'
    text: str
    pos: int


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*; raises :class:`ParseError` on illegal characters."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(
                f"illegal character {text[pos]!r}", position=pos, text=text
            )
        kind = match.lastgroup
        assert kind is not None
        if kind != "ws":
            tokens.append(Token(kind, match.group(), pos))
        pos = match.end()
    tokens.append(Token("eof", "", len(text)))
    return tokens


class ParserBase:
    """Shared token-stream plumbing for the FO and LTL-FO parsers."""

    def __init__(self, text: str, schema: Schema | None = None) -> None:
        self.text = text
        self.schema = schema
        self.tokens = tokenize(text)
        self.index = 0

    # -- stream helpers ---------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        i = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def advance(self) -> Token:
        tok = self.tokens[self.index]
        if tok.kind != "eof":
            self.index += 1
        return tok

    def accept(self, text: str) -> bool:
        if self.peek().text == text and self.peek().kind != "string":
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        tok = self.peek()
        if tok.text != text or tok.kind == "string":
            raise ParseError(
                f"expected {text!r}, found {tok.text!r}",
                position=tok.pos, text=self.text,
            )
        return self.advance()

    def error(self, message: str) -> ParseError:
        tok = self.peek()
        return ParseError(message, position=tok.pos, text=self.text)

    # -- shared FO productions --------------------------------------------

    def parse_var_list(self) -> list[Var]:
        names: list[str] = []
        while True:
            tok = self.peek()
            if tok.kind != "ident" or tok.text in _KEYWORDS:
                raise self.error("expected variable name")
            if "." in tok.text:
                raise self.error(
                    f"variable name {tok.text!r} may not contain '.'"
                )
            names.append(self.advance().text)
            if not self.accept(","):
                break
        if not self.accept(":"):
            self.expect(".")
        return [Var(n) for n in names]

    def parse_term(self) -> Term:
        tok = self.peek()
        if tok.kind == "string":
            self.advance()
            return Const(tok.text[1:-1])
        if tok.kind == "number":
            self.advance()
            return Const(int(tok.text))
        if tok.kind == "ident" and tok.text not in _KEYWORDS:
            if "." in tok.text:
                raise self.error(
                    f"dotted name {tok.text!r} cannot be a term"
                )
            self.advance()
            return Var(tok.text)
        raise self.error(f"expected a term, found {tok.text!r}")

    def _resolve_relref(self, raw: str) -> str:
        """Normalize a relation reference, validating sigils and schema.

        ``raw`` may contain the sigils ``?`` (in-queue) / ``!`` (out-queue)
        either at the front (peer-local: ``?apply``) or after the peer
        qualifier (composition: ``O.?apply``).
        """
        sigil = None
        if raw and raw[0] in "?!":
            sigil = raw[0]
            raw = raw[1:]
        parts = raw.split(".")
        cleaned: list[str] = []
        for part in parts:
            if part and part[0] in "?!":
                if sigil is not None:
                    raise ParseError(f"multiple queue sigils in {raw!r}")
                sigil = part[0]
                part = part[1:]
            if not part:
                raise ParseError(f"malformed relation reference {raw!r}")
            cleaned.append(part)
        name = ".".join(cleaned)
        if self.schema is not None:
            sym = self.schema.get(name)
            if sym is None:
                raise SchemaError(
                    f"unknown relation {name!r} in formula "
                    f"(known: {', '.join(self.schema.names())})"
                )
            if sigil == "?" and sym.kind != RelationKind.IN_QUEUE:
                raise SchemaError(
                    f"{name!r} used with '?' but is not an in-queue"
                )
            if sigil == "!" and sym.kind != RelationKind.OUT_QUEUE:
                raise SchemaError(
                    f"{name!r} used with '!' but is not an out-queue"
                )
        return name

    def parse_atom_or_equality(self) -> Formula:
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("?", "!"):
            # sigil as its own token: '?' ident
            self.advance()
            ident = self.peek()
            if ident.kind != "ident":
                raise self.error("expected relation name after queue sigil")
            self.advance()
            return self._finish_atom(tok.text + ident.text)
        if tok.kind == "ident" and tok.text not in _KEYWORDS:
            # Could be an atom R(...), a proposition R, or term of equality.
            nxt = self.peek(1)
            if nxt.text == "(" or "." in tok.text:
                self.advance()
                return self._finish_atom(tok.text)
            if nxt.text in ("=", "!="):
                left = self.parse_term()
                op = self.advance().text
                right = self.parse_term()
                base = eq(left, right)
                return base if op == "=" else neg(base)
            # bare identifier: arity-0 proposition
            self.advance()
            return self._finish_atom(tok.text)
        # constant on the left of an equality
        left = self.parse_term()
        op_tok = self.peek()
        if op_tok.text not in ("=", "!="):
            raise self.error("expected '=' or '!=' after constant term")
        self.advance()
        right = self.parse_term()
        base = eq(left, right)
        return base if op_tok.text == "=" else neg(base)

    def _finish_atom(self, raw: str) -> Formula:
        name = self._resolve_relref(raw)
        terms: list[Term] = []
        if self.accept("("):
            if not self.accept(")"):
                terms.append(self.parse_term())
                while self.accept(","):
                    terms.append(self.parse_term())
                self.expect(")")
        if self.schema is not None:
            sym = self.schema[name]
            if sym.arity != len(terms):
                raise SchemaError(
                    f"relation {name!r} has arity {sym.arity}, "
                    f"used with {len(terms)} terms"
                )
        return Atom(name, tuple(terms))


class FOParser(ParserBase):
    """Parser for plain FO formulas."""

    def parse(self) -> Formula:
        formula = self.parse_formula()
        if self.peek().kind != "eof":
            raise self.error(
                f"unexpected trailing input {self.peek().text!r}"
            )
        return formula

    def parse_formula(self) -> Formula:
        if self.accept("exists"):
            variables = self.parse_var_list()
            return exists(variables, self.parse_formula())
        if self.accept("forall"):
            variables = self.parse_var_list()
            return forall(variables, self.parse_formula())
        return self.parse_iff()

    def parse_iff(self) -> Formula:
        left = self.parse_implies()
        while self.accept("<->"):
            right = self.parse_implies()
            left = conj(implies(left, right), implies(right, left))
        return left

    def parse_implies(self) -> Formula:
        left = self.parse_or()
        if self.accept("->"):
            return implies(left, self.parse_implies())
        return left

    def parse_or(self) -> Formula:
        parts = [self.parse_and()]
        while self.accept("|") or self.accept("or"):
            parts.append(self.parse_and())
        return disj(*parts) if len(parts) > 1 else parts[0]

    def parse_and(self) -> Formula:
        parts = [self.parse_unary()]
        while self.accept("&") or self.accept("and"):
            parts.append(self.parse_unary())
        return conj(*parts) if len(parts) > 1 else parts[0]

    def parse_unary(self) -> Formula:
        if self.accept("~") or self.accept("not"):
            return neg(self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Formula:
        if self.accept("true"):
            return TRUE
        if self.accept("false"):
            return FALSE
        if self.accept("("):
            inner = self.parse_formula()
            self.expect(")")
            # Allow a quantified/parenthesized formula to be the left side
            # of nothing further; equality on parens is not supported.
            return inner
        if self.accept("exists"):
            # quantifier scope extends as far right as possible
            variables = self.parse_var_list()
            return exists(variables, self.parse_formula())
        if self.accept("forall"):
            variables = self.parse_var_list()
            return forall(variables, self.parse_formula())
        return self.parse_atom_or_equality()


def parse_fo(text: str, schema: Schema | None = None) -> Formula:
    """Parse an FO formula, optionally validating against *schema*."""
    return FOParser(text, schema).parse()
