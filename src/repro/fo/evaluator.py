"""Active-domain evaluation of FO formulas over relational instances.

The paper evaluates rule bodies and property sub-formulas over the current
configuration, with quantifiers ranging over the data domain.  Because
configurations are finite, evaluation over the *relevant finite domain*
(the verification domain, or the active domain plus mentioned constants) is
exact.

Two entry points:

* :func:`evaluate` -- truth of a formula under a full binding of its free
  variables;
* :func:`answers` -- the set of tuples for a head variable list that make a
  rule body true (used to fire input/state/action/send rules).

The implementation computes *satisfying-binding sets* recursively.  For a
formula ``phi`` and a partial environment ``env``, ``sat_set`` returns the
set of bindings of ``free_vars(phi) \\ dom(env)`` under which ``phi`` holds.
Conjunction joins child binding sets; negation and universal quantification
enumerate their unbound variables over the domain (sound and complete for
finite domains; efficient for the guarded formulas that input-bounded
specifications produce, where negations have few unbound variables).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Mapping, Sequence

from ..errors import FormulaError
from ..obs import PHASE_FO_EVAL, counter, phase
from .formulas import (
    And, Atom, Eq, Exists, Forall, Formula, FalseF, Implies, Not, Or, TrueF,
    constants, free_vars,
)
from .instance import Instance
from .terms import Const, Term, Value, Var, value_sort_key

#: A (partial) variable binding, keyed by variable name.
Env = dict[str, Value]
#: Hashable form of a binding, for deduplication.
FrozenEnv = frozenset[tuple[str, Value]]


def _freeze(env: Env) -> FrozenEnv:
    return frozenset(env.items())


def _thaw(frozen: FrozenEnv) -> Env:
    return dict(frozen)


def _resolve(term: Term, env: Env) -> Value | None:
    """Value of *term* under *env*, or None for an unbound variable."""
    if isinstance(term, Const):
        return term.value
    return env.get(term.name)


#: Relations smaller than this are scanned directly; building a hash
#: index only pays off once the scan itself is non-trivial.
_INDEX_MIN_ROWS = 5


def _match_atom(a: Atom, inst: Instance, env: Env) -> set[FrozenEnv]:
    """Bindings of the atom's unbound variables matching rows of *inst*."""
    out: set[FrozenEnv] = set()
    rows: Iterable = inst[a.rel]
    if len(rows) >= _INDEX_MIN_ROWS:
        # probe the per-instance hash index on the bound positions
        # instead of scanning the full extension
        positions: list[int] = []
        key: list[Value] = []
        for i, term in enumerate(a.terms):
            value = (term.value if isinstance(term, Const)
                     else env.get(term.name))
            if value is not None:
                positions.append(i)
                key.append(value)
        if positions:
            try:
                rows = inst.rows_matching(a.rel, tuple(positions),
                                          tuple(key))
            except IndexError:
                rows = inst[a.rel]  # arity clash: let the scan report it
    for row in rows:
        if len(row) != len(a.terms):
            raise FormulaError(
                f"atom {a} does not match arity of stored rows ({len(row)})"
            )
        local: Env = {}
        ok = True
        for term, value in zip(a.terms, row):
            if isinstance(term, Const):
                if term.value != value:
                    ok = False
                    break
            else:
                bound = env.get(term.name, local.get(term.name))
                if bound is None:
                    local[term.name] = value
                elif bound != value:
                    ok = False
                    break
        if ok:
            out.add(_freeze(local))
    return out


def _extend_all(bindings: set[FrozenEnv], missing: Sequence[str],
                domain: Sequence[Value]) -> set[FrozenEnv]:
    """Extend each binding with every assignment of *missing* over *domain*."""
    if not missing:
        return bindings
    out: set[FrozenEnv] = set()
    for frozen in bindings:
        base = _thaw(frozen)
        for combo in itertools.product(domain, repeat=len(missing)):
            ext = dict(base)
            ext.update(zip(missing, combo))
            out.add(_freeze(ext))
    return out


def _conjunct_rank(child: Formula, inst: Instance) -> tuple[int, int]:
    """Sort key for conjunct evaluation order (selectivity heuristic).

    Constants and groundable equalities first, then atoms by ascending
    extension size, then the remaining positive connectives, and
    negation-like children last (their enumeration shrinks with every
    variable already bound).  A variable-variable equality sorts with
    the positive connectives, not first: with neither side bound it
    enumerates the whole domain.
    """
    if isinstance(child, (TrueF, FalseF)):
        return (0, 0)
    if isinstance(child, Eq):
        if isinstance(child.left, Const) or isinstance(child.right, Const):
            return (0, 1)
        return (2, 0)
    if isinstance(child, Atom):
        return (1, len(inst[child.rel]))
    if isinstance(child, (Not, Forall, Implies)):
        return (3, 0)
    return (2, 1)


def sat_set(formula: Formula, inst: Instance, domain: Sequence[Value],
            env: Env | None = None) -> set[FrozenEnv]:
    """Bindings of the unbound free variables under which *formula* holds.

    ``env`` binds some of the formula's free variables; each returned
    binding covers exactly ``free_vars(formula)`` minus the bound ones.
    """
    env = env or {}

    if isinstance(formula, TrueF):
        return {frozenset()}
    if isinstance(formula, FalseF):
        return set()

    if isinstance(formula, Atom):
        return _match_atom(formula, inst, env)

    if isinstance(formula, Eq):
        lv = _resolve(formula.left, env)
        rv = _resolve(formula.right, env)
        if lv is not None and rv is not None:
            return {frozenset()} if lv == rv else set()
        if lv is not None:
            assert isinstance(formula.right, Var)
            return {_freeze({formula.right.name: lv})}
        if rv is not None:
            assert isinstance(formula.left, Var)
            return {_freeze({formula.left.name: rv})}
        assert isinstance(formula.left, Var)
        assert isinstance(formula.right, Var)
        if formula.left.name == formula.right.name:
            return {_freeze({formula.left.name: v}) for v in domain}
        return {
            _freeze({formula.left.name: v, formula.right.name: v})
            for v in domain
        }

    if isinstance(formula, Not):
        unbound = sorted(
            v.name for v in free_vars(formula.body) if v.name not in env
        )
        out: set[FrozenEnv] = set()
        for combo in itertools.product(domain, repeat=len(unbound)):
            full = dict(env)
            full.update(zip(unbound, combo))
            if not sat_set(formula.body, inst, domain, full):
                out.add(_freeze(dict(zip(unbound, combo))))
        return out

    if isinstance(formula, And):
        result: set[FrozenEnv] = {frozenset()}
        # Selectivity-ordered join: cheap binding producers first, then
        # atoms by ascending extension size, negation-like children last
        # so they see their variables bound (efficiency only; correctness
        # is independent of order because every child is evaluated under
        # all join contexts).
        ordered = sorted(
            formula.children,
            key=lambda c: _conjunct_rank(c, inst),
        )
        for child in ordered:
            next_result: set[FrozenEnv] = set()
            for frozen in result:
                ctx = dict(env)
                ctx.update(_thaw(frozen))
                for extra in sat_set(child, inst, domain, ctx):
                    merged = _thaw(frozen)
                    merged.update(_thaw(extra))
                    next_result.add(_freeze(merged))
            result = next_result
            if not result:
                return set()
        return result

    if isinstance(formula, Or):
        all_free = sorted(
            v.name for v in free_vars(formula) if v.name not in env
        )
        out = set()
        for child in formula.children:
            child_sat = sat_set(child, inst, domain, env)
            covered = {
                v.name for v in free_vars(child) if v.name not in env
            }
            missing = [v for v in all_free if v not in covered]
            out |= _extend_all(child_sat, missing, domain)
        return out

    if isinstance(formula, Implies):
        rewritten = Or((Not(formula.antecedent), formula.consequent))
        return sat_set(rewritten, inst, domain, env)

    if isinstance(formula, Exists):
        bound_names = {v.name for v in formula.variables}
        # quantified variables shadow any outer binding of the same name
        inner_env = {k: v for k, v in env.items() if k not in bound_names}
        body_sat = sat_set(formula.body, inst, domain, inner_env)
        out = set()
        for frozen in body_sat:
            kept = {
                name: val for name, val in _thaw(frozen).items()
                if name not in bound_names
            }
            out.add(_freeze(kept))
        return out

    if isinstance(formula, Forall):
        rewritten = Not(Exists(formula.variables, Not(formula.body)))
        return sat_set(rewritten, inst, domain, env)

    raise FormulaError(f"not an FO formula: {formula!r}")


def evaluate(formula: Formula, inst: Instance, domain: Sequence[Value],
             env: Mapping[str, Value] | None = None) -> bool:
    """Truth of *formula* over *inst* with quantifiers ranging over *domain*.

    Every free variable of the formula must be bound by *env*.
    """
    env = dict(env or {})
    unbound = [v.name for v in free_vars(formula) if v.name not in env]
    if unbound:
        raise FormulaError(
            f"evaluate() requires all free variables bound; "
            f"missing {sorted(unbound)} in {formula}"
        )
    counter("fo.evaluate_calls").inc()
    with phase(PHASE_FO_EVAL):
        return bool(sat_set(formula, inst, domain, env))


def answers(formula: Formula, head: Sequence[Var],
            inst: Instance, domain: Sequence[Value],
            env: Mapping[str, Value] | None = None
            ) -> frozenset[tuple[Value, ...]]:
    """All tuples for the *head* variables under which *formula* holds.

    Head variables not constrained by the formula range over *domain*
    (active-domain semantics).  This is the rule-firing primitive: for a
    rule ``R(x̄) <- phi(x̄)`` the new rows of ``R`` are
    ``answers(phi, x̄, configuration, domain)``.
    """
    env = dict(env or {})
    counter("fo.answers_calls").inc()
    with phase(PHASE_FO_EVAL):
        sat = sat_set(formula, inst, domain, env)
    head_names = [v.name for v in head]
    covered = {v.name for v in free_vars(formula)} | set(env)
    missing = [n for n in head_names if n not in covered]
    sat = _extend_all(sat, missing, list(domain))
    out: set[tuple[Value, ...]] = set()
    for frozen in sat:
        binding = dict(env)
        binding.update(_thaw(frozen))
        out.add(tuple(binding[n] for n in head_names))
    return frozenset(out)


def evaluate_naive(formula: Formula, inst: Instance,
                   domain: Sequence[Value],
                   env: Mapping[str, Value] | None = None) -> bool:
    """Reference brute-force evaluator (used by tests as ground truth).

    Enumerates quantifier assignments directly from the textbook semantics;
    exponential, but unambiguous.
    """
    env = dict(env or {})

    def ev(f: Formula, e: Env) -> bool:
        if isinstance(f, TrueF):
            return True
        if isinstance(f, FalseF):
            return False
        if isinstance(f, Atom):
            row = []
            for t in f.terms:
                v = _resolve(t, e)
                if v is None:
                    raise FormulaError(f"unbound variable in {f}")
                row.append(v)
            return tuple(row) in inst[f.rel]
        if isinstance(f, Eq):
            lv, rv = _resolve(f.left, e), _resolve(f.right, e)
            if lv is None or rv is None:
                raise FormulaError(f"unbound variable in {f}")
            return lv == rv
        if isinstance(f, Not):
            return not ev(f.body, e)
        if isinstance(f, And):
            return all(ev(c, e) for c in f.children)
        if isinstance(f, Or):
            return any(ev(c, e) for c in f.children)
        if isinstance(f, Implies):
            return (not ev(f.antecedent, e)) or ev(f.consequent, e)
        if isinstance(f, Exists):
            names = [v.name for v in f.variables]
            return any(
                ev(f.body, {**e, **dict(zip(names, combo))})
                for combo in itertools.product(domain, repeat=len(names))
            )
        if isinstance(f, Forall):
            names = [v.name for v in f.variables]
            return all(
                ev(f.body, {**e, **dict(zip(names, combo))})
                for combo in itertools.product(domain, repeat=len(names))
            )
        raise FormulaError(f"not an FO formula: {f!r}")

    unbound = [v.name for v in free_vars(formula) if v.name not in env]
    if unbound:
        raise FormulaError(f"unbound free variables: {unbound}")
    return ev(formula, env)


def default_domain(formula: Formula, inst: Instance,
                   extra: Iterable[Value] = ()) -> tuple[Value, ...]:
    """The active domain of *inst* plus the formula's constants and *extra*.

    Sorted deterministically so evaluation is reproducible.
    """
    dom = set(inst.active_domain())
    dom |= set(constants(formula))
    dom |= set(extra)
    return tuple(sorted(dom, key=value_sort_key))
