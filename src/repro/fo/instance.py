"""Immutable relational instances.

An :class:`Instance` maps relation names to finite sets of tuples of domain
values.  Instances are hashable (so configurations built from them can be
used in visited sets during model checking) and support the small relational
vocabulary the rest of the library needs: union, update, projection of the
active domain, and convenient construction.

Propositional relations (arity 0) are stored as either the empty set
(false) or the set containing the empty tuple (true).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..errors import SchemaError
from ..obs import counter
from .schema import RelationSymbol, Schema
from .terms import Value, is_value, value_sort_key

#: One row of a relation.
Row = tuple[Value, ...]
#: The extension of a relation.
Rows = frozenset[Row]

TRUE_ROWS: Rows = frozenset({()})
FALSE_ROWS: Rows = frozenset()


def _freeze_rows(name: str, arity: int | None, rows: Iterable[Iterable[Value]]
                 ) -> Rows:
    frozen: set[Row] = set()
    for row in rows:
        tup = tuple(row)
        for v in tup:
            if not is_value(v):
                raise SchemaError(
                    f"relation {name!r}: {v!r} is not a legal domain value"
                )
        if arity is not None and len(tup) != arity:
            raise SchemaError(
                f"relation {name!r} has arity {arity}, got row of "
                f"length {len(tup)}: {tup!r}"
            )
        frozen.add(tup)
    return frozenset(frozen)


class Instance:
    """An immutable mapping from relation names to sets of rows.

    When constructed with a :class:`Schema`, row arities are validated and
    every schema relation is present (defaulting to empty).  Without a
    schema, the instance is free-form (used for intermediate views).
    """

    __slots__ = ("_data", "_hash", "_indexes")

    @classmethod
    def _from_frozen(cls, data: dict) -> "Instance":
        """Internal fast path: *data* maps names to ``Rows`` already.

        Skips re-freezing/validation; callers must pass frozensets of
        tuples only.  Used on the hot paths of the runtime.
        """
        self = cls.__new__(cls)
        self._data = dict(sorted(data.items()))
        self._hash = None
        self._indexes = None
        return self

    def __init__(self,
                 data: Mapping[str, Iterable[Iterable[Value]]] | None = None,
                 schema: Schema | None = None) -> None:
        table: dict[str, Rows] = {}
        data = dict(data or {})
        if schema is not None:
            unknown = set(data) - set(schema.names())
            if unknown:
                raise SchemaError(
                    f"instance mentions relations not in schema: "
                    f"{sorted(unknown)}"
                )
            for sym in schema:
                rows = data.get(sym.qualified_name, ())
                table[sym.qualified_name] = _freeze_rows(
                    sym.qualified_name, sym.arity, rows
                )
        else:
            for name, rows in data.items():
                table[name] = _freeze_rows(name, None, rows)
        self._data: Mapping[str, Rows] = dict(sorted(table.items()))
        self._hash: int | None = None
        self._indexes: dict | None = None

    # -- pickling ---------------------------------------------------------

    def __getstate__(self) -> dict:
        # indexes are derived and the memoized hash is process-dependent
        # (string hashing is seeded per interpreter); ship neither
        return self._data

    def __setstate__(self, state: dict) -> None:
        self._data = state
        self._hash = None
        self._indexes = None

    # -- mapping protocol -----------------------------------------------

    def __getitem__(self, name: str) -> Rows:
        return self._data.get(name, FALSE_ROWS)

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def relations(self) -> tuple[str, ...]:
        """Names of all relations explicitly present, sorted."""
        return tuple(self._data)

    def items(self) -> Iterator[tuple[str, Rows]]:
        return iter(self._data.items())

    # -- equality / hashing ----------------------------------------------

    def _canonical(self) -> tuple[tuple[str, Rows], ...]:
        """Name/rows pairs with empty relations dropped (for comparison)."""
        return tuple((n, r) for n, r in self._data.items() if r)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self._canonical() == other._canonical()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._canonical())
        return self._hash

    # -- queries -----------------------------------------------------------

    def truth(self, name: str) -> bool:
        """Truth value of a propositional (arity-0) relation."""
        return bool(self._data.get(name, FALSE_ROWS))

    def is_empty(self, name: str) -> bool:
        """True iff relation *name* has no rows."""
        return not self._data.get(name, FALSE_ROWS)

    def rows_matching(self, name: str, positions: tuple[int, ...],
                      key: tuple[Value, ...]) -> tuple[Row, ...]:
        """Rows of *name* whose values at *positions* equal *key*.

        Served from a lazily built hash index on the bound positions
        (instances are immutable, so the index never invalidates).  The
        index replaces the atom matcher's full scan with one dict
        lookup; the build is linear in the relation and paid once per
        (relation, position-set) per instance.  Raises ``IndexError``
        when some row is shorter than a requested position -- callers
        fall back to the scanning path, which reports the arity clash.
        """
        if self._indexes is None:
            self._indexes = {}
        index = self._indexes.get((name, positions))
        if index is None:
            buckets: dict = {}
            for row in self._data.get(name, FALSE_ROWS):
                k = tuple(row[p] for p in positions)
                bucket = buckets.get(k)
                if bucket is None:
                    buckets[k] = [row]
                else:
                    bucket.append(row)
            index = {k: tuple(rows) for k, rows in buckets.items()}
            self._indexes[(name, positions)] = index
            counter("fo.index_builds").inc()
        return index.get(key, ())

    def active_domain(self) -> frozenset[Value]:
        """All values occurring in any row of any relation."""
        dom: set[Value] = set()
        for rows in self._data.values():
            for row in rows:
                dom.update(row)
        return frozenset(dom)

    def total_rows(self) -> int:
        """Total number of rows across all relations."""
        return sum(len(rows) for rows in self._data.values())

    # -- construction helpers ------------------------------------------------

    def updated(self, name: str, rows: Iterable[Iterable[Value]]
                ) -> "Instance":
        """A copy with relation *name* replaced by *rows*."""
        data = dict(self._data)
        data[name] = _freeze_rows(name, None, rows)
        return Instance._from_frozen(data)

    def with_truth(self, name: str, value: bool) -> "Instance":
        """A copy with propositional relation *name* set to *value*."""
        return self.updated(name, TRUE_ROWS if value else FALSE_ROWS)

    def merged(self, other: "Instance") -> "Instance":
        """A copy including *other*'s relations (other wins on collision)."""
        data = dict(self._data)
        data.update(other._data)
        return Instance._from_frozen(data)

    def restricted(self, names: Iterable[str]) -> "Instance":
        """A copy keeping only the relations in *names*."""
        wanted = set(names)
        return Instance._from_frozen(
            {n: r for n, r in self._data.items() if n in wanted}
        )

    def qualified(self, owner: str) -> "Instance":
        """A copy with every relation name prefixed ``owner.``."""
        return Instance._from_frozen(
            {f"{owner}.{n}": r for n, r in self._data.items()}
        )

    def __repr__(self) -> str:
        parts = []
        for name, rows in self._data.items():
            if not rows:
                continue
            shown = sorted(rows, key=lambda t: tuple(map(value_sort_key, t)))
            parts.append(f"{name}={shown}")
        return f"Instance({', '.join(parts)})"


EMPTY_INSTANCE = Instance()


def empty_instance(schema: Schema) -> Instance:
    """An instance with every relation of *schema* empty."""
    return Instance({}, schema=schema)


def validate_against(instance: Instance, schema: Schema) -> None:
    """Raise :class:`SchemaError` unless *instance* fits *schema*."""
    for name in instance.relations():
        sym = schema.get(name)
        if sym is None:
            raise SchemaError(f"relation {name!r} not in schema")
        for row in instance[name]:
            if len(row) != sym.arity:
                raise SchemaError(
                    f"relation {name!r}: row {row!r} does not match "
                    f"arity {sym.arity}"
                )


def singleton(sym: RelationSymbol, row: Iterable[Value]) -> Instance:
    """An instance where *sym* holds exactly one row."""
    return Instance({sym.qualified_name: [tuple(row)]})
