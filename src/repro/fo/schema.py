"""Relational schemas for peers and compositions.

A peer schema (Definition 2.1) partitions its relation symbols into
database, state, input, action, in-queue and out-queue relations, with queue
relations further split into *flat* and *nested*.  The schema also carries
the derived symbols the paper introduces:

* ``prev_I`` for every input relation ``I`` (the most recent non-empty input);
* the propositional queue state ``empty_Q`` for every in-queue ``Q``;
* the propositional error flag ``error_Q`` for every flat out-queue ``Q``
  under the *deterministic send* semantics of Theorem 3.8;
* the propositional ``received_Q`` shorthand of Section 5 for in-queues; and
* the propositional ``move_W`` / ``move_ENV`` symbols of the composition
  schema (Section 3).

Relation names must be unique within a scope.  Composition schemas qualify
every peer relation as ``Peer.relation``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from ..errors import SchemaError


class RelationKind(enum.Enum):
    """The part of a peer/composition schema a relation belongs to."""

    DATABASE = "database"
    STATE = "state"
    INPUT = "input"
    ACTION = "action"
    IN_QUEUE = "in_queue"
    OUT_QUEUE = "out_queue"
    PREV_INPUT = "prev_input"
    QUEUE_STATE = "queue_state"      # empty_Q, propositional
    ERROR_FLAG = "error_flag"        # error_Q, propositional (Theorem 3.8)
    RECEIVED_FLAG = "received_flag"  # received_Q, propositional (Section 5)
    MOVE = "move"                    # move_W / move_ENV, propositional


#: Kinds whose atoms may bind quantified variables under input-boundedness
#: (inputs, previous inputs and *flat* queue relations -- see Section 3.1).
INPUT_LIKE_KINDS = frozenset({
    RelationKind.INPUT,
    RelationKind.PREV_INPUT,
})

#: Propositional (arity-0) bookkeeping kinds derived from the schema.
DERIVED_KINDS = frozenset({
    RelationKind.PREV_INPUT,
    RelationKind.QUEUE_STATE,
    RelationKind.ERROR_FLAG,
    RelationKind.RECEIVED_FLAG,
    RelationKind.MOVE,
})


@dataclass(frozen=True, slots=True)
class RelationSymbol:
    """A named relation with an arity, a kind, and queue attributes.

    ``nested`` is meaningful only for queue relations and distinguishes
    nested queues (set-valued messages) from flat queues (single-tuple
    messages).  ``owner`` names the peer the relation belongs to, or ``None``
    for unqualified/peer-local symbols.
    """

    name: str
    arity: int
    kind: RelationKind
    nested: bool = False
    owner: str | None = None

    def __post_init__(self) -> None:
        if self.arity < 0:
            raise SchemaError(f"negative arity for relation {self.name!r}")
        if self.nested and self.kind not in (
            RelationKind.IN_QUEUE, RelationKind.OUT_QUEUE,
        ):
            raise SchemaError(
                f"relation {self.name!r}: only queues can be nested"
            )

    @property
    def qualified_name(self) -> str:
        """The composition-schema name, ``owner.name`` when owned."""
        if self.owner is None:
            return self.name
        return f"{self.owner}.{self.name}"

    @property
    def is_queue(self) -> bool:
        return self.kind in (RelationKind.IN_QUEUE, RelationKind.OUT_QUEUE)

    @property
    def is_flat_queue(self) -> bool:
        return self.is_queue and not self.nested

    @property
    def is_nested_queue(self) -> bool:
        return self.is_queue and self.nested

    def qualify(self, owner: str) -> "RelationSymbol":
        """Return a copy of this symbol owned by *owner*."""
        return RelationSymbol(self.name, self.arity, self.kind,
                              self.nested, owner)

    def __str__(self) -> str:
        return f"{self.qualified_name}/{self.arity}[{self.kind.value}]"


class Schema:
    """An immutable collection of relation symbols with unique names.

    Lookup is by the name used in formulas: the bare name for peer-local
    schemas, the qualified ``Peer.relation`` name for composition schemas.
    """

    def __init__(self, symbols: Iterable[RelationSymbol] = ()) -> None:
        table: dict[str, RelationSymbol] = {}
        for sym in symbols:
            key = sym.qualified_name
            if key in table:
                raise SchemaError(f"duplicate relation name {key!r}")
            table[key] = sym
        self._table: Mapping[str, RelationSymbol] = dict(
            sorted(table.items())
        )

    def __contains__(self, name: str) -> bool:
        return name in self._table

    def __getitem__(self, name: str) -> RelationSymbol:
        try:
            return self._table[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __iter__(self) -> Iterator[RelationSymbol]:
        return iter(self._table.values())

    def __len__(self) -> int:
        return len(self._table)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._table == other._table

    def __hash__(self) -> int:
        return hash(tuple(self._table))

    def get(self, name: str) -> RelationSymbol | None:
        """Return the symbol named *name*, or None."""
        return self._table.get(name)

    def names(self) -> tuple[str, ...]:
        """All relation names, sorted."""
        return tuple(self._table)

    def of_kind(self, *kinds: RelationKind) -> tuple[RelationSymbol, ...]:
        """All symbols whose kind is one of *kinds*, in name order."""
        wanted = set(kinds)
        return tuple(s for s in self if s.kind in wanted)

    def merge(self, other: "Schema") -> "Schema":
        """Union of two schemas; names must not collide."""
        return Schema(list(self) + list(other))

    def restrict(self, names: Iterable[str]) -> "Schema":
        """Sub-schema containing exactly the given names."""
        wanted = set(names)
        missing = wanted - set(self._table)
        if missing:
            raise SchemaError(f"unknown relations: {sorted(missing)}")
        return Schema(s for s in self if s.qualified_name in wanted)

    def __repr__(self) -> str:
        return f"Schema({', '.join(str(s) for s in self)})"


# -- Derived-symbol naming conventions ---------------------------------------

PREV_PREFIX = "prev_"
EMPTY_PREFIX = "empty_"
ERROR_PREFIX = "error_"
RECEIVED_PREFIX = "received_"
MOVE_PREFIX = "move_"
ENVIRONMENT_NAME = "ENV"


def prev_name(input_name: str) -> str:
    """Name of the previous-input relation for input *input_name*."""
    if "." in input_name:
        owner, base = input_name.rsplit(".", 1)
        return f"{owner}.{PREV_PREFIX}{base}"
    return f"{PREV_PREFIX}{input_name}"


def empty_name(queue_name: str) -> str:
    """Name of the ``empty_Q`` queue-state proposition for queue *queue_name*."""
    if "." in queue_name:
        owner, base = queue_name.rsplit(".", 1)
        return f"{owner}.{EMPTY_PREFIX}{base}"
    return f"{EMPTY_PREFIX}{queue_name}"


def error_name(queue_name: str) -> str:
    """Name of the deterministic-send ``error_Q`` flag for queue *queue_name*."""
    if "." in queue_name:
        owner, base = queue_name.rsplit(".", 1)
        return f"{owner}.{ERROR_PREFIX}{base}"
    return f"{ERROR_PREFIX}{queue_name}"


def received_name(queue_name: str) -> str:
    """Name of the ``received_Q`` proposition of Section 5."""
    if "." in queue_name:
        owner, base = queue_name.rsplit(".", 1)
        return f"{owner}.{RECEIVED_PREFIX}{base}"
    return f"{RECEIVED_PREFIX}{queue_name}"


def move_name(peer_name: str) -> str:
    """Name of the ``move_W`` proposition of the composition schema."""
    return f"{MOVE_PREFIX}{peer_name}"
