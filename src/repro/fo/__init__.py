"""First-order logic substrate: terms, schemas, instances, formulas,
evaluation and parsing."""

from .terms import Const, Term, Value, Var, is_value, value_sort_key
from .schema import (
    ENVIRONMENT_NAME, RelationKind, RelationSymbol, Schema,
    empty_name, error_name, move_name, prev_name, received_name,
)
from .instance import Instance, Row, Rows, empty_instance, validate_against
from .formulas import (
    And, Atom, Eq, Exists, FalseF, Forall, Formula, Implies, Not, Or, TrueF,
    FALSE, TRUE, all_vars, atom, atoms, children, conj, constants, disj, eq,
    exists, forall, free_vars, implies, instantiate, is_existential_prenex,
    is_ground_atom, neg, relations, substitute, walk,
)
from .evaluator import answers, default_domain, evaluate, evaluate_naive
from .parser import FOParser, parse_fo, tokenize

__all__ = [
    "And", "Atom", "Const", "ENVIRONMENT_NAME", "Eq", "Exists", "FALSE",
    "FOParser", "FalseF", "Forall", "Formula", "Implies", "Instance", "Not",
    "Or", "RelationKind", "RelationSymbol", "Row", "Rows", "Schema", "TRUE",
    "Term", "TrueF", "Value", "Var", "all_vars", "answers", "atom", "atoms",
    "children", "conj", "constants", "default_domain", "disj", "empty_name",
    "empty_instance", "eq", "error_name", "evaluate", "evaluate_naive",
    "exists", "forall", "free_vars", "implies", "instantiate",
    "is_existential_prenex", "is_ground_atom", "is_value", "move_name",
    "neg", "parse_fo", "prev_name", "received_name", "relations",
    "substitute", "tokenize", "validate_against", "value_sort_key", "walk",
]
