"""First-order formula abstract syntax.

The FO fragment of the paper: relational atoms, equality atoms, Boolean
connectives, and quantifiers.  Formulas are immutable, hashable trees.

Construction helpers (:func:`conj`, :func:`disj`, ...) perform light
simplification (dropping ``true``/``false`` units) so generated formulas stay
readable; they never change semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator, Mapping, Union

from ..errors import FormulaError
from .terms import Const, Term, Value, Var

Formula = Union[
    "TrueF", "FalseF", "Atom", "Eq", "Not", "And", "Or", "Implies",
    "Exists", "Forall",
]


@dataclass(frozen=True, slots=True)
class TrueF:
    """The constant true formula."""

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True, slots=True)
class FalseF:
    """The constant false formula."""

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True, slots=True)
class Atom:
    """A relational atom ``R(t1, ..., tk)``.

    ``rel`` is the relation *name* as used for lookup in the enclosing
    scope (peer-local or qualified composition name).
    """

    rel: str
    terms: tuple[Term, ...] = ()

    def __str__(self) -> str:
        if not self.terms:
            return self.rel
        return f"{self.rel}({', '.join(map(str, self.terms))})"


@dataclass(frozen=True, slots=True)
class Eq:
    """An equality atom ``t1 = t2``."""

    left: Term
    right: Term

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True, slots=True)
class Not:
    """Negation."""

    body: Formula

    def __str__(self) -> str:
        return f"~({self.body})"


@dataclass(frozen=True, slots=True)
class And:
    """N-ary conjunction."""

    children: tuple[Formula, ...]

    def __str__(self) -> str:
        return "(" + " & ".join(map(str, self.children)) + ")"


@dataclass(frozen=True, slots=True)
class Or:
    """N-ary disjunction."""

    children: tuple[Formula, ...]

    def __str__(self) -> str:
        return "(" + " | ".join(map(str, self.children)) + ")"


@dataclass(frozen=True, slots=True)
class Implies:
    """Implication ``antecedent -> consequent``."""

    antecedent: Formula
    consequent: Formula

    def __str__(self) -> str:
        return f"({self.antecedent} -> {self.consequent})"


@dataclass(frozen=True, slots=True)
class Exists:
    """Existential quantification over one or more variables."""

    variables: tuple[Var, ...]
    body: Formula

    def __post_init__(self) -> None:
        if not self.variables:
            raise FormulaError("Exists with no variables")
        if len({v.name for v in self.variables}) != len(self.variables):
            raise FormulaError("Exists with repeated variables")

    def __str__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"exists {names}. ({self.body})"


@dataclass(frozen=True, slots=True)
class Forall:
    """Universal quantification over one or more variables."""

    variables: tuple[Var, ...]
    body: Formula

    def __post_init__(self) -> None:
        if not self.variables:
            raise FormulaError("Forall with no variables")
        if len({v.name for v in self.variables}) != len(self.variables):
            raise FormulaError("Forall with repeated variables")

    def __str__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"forall {names}. ({self.body})"


# -- constructors with light simplification ----------------------------------

TRUE = TrueF()
FALSE = FalseF()


def atom(rel: str, *terms: Term | Value) -> Atom:
    """Build an atom, lifting raw values to :class:`Const` terms."""
    lifted = tuple(
        t if isinstance(t, (Var, Const)) else Const(t) for t in terms
    )
    return Atom(rel, lifted)


def eq(left: Term | Value, right: Term | Value) -> Eq:
    """Build an equality atom, lifting raw values to constants."""
    lt = left if isinstance(left, (Var, Const)) else Const(left)
    rt = right if isinstance(right, (Var, Const)) else Const(right)
    return Eq(lt, rt)


def neg(body: Formula) -> Formula:
    """Negation with double-negation and constant elimination."""
    if isinstance(body, TrueF):
        return FALSE
    if isinstance(body, FalseF):
        return TRUE
    if isinstance(body, Not):
        return body.body
    return Not(body)


def conj(*parts: Formula) -> Formula:
    """N-ary conjunction, flattening and dropping ``true`` units."""
    flat: list[Formula] = []
    for p in parts:
        if isinstance(p, TrueF):
            continue
        if isinstance(p, FalseF):
            return FALSE
        if isinstance(p, And):
            flat.extend(p.children)
        else:
            flat.append(p)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(*parts: Formula) -> Formula:
    """N-ary disjunction, flattening and dropping ``false`` units."""
    flat: list[Formula] = []
    for p in parts:
        if isinstance(p, FalseF):
            continue
        if isinstance(p, TrueF):
            return TRUE
        if isinstance(p, Or):
            flat.extend(p.children)
        else:
            flat.append(p)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def implies(antecedent: Formula, consequent: Formula) -> Formula:
    """Implication (kept as a node for readability)."""
    return Implies(antecedent, consequent)


def exists(variables: Iterable[Var | str], body: Formula) -> Formula:
    """Existential closure over *variables* (names or Vars)."""
    vs = tuple(Var(v) if isinstance(v, str) else v for v in variables)
    if not vs:
        return body
    return Exists(vs, body)


def forall(variables: Iterable[Var | str], body: Formula) -> Formula:
    """Universal closure over *variables* (names or Vars)."""
    vs = tuple(Var(v) if isinstance(v, str) else v for v in variables)
    if not vs:
        return body
    return Forall(vs, body)


# -- structural queries -------------------------------------------------------

def children(formula: Formula) -> tuple[Formula, ...]:
    """Immediate sub-formulas of *formula*."""
    if isinstance(formula, (TrueF, FalseF, Atom, Eq)):
        return ()
    if isinstance(formula, Not):
        return (formula.body,)
    if isinstance(formula, (And, Or)):
        return formula.children
    if isinstance(formula, Implies):
        return (formula.antecedent, formula.consequent)
    if isinstance(formula, (Exists, Forall)):
        return (formula.body,)
    raise FormulaError(f"not an FO formula: {formula!r}")


def walk(formula: Formula) -> Iterator[Formula]:
    """Pre-order traversal of all sub-formulas (including *formula*)."""
    stack = [formula]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(children(node)))


def atoms(formula: Formula) -> Iterator[Atom]:
    """All relational atoms occurring in *formula*."""
    for node in walk(formula):
        if isinstance(node, Atom):
            yield node


@lru_cache(maxsize=65536)
def relations(formula: Formula) -> frozenset[str]:
    """Names of all relations mentioned in *formula* (memoized)."""
    return frozenset(a.rel for a in atoms(formula))


def constants(formula: Formula) -> frozenset[Value]:
    """All constant values occurring in *formula*."""
    out: set[Value] = set()
    for node in walk(formula):
        if isinstance(node, Atom):
            out.update(t.value for t in node.terms if isinstance(t, Const))
        elif isinstance(node, Eq):
            for t in (node.left, node.right):
                if isinstance(t, Const):
                    out.add(t.value)
    return frozenset(out)


@lru_cache(maxsize=65536)
def free_vars(formula: Formula) -> frozenset[Var]:
    """The free variables of *formula* (memoized)."""
    if isinstance(formula, (TrueF, FalseF)):
        return frozenset()
    if isinstance(formula, Atom):
        return frozenset(t for t in formula.terms if isinstance(t, Var))
    if isinstance(formula, Eq):
        return frozenset(
            t for t in (formula.left, formula.right) if isinstance(t, Var)
        )
    if isinstance(formula, (Exists, Forall)):
        return free_vars(formula.body) - frozenset(formula.variables)
    out: set[Var] = set()
    for child in children(formula):
        out |= free_vars(child)
    return frozenset(out)


def all_vars(formula: Formula) -> frozenset[Var]:
    """All variables (free or bound) occurring in *formula*."""
    out: set[Var] = set()
    for node in walk(formula):
        if isinstance(node, Atom):
            out.update(t for t in node.terms if isinstance(t, Var))
        elif isinstance(node, Eq):
            out.update(
                t for t in (node.left, node.right) if isinstance(t, Var)
            )
        elif isinstance(node, (Exists, Forall)):
            out.update(node.variables)
    return frozenset(out)


def substitute(formula: Formula, binding: Mapping[Var, Term]) -> Formula:
    """Capture-avoiding substitution of free variables by terms.

    Raises :class:`FormulaError` if a substitution would be captured by a
    quantifier (the library always substitutes constants, where capture is
    impossible, but the guard keeps the function safe for general terms).
    """

    def sub_term(t: Term) -> Term:
        if isinstance(t, Var) and t in binding:
            return binding[t]
        return t

    if isinstance(formula, (TrueF, FalseF)):
        return formula
    if isinstance(formula, Atom):
        return Atom(formula.rel, tuple(sub_term(t) for t in formula.terms))
    if isinstance(formula, Eq):
        return Eq(sub_term(formula.left), sub_term(formula.right))
    if isinstance(formula, Not):
        return Not(substitute(formula.body, binding))
    if isinstance(formula, And):
        return And(tuple(substitute(c, binding) for c in formula.children))
    if isinstance(formula, Or):
        return Or(tuple(substitute(c, binding) for c in formula.children))
    if isinstance(formula, Implies):
        return Implies(substitute(formula.antecedent, binding),
                       substitute(formula.consequent, binding))
    if isinstance(formula, (Exists, Forall)):
        bound = set(formula.variables)
        inner = {v: t for v, t in binding.items() if v not in bound}
        for v, t in inner.items():
            if isinstance(t, Var) and t in bound:
                raise FormulaError(
                    f"substitution of {v} by {t} captured by quantifier"
                )
        new_body = substitute(formula.body, inner)
        cls = type(formula)
        return cls(formula.variables, new_body)
    raise FormulaError(f"not an FO formula: {formula!r}")


def instantiate(formula: Formula, valuation: Mapping[Var, Value]) -> Formula:
    """Substitute free variables by constant values."""
    return substitute(
        formula, {v: Const(val) for v, val in valuation.items()}
    )


def is_ground_atom(a: Atom) -> bool:
    """True iff the atom contains no variables."""
    return all(isinstance(t, Const) for t in a.terms)


def is_existential_prenex(formula: Formula) -> bool:
    """True iff *formula* is in the ``exists* (quantifier-free)`` fragment.

    This is the shape input-boundedness requires of input rules and of
    flat-queue send rules (Section 3.1, condition 2).
    """
    body = formula
    while isinstance(body, Exists):
        body = body.body
    return not any(
        isinstance(node, (Exists, Forall)) for node in walk(body)
    )
