"""Terms of first-order formulas: variables and constants.

The data domain of the paper is an arbitrary infinite set of values.  We
represent values as Python strings or integers (hashable, orderable within a
type).  A :class:`Var` is a named placeholder; a :class:`Const` wraps a domain
value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

#: A domain value.  Strings and ints cover every construction in the paper.
Value = Union[str, int]


@dataclass(frozen=True, slots=True)
class Var:
    """A first-order variable, identified by name."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not self.name[0].isalpha() and self.name[0] != "_":
            raise ValueError(f"invalid variable name: {self.name!r}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Const:
    """A constant term holding a domain value."""

    value: Value

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


#: A term is a variable or a constant.
Term = Union[Var, Const]


def term_sort_key(term: Term) -> tuple:
    """Deterministic ordering key for mixed collections of terms."""
    if isinstance(term, Var):
        return (0, term.name)
    return (1, str(type(term.value).__name__), str(term.value))


def value_sort_key(value: Value) -> tuple:
    """Deterministic ordering key for mixed str/int domain values."""
    return (type(value).__name__, str(value))


def is_value(obj: object) -> bool:
    """Return True iff *obj* is a legal domain value."""
    return isinstance(obj, (str, int)) and not isinstance(obj, bool)
