"""The input-boundedness restriction (Section 3.1).

A formula over a composition schema is *input-bounded* when every
quantifier is guarded::

    exists x̄ (alpha & phi)      forall x̄ (alpha -> phi)

where ``alpha`` is an atom over the current inputs, previous inputs, or
*flat* queue relations, the quantified variables all occur in ``alpha``,
and no quantified variable occurs in any state, action, or nested-queue
atom of ``phi``.

A peer is input-bounded when

1. all state, action, and nested-queue send rules have input-bounded
   bodies, and
2. all input rules and flat-queue send rules are ``exists*`` FO with all
   state and nested-queue atoms ground.

An LTL-FO sentence is input-bounded when all of its FO payloads are
(the sentence's universal-closure variables range over the run's active
domain and are exempt, as in the paper's Example 3.2).

The checker returns a list of :class:`~repro.ib.report.Violation`
diagnostics; an empty list means input-bounded.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import InputBoundednessError
from ..fo import formulas as fo
from ..obs import PHASE_IB_CHECK, counter, phase
from ..fo.schema import RelationKind, RelationSymbol, Schema
from ..fo.terms import Var
from ..ltlfo.formulas import LTLFOSentence
from ..spec.composition import Composition
from ..spec.peer import Peer
from ..spec.rules import Rule, RuleKind
from .report import Violation


def _is_guard_kind(sym: RelationSymbol, strict: bool) -> bool:
    """May this relation's atoms guard a quantifier?

    Guards range over ``C.I`` + ``C.PrevI`` + flat in-queues + flat
    out-queues (Section 3.1).  In the default liberal mode, *database*
    atoms may also guard: the paper's own Example 2.2 quantifies
    ``exists ssn`` guarded only by the ``customer`` database relation
    (rules (3)-(8)), and database-guarded quantification is harmless for
    the bounded-domain argument because the database is fixed and finite.
    ``strict=True`` enforces the literal definition.
    """
    if sym.kind in (RelationKind.INPUT, RelationKind.PREV_INPUT):
        return True
    if not strict and sym.kind is RelationKind.DATABASE:
        return True
    return sym.is_flat_queue


def _is_restricted_kind(sym: RelationSymbol) -> bool:
    """Must this relation's atoms avoid quantified variables?

    The definition's ``beta`` atoms: state, action, and nested-queue
    relations.  Propositional bookkeeping states (``empty_Q``/``error_Q``)
    have arity 0 and can never violate the condition.
    """
    if sym.kind in (RelationKind.STATE, RelationKind.ACTION):
        return True
    return sym.is_nested_queue


def _atom_vars(a: fo.Atom) -> frozenset[str]:
    return frozenset(t.name for t in a.terms if isinstance(t, Var))


def _flatten_conj(formula: fo.Formula) -> list[fo.Formula]:
    if isinstance(formula, fo.And):
        out: list[fo.Formula] = []
        for child in formula.children:
            out.extend(_flatten_conj(child))
        return out
    return [formula]


def _check_quantifier(node: fo.Exists | fo.Forall, schema: Schema,
                      where: str, out: list[Violation],
                      strict: bool) -> None:
    quantified = {v.name for v in node.variables}

    # locate candidate guard atoms
    if isinstance(node, fo.Exists):
        candidates = _flatten_conj(node.body)
    else:
        if not isinstance(node.body, fo.Implies):
            out.append(Violation(
                where, str(node),
                "universal quantifier must have the guarded form "
                "forall x̄ (alpha -> phi)",
                code="DWV002",
                relations=tuple(sorted(
                    {a.rel for a in fo.atoms(node.body)})),
            ))
            return
        candidates = _flatten_conj(node.body.antecedent)

    guard = None
    for cand in candidates:
        if isinstance(cand, fo.Atom):
            sym = schema.get(cand.rel)
            if sym is not None and _is_guard_kind(sym, strict):
                if quantified <= _atom_vars(cand):
                    guard = cand
                    break
    if guard is None:
        out.append(Violation(
            where, str(node),
            "no input/prev-input/flat-queue guard atom covers the "
            f"quantified variables {sorted(quantified)}",
            code="DWV001",
            relations=tuple(sorted(
                {a.rel for a in fo.atoms(node.body)})),
        ))
        return

    # quantified variables must avoid state/action/nested-queue atoms
    for sub in fo.atoms(node.body):
        if sub is guard:
            continue
        sym = schema.get(sub.rel)
        if sym is None or not _is_restricted_kind(sym):
            continue
        clash = quantified & _atom_vars(sub)
        if clash:
            out.append(Violation(
                where, str(node),
                f"quantified variables {sorted(clash)} occur in "
                f"{sym.kind.value} atom {sub}",
                code="DWV003",
                relations=(sub.rel,),
            ))


def check_formula(formula: fo.Formula, schema: Schema,
                  where: str = "formula",
                  strict: bool = False) -> list[Violation]:
    """Violations of the input-bounded *formula* definition."""
    out: list[Violation] = []
    for node in fo.walk(formula):
        if isinstance(node, (fo.Exists, fo.Forall)):
            _check_quantifier(node, schema, where, out, strict)
    return out


def check_exists_star_rule(rule: Rule, schema: Schema,
                           where: str) -> list[Violation]:
    """Condition 2: ``exists*`` FO with ground state/nested-queue atoms."""
    out: list[Violation] = []
    if not fo.is_existential_prenex(rule.body):
        out.append(Violation(
            where, str(rule.body),
            "input rules and flat-send rules must be exists* FO",
            code="DWV004",
            relations=tuple(sorted(
                {a.rel for a in fo.atoms(rule.body)})),
        ))
    for a in fo.atoms(rule.body):
        sym = schema.get(a.rel)
        if sym is None:
            continue
        is_state = sym.kind in (RelationKind.STATE,)
        is_nested_queue = sym.is_nested_queue
        if (is_state or is_nested_queue) and not fo.is_ground_atom(a):
            out.append(Violation(
                where, str(a),
                f"{sym.kind.value} atom must be ground in input/flat-send "
                "rules",
                code="DWV005",
                relations=(a.rel,),
            ))
    return out


def check_peer(peer: Peer, strict: bool = False) -> list[Violation]:
    """Violations of the input-bounded *peer* definition."""
    schema = peer.local_schema
    nested_out = {q.name for q in peer.out_queues if q.nested}
    out: list[Violation] = []
    for rule in peer.rules:
        where = f"peer {peer.name}, {rule.kind.value} rule for {rule.target}"
        if rule.kind in (RuleKind.INSERT, RuleKind.DELETE, RuleKind.ACTION):
            out.extend(check_formula(rule.body, schema, where, strict))
        elif rule.kind is RuleKind.SEND and rule.target in nested_out:
            out.extend(check_formula(rule.body, schema, where, strict))
        else:  # input rules and flat-send rules
            out.extend(check_exists_star_rule(rule, schema, where))
    return out


def check_composition(composition: Composition,
                      strict: bool = False) -> list[Violation]:
    """Violations across all peers of a composition."""
    out: list[Violation] = []
    with phase(PHASE_IB_CHECK):
        for peer in composition.peers:
            out.extend(check_peer(peer, strict))
    counter("ib.compositions_checked").inc()
    counter("ib.violations").inc(len(out))
    return out


def check_sentence(sentence: LTLFOSentence, schema: Schema,
                   where: str = "property",
                   strict: bool = False) -> list[Violation]:
    """Violations of the input-bounded *LTL-FO sentence* definition.

    Each FO payload is checked; the sentence's universal-closure variables
    are free in the payloads and therefore unrestricted, exactly as in the
    paper's Example 3.2.
    """
    out: list[Violation] = []
    with phase(PHASE_IB_CHECK):
        for payload in sentence.fo_payloads():
            out.extend(check_formula(payload, schema, where, strict))
    counter("ib.sentences_checked").inc()
    counter("ib.violations").inc(len(out))
    return out


def is_input_bounded_composition(composition: Composition) -> bool:
    return not check_composition(composition)


def is_input_bounded_sentence(sentence: LTLFOSentence,
                              schema: Schema) -> bool:
    return not check_sentence(sentence, schema)


def require_input_bounded(composition: Composition,
                          sentences: Iterable[LTLFOSentence] = (),
                          ) -> None:
    """Raise :class:`InputBoundednessError` on any violation."""
    violations = check_composition(composition)
    for idx, s in enumerate(sentences):
        violations.extend(
            check_sentence(s, composition.schema, where=f"property #{idx}")
        )
    if violations:
        lines = "\n".join(str(v) for v in violations)
        raise InputBoundednessError(
            f"not input-bounded:\n{lines}", violations
        )
