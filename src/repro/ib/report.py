"""Diagnostics for input-boundedness violations."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Violation:
    """One reason a formula/peer/composition fails input-boundedness.

    ``where`` locates the problem (peer/rule/property), ``formula`` is the
    offending (sub)formula rendered as text, ``reason`` explains which part
    of the Section 3.1 definition is violated.
    """

    where: str
    formula: str
    reason: str

    def __str__(self) -> str:
        return f"[{self.where}] {self.reason}: {self.formula}"


def summarize(violations: list[Violation]) -> str:
    """A multi-line report, one violation per line."""
    if not violations:
        return "input-bounded: no violations"
    return "\n".join(str(v) for v in violations)
