"""Diagnostics for input-boundedness violations.

:class:`Violation` is the checker's native record; since the analyzer
landed it also carries the stable ``DWV0xx`` diagnostic code of the
specific Section 3.1 condition violated, and renders through
:class:`repro.analysis.diagnostics.Diagnostic` so ``repro check`` and
``repro lint`` print identical, code-prefixed messages.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.diagnostics import Diagnostic, make

#: Fallback code for violations constructed without one (old call sites).
DEFAULT_CODE = "DWV001"


@dataclass(frozen=True, slots=True)
class Violation:
    """One reason a formula/peer/composition fails input-boundedness.

    ``where`` locates the problem (peer/rule/property), ``formula`` is the
    offending (sub)formula rendered as text, ``reason`` explains which part
    of the Section 3.1 definition is violated, and ``code`` is the stable
    ``DWV0xx`` diagnostic code for that condition.  ``relations`` names
    the relations implicated by the violation (guard candidates or the
    clashing atoms' relations) so the provenance analysis can attach an
    origin chain to the diagnostic.
    """

    where: str
    formula: str
    reason: str
    code: str = DEFAULT_CODE
    relations: tuple[str, ...] = ()

    def as_diagnostic(self) -> Diagnostic:
        """This violation as a structured analyzer diagnostic."""
        peer = None
        rule = None
        if self.where.startswith("peer "):
            parts = self.where.split(", ", 1)
            peer = parts[0][len("peer "):]
            if len(parts) == 2:
                rule = parts[1]
        return make(
            self.code, self.reason, where=self.where,
            peer=peer, rule=rule, subject=self.formula,
        )

    def __str__(self) -> str:
        return f"[{self.where}] {self.reason}: {self.formula}"


def violations_to_diagnostics(violations: list[Violation]
                              ) -> list[Diagnostic]:
    return [v.as_diagnostic() for v in violations]


def summarize(violations: list[Violation],
              composition=None) -> str:
    """A multi-line report, one code-prefixed violation per entry.

    This is the exact rendering ``repro lint`` uses for the same
    findings, so the two commands stay textually consistent.  With
    *composition*, each violation additionally carries the same
    provenance explanation the lint ib pass attaches (lazy import:
    the analysis package imports this module).
    """
    if not violations:
        return "input-bounded: no violations"
    if composition is None:
        return "\n".join(v.as_diagnostic().render() for v in violations)
    from ..analysis.ib_pass import attach_provenance
    from ..analysis.provenance import compute_provenance
    facts = compute_provenance(composition)
    return "\n".join(attach_provenance(composition, facts, v).render()
                     for v in violations)
