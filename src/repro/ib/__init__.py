"""The input-boundedness restriction and its checker (Section 3.1)."""

from .checker import (
    check_composition, check_exists_star_rule, check_formula, check_peer,
    check_sentence, is_input_bounded_composition, is_input_bounded_sentence,
    require_input_bounded,
)
from .report import Violation, summarize, violations_to_diagnostics

__all__ = [
    "Violation", "check_composition", "check_exists_star_rule",
    "check_formula", "check_peer", "check_sentence",
    "is_input_bounded_composition", "is_input_bounded_sentence",
    "require_input_bounded", "summarize", "violations_to_diagnostics",
]
