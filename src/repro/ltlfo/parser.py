"""Parser for LTL-FO sentences in the paper's surface syntax.

Extends the FO grammar with the temporal operators ``X``, ``U`` (core),
``G``, ``F``, ``B`` (the paper's shorthands) and ``R``, ``W`` is not used
by the paper and is omitted.  Examples::

    forall id, l, name, ssn:
      G( (O.?apply(id, l) & O.customer(id, ssn, name))
         -> F( O.letter(id, name, l, "denied")
             | O.letter(id, name, l, "approved") ) )

    forall id, name, loan:
      ( (exists ssn: CR.!rating(ssn, "excellent")
                     & O.customer(id, ssn, name))
        | M.!decision(id, "approved") )
      B ~O.letter(id, name, loan, "approved")

Parsing rules:

* The temporal keywords are the single capital letters ``X G F U B R``;
  they are reserved (use longer names for relations/variables).
* Boolean connectives between two pure-FO operands stay FO (so maximal FO
  subformulas become the atomic propositions); any operand that contains a
  temporal operator lifts the whole node to the temporal level.
* Quantifiers may not scope over temporal operators, except that a prefix
  of leading ``forall`` blocks whose body is temporal becomes the
  sentence's universal closure (Definition 3.1).
* Precedence, loosest first: ``<->``, ``->``, ``U``/``B``/``R`` (right
  associative), ``|``, ``&``, unary (``~ X G F``, quantifiers).
"""

from __future__ import annotations

from typing import Union

from ..errors import ParseError
from ..fo import formulas as fo
from ..fo.parser import ParserBase
from ..fo.schema import Schema
from ..ltl import formulas as ltl
from .formulas import LTLFOSentence, lift_fo, sentence

#: During parsing a node is either still pure FO or already temporal.
Mixed = Union[fo.Formula, ltl.LTLFormula]

_TEMPORAL_UNARY = {"X", "G", "F"}
_TEMPORAL_BINARY = {"U", "B", "R"}
_RESERVED = _TEMPORAL_UNARY | _TEMPORAL_BINARY


def _is_fo(node: Mixed) -> bool:
    return isinstance(node, (
        fo.TrueF, fo.FalseF, fo.Atom, fo.Eq, fo.Not, fo.And, fo.Or,
        fo.Implies, fo.Exists, fo.Forall,
    ))


def _lift(node: Mixed) -> ltl.LTLFormula:
    return lift_fo(node) if _is_fo(node) else node


class LTLFOParser(ParserBase):
    """Recursive-descent parser producing :class:`LTLFOSentence`."""

    def parse_sentence(self) -> LTLFOSentence:
        closure_vars: list = []
        # leading universal blocks: consumed tentatively; if the body turns
        # out to be pure FO they are folded back into FO quantifiers
        saved_positions: list[int] = []
        while (self.peek().text == "forall"
               and self.peek().kind == "ident"):
            saved_positions.append(self.index)
            self.advance()
            closure_vars.extend(self.parse_var_list())
        body = self.parse_mixed()
        if self.peek().kind != "eof":
            raise self.error(
                f"unexpected trailing input {self.peek().text!r}"
            )
        # universal closure: the declared prefix variables first, then any
        # remaining free variables (the paper closes sentences implicitly)
        lifted = _lift(body)
        declared = {v.name for v in closure_vars}
        auto = sentence(lifted)  # auto-closure computes the free variables
        extra = [v for v in auto.variables if v.name not in declared]
        return sentence(lifted, tuple(closure_vars) + tuple(extra))

    # -- precedence chain -------------------------------------------------

    def parse_mixed(self) -> Mixed:
        return self.parse_iff()

    def parse_iff(self) -> Mixed:
        left = self.parse_implies()
        while self.accept("<->"):
            right = self.parse_implies()
            if _is_fo(left) and _is_fo(right):
                left = fo.conj(fo.implies(left, right),
                               fo.implies(right, left))
            else:
                lt, rt = _lift(left), _lift(right)
                left = ltl.land(ltl.limplies(lt, rt), ltl.limplies(rt, lt))
        return left

    def parse_implies(self) -> Mixed:
        left = self.parse_temporal_binary()
        if self.accept("->"):
            right = self.parse_implies()
            if _is_fo(left) and _is_fo(right):
                return fo.implies(left, right)
            return ltl.limplies(_lift(left), _lift(right))
        return left

    def parse_temporal_binary(self) -> Mixed:
        left = self.parse_or()
        tok = self.peek()
        if tok.kind == "ident" and tok.text in _TEMPORAL_BINARY:
            op = self.advance().text
            right = self.parse_temporal_binary()  # right associative
            lt, rt = _lift(left), _lift(right)
            if op == "U":
                return ltl.luntil(lt, rt)
            if op == "B":
                return ltl.lbefore(lt, rt)
            return ltl.lrelease(lt, rt)
        return left

    def parse_or(self) -> Mixed:
        parts: list[Mixed] = [self.parse_and()]
        while self.accept("|") or self.accept("or"):
            parts.append(self.parse_and())
        if len(parts) == 1:
            return parts[0]
        if all(_is_fo(p) for p in parts):
            return fo.disj(*parts)
        return ltl.lor(*[_lift(p) for p in parts])

    def parse_and(self) -> Mixed:
        parts: list[Mixed] = [self.parse_unary()]
        while self.accept("&") or self.accept("and"):
            parts.append(self.parse_unary())
        if len(parts) == 1:
            return parts[0]
        if all(_is_fo(p) for p in parts):
            return fo.conj(*parts)
        return ltl.land(*[_lift(p) for p in parts])

    def parse_unary(self) -> Mixed:
        tok = self.peek()
        if tok.text == "~" or tok.text == "not":
            self.advance()
            body = self.parse_unary()
            if _is_fo(body):
                return fo.neg(body)
            return ltl.lnot(body)
        if tok.kind == "ident" and tok.text in _TEMPORAL_UNARY:
            self.advance()
            body = _lift(self.parse_unary())
            if tok.text == "X":
                return ltl.lnext(body)
            if tok.text == "G":
                return ltl.lglobally(body)
            return ltl.lfinally(body)
        if tok.text in ("exists", "forall") and tok.kind == "ident":
            quant = self.advance().text
            variables = self.parse_var_list()
            # quantifier scope extends as far right as possible, but must
            # remain first-order (Definition 3.1)
            body = self.parse_mixed()
            if not _is_fo(body):
                raise ParseError(
                    "quantifiers may not scope over temporal operators "
                    "(Definition 3.1); only a leading 'forall' prefix may "
                    "close a temporal formula",
                    position=tok.pos, text=self.text,
                )
            if quant == "exists":
                return fo.exists(variables, body)
            return fo.forall(variables, body)
        return self.parse_primary()

    def parse_primary(self) -> Mixed:
        if self.accept("true"):
            return fo.TRUE
        if self.accept("false"):
            return fo.FALSE
        if self.accept("("):
            inner = self.parse_mixed()
            self.expect(")")
            return inner
        return self.parse_atom_or_equality()


def parse_ltlfo(text: str, schema: Schema | None = None) -> LTLFOSentence:
    """Parse an LTL-FO sentence, optionally validating against *schema*."""
    return LTLFOParser(text, schema).parse_sentence()
