"""LTL-FO sentences (Definition 3.1) over composition schemas."""

from .formulas import (
    LTLFOSentence, lift_fo, map_payloads, relativize,
    rename_payload_relations, sentence,
)
from .parser import LTLFOParser, parse_ltlfo

__all__ = [
    "LTLFOParser", "LTLFOSentence", "lift_fo", "map_payloads",
    "parse_ltlfo", "relativize", "rename_payload_relations", "sentence",
]
