"""LTL-FO: first-order linear temporal logic (Definition 3.1).

An LTL-FO *formula* is propositional LTL whose atomic propositions are FO
formulas over the composition schema (quantifiers may not scope over
temporal operators, so every maximal FO subformula is self-contained).  An
LTL-FO *sentence* is the universal closure of such a formula: its free
variables are universally quantified over the active domain of each run.

We reuse the propositional machinery of :mod:`repro.ltl` directly: an
LTL-FO formula is an :class:`~repro.ltl.formulas.LTLFormula` whose
``LAtom`` payloads are :class:`~repro.fo.formulas.Formula` values.

The paper's Section 5 "strictly input-bounded" sentences are those with no
temporal operator in the scope of any quantifier -- in this representation,
exactly the sentences with an empty closure-variable tuple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..errors import FormulaError
from ..fo import formulas as fo
from ..fo.terms import Value, Var
from ..ltl.formulas import (
    LAtom, LTLFormula, atom_payloads, lnot, lwalk,
)


@dataclass(frozen=True, slots=True)
class LTLFOSentence:
    """The universal closure ``forall x̄ . body`` of an LTL-FO formula.

    ``body`` is an :class:`LTLFormula` whose atom payloads are FO
    formulas; every free variable of every payload must appear in
    ``variables``.
    """

    variables: tuple[Var, ...]
    body: LTLFormula

    def __post_init__(self) -> None:
        declared = {v.name for v in self.variables}
        if len(declared) != len(self.variables):
            raise FormulaError("repeated closure variables")
        free = {v.name for v in self.free_payload_vars()}
        missing = free - declared
        if missing:
            raise FormulaError(
                f"free variables {sorted(missing)} not closed by the "
                f"sentence's universal closure {sorted(declared)}"
            )

    # -- queries ----------------------------------------------------------

    def fo_payloads(self) -> tuple[fo.Formula, ...]:
        """The maximal FO subformulas (the temporal skeleton's atoms)."""
        seen: list[fo.Formula] = []
        for payload in atom_payloads(self.body):
            if payload not in seen:
                seen.append(payload)
        return tuple(seen)

    def free_payload_vars(self) -> frozenset[Var]:
        out: set[Var] = set()
        for payload in self.fo_payloads():
            out |= fo.free_vars(payload)
        return frozenset(out)

    def constants(self) -> frozenset[Value]:
        out: set[Value] = set()
        for payload in self.fo_payloads():
            out |= fo.constants(payload)
        return frozenset(out)

    def relations(self) -> frozenset[str]:
        out: set[str] = set()
        for payload in self.fo_payloads():
            out |= fo.relations(payload)
        return frozenset(out)

    @property
    def is_strict(self) -> bool:
        """True iff no temporal operator is under a quantifier (Section 5).

        With the closure-variable representation this is exactly "the
        closure is empty": all quantification lives inside FO payloads.
        """
        return not self.variables

    def variable_count(self) -> int:
        """Distinct variables anywhere (closure + bound in payloads)."""
        names = {v.name for v in self.variables}
        for payload in self.fo_payloads():
            names |= {v.name for v in fo.all_vars(payload)}
        return len(names)

    # -- transformations ------------------------------------------------------

    def instantiate(self, valuation: Mapping[Var, Value]) -> LTLFormula:
        """The closed LTL formula for one valuation of the closure vars.

        Payloads become closed FO sentences, which act as the atomic
        propositions during model checking.
        """
        missing = [v.name for v in self.variables if v not in valuation]
        if missing:
            raise FormulaError(f"valuation misses variables {missing}")
        return map_payloads(
            self.body, lambda p: fo.instantiate(p, valuation)
        )

    def negated_body(self) -> LTLFormula:
        """``~body`` -- the paper verifies by searching for a violation."""
        return lnot(self.body)

    def __str__(self) -> str:
        if self.variables:
            names = ", ".join(v.name for v in self.variables)
            return f"forall {names}: {self.body}"
        return str(self.body)


def map_payloads(formula: LTLFormula, transform) -> LTLFormula:
    """Apply *transform* to every FO payload of an LTL-FO formula."""
    from ..ltl.formulas import (
        LAnd, LFalse, LNext, LNot, LOr, LRelease, LTrue, LUntil,
    )
    if isinstance(formula, (LTrue, LFalse)):
        return formula
    if isinstance(formula, LAtom):
        return LAtom(transform(formula.ap))
    if isinstance(formula, LNot):
        return LNot(map_payloads(formula.body, transform))
    if isinstance(formula, LNext):
        return LNext(map_payloads(formula.body, transform))
    if isinstance(formula, LAnd):
        return LAnd(map_payloads(formula.left, transform),
                    map_payloads(formula.right, transform))
    if isinstance(formula, LOr):
        return LOr(map_payloads(formula.left, transform),
                   map_payloads(formula.right, transform))
    if isinstance(formula, LUntil):
        return LUntil(map_payloads(formula.left, transform),
                      map_payloads(formula.right, transform))
    if isinstance(formula, LRelease):
        return LRelease(map_payloads(formula.left, transform),
                        map_payloads(formula.right, transform))
    raise FormulaError(f"not an LTL formula: {formula!r}")


def sentence(body: LTLFormula,
             variables: tuple[Var, ...] | None = None) -> LTLFOSentence:
    """Build a sentence, auto-closing free payload variables if needed."""
    if variables is None:
        free: set[Var] = set()
        for node in lwalk(body):
            if isinstance(node, LAtom):
                free |= fo.free_vars(node.ap)
        variables = tuple(sorted(free, key=lambda v: v.name))
    return LTLFOSentence(tuple(variables), body)


def lift_fo(formula: fo.Formula) -> LTLFormula:
    """An FO formula as an (atomic) LTL-FO formula."""
    return LAtom(formula)


def rename_payload_relations(formula: LTLFormula,
                             mapping: dict[str, str]) -> LTLFormula:
    """Rewrite relation names inside every FO payload."""
    from ..spec.rules import rename_formula_relations
    return map_payloads(
        formula, lambda p: rename_formula_relations(p, mapping)
    )


def relativize(formula: LTLFormula, alpha: fo.Formula) -> LTLFormula:
    """Replace X and U by the move-relativized X_alpha / U_alpha (Section 5).

    The paper's semantics: ``X_alpha phi`` holds at j iff ``phi`` holds at
    the next position *strictly after* j where ``alpha`` holds;
    ``xi1 U_alpha xi2`` requires a future alpha-position satisfying
    ``xi2``, with ``xi1`` at every intermediate alpha-position.  Both are
    expressible in plain LTL::

        X_alpha phi     ==  X( ~alpha U (alpha & phi) )
        xi1 U_alpha xi2 ==  (alpha -> xi1) U (alpha & xi2)

    Release nodes are rewritten through their Until dual before
    relativizing.
    """
    from ..ltl.formulas import (
        LAnd, LFalse, LNext, LNot, LOr, LRelease, LTrue, LUntil,
        land, limplies, lnot as pnot,
    )
    a = lift_fo(alpha)
    if isinstance(formula, (LTrue, LFalse, LAtom)):
        return formula
    if isinstance(formula, LNot):
        return LNot(relativize(formula.body, alpha))
    if isinstance(formula, LAnd):
        return LAnd(relativize(formula.left, alpha),
                    relativize(formula.right, alpha))
    if isinstance(formula, LOr):
        return LOr(relativize(formula.left, alpha),
                   relativize(formula.right, alpha))
    if isinstance(formula, LNext):
        body = relativize(formula.body, alpha)
        return LNext(LUntil(pnot(a), land(a, body)))
    if isinstance(formula, LUntil):
        left = relativize(formula.left, alpha)
        right = relativize(formula.right, alpha)
        return LUntil(limplies(a, left), land(a, right))
    if isinstance(formula, LRelease):
        dual = pnot(LUntil(pnot(formula.left), pnot(formula.right)))
        return relativize(dual, alpha)
    raise FormulaError(f"not an LTL formula: {formula!r}")
