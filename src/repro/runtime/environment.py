"""Environment transitions for open compositions (Section 5).

The environment owns the dangling endpoints of an open composition's
channels.  One environment transition nondeterministically

* removes the first message from any subset of the queues it consumes
  (``E.Qin`` -- the composition's out-queues towards the environment), and
* enqueues new messages into any subset of the queues it feeds
  (``E.Qout`` -- the composition's in-queues from the environment), with
  tuple values drawn from the finite verification domain (the paper's
  finite-domain assumption on environment transitions).

Nested environment messages are bounded by ``max_nested_rows`` rows to
keep the branch set finite and small; Theorem 5.4 restricts environment
specifications to *flat* environment channels anyway.

``one_action_per_move=True`` restricts each environment transition to a
single dequeue or a single send (or a no-op).  Every multi-action behaviour
is reproduced by a sequence of single-action moves, so this is a useful
state-space reduction when properties do not depend on simultaneity.
"""

from __future__ import annotations

import itertools

from ..fo.schema import ENVIRONMENT_NAME
from ..spec.channels import ChannelSemantics
from ..spec.composition import Composition
from .state import GlobalState, freeze_queues
from .step import Domain, _row_key


def _flat_message_options(arity: int, domain: Domain) -> list[frozenset]:
    return [
        frozenset({combo})
        for combo in sorted(itertools.product(domain, repeat=arity),
                            key=_row_key)
    ]


def _nested_message_options(arity: int, domain: Domain,
                            max_rows: int) -> list[frozenset]:
    rows = sorted(itertools.product(domain, repeat=arity), key=_row_key)
    options: list[frozenset] = [frozenset()]
    for size in range(1, max_rows + 1):
        options.extend(
            frozenset(combo) for combo in itertools.combinations(rows, size)
        )
    return options


def environment_successors(composition: Composition, state: GlobalState,
                           domain: Domain, semantics: ChannelSemantics,
                           max_nested_rows: int = 1,
                           one_action_per_move: bool = False,
                           value_domain: Domain | None = None,
                           ) -> list[GlobalState]:
    """All successors of *state* under one environment transition.

    ``value_domain`` restricts the values environment messages may carry
    (the paper only assumes "some finite domain"); it defaults to the full
    verification domain.  Smaller value domains shrink the branch factor
    dramatically; by genericity, one fresh value not occurring elsewhere
    stands in for "any unexpected value".
    """
    if composition.is_closed:
        return []
    if value_domain is None:
        value_domain = domain

    def finish(queues: dict, enqueued: frozenset, sent: frozenset
               ) -> GlobalState:
        return GlobalState(
            data=state.data,
            queues=freeze_queues(queues),
            mover=ENVIRONMENT_NAME,
            enqueued=enqueued,
            sent=sent,
        )

    base = state.queue_map()
    in_channels = composition.env_in_channels()    # env consumes
    out_channels = composition.env_out_channels()  # env sends

    if one_action_per_move:
        out: list[GlobalState] = [finish(dict(base), frozenset(),
                                         frozenset())]
        for channel in in_channels:
            contents = base[channel.name]
            if contents:
                queues = dict(base)
                queues[channel.name] = contents[1:]
                out.append(finish(queues, frozenset(), frozenset()))
        for channel in out_channels:
            contents = base[channel.name]
            if (semantics.queue_bound is not None
                    and len(contents) >= semantics.queue_bound):
                # a send into a full queue would be dropped; the same run
                # set is produced by the environment simply not sending
                continue
            options = (
                _nested_message_options(channel.arity, value_domain,
                                        max_nested_rows)
                if channel.nested
                else _flat_message_options(channel.arity, value_domain)
            )
            for message in options:
                queues = dict(base)
                queues[channel.name] = contents + (message,)
                out.append(finish(queues, frozenset({channel.name}),
                                  frozenset({channel.name})))
        return out

    # full product: any subset of dequeues x any choice of sends
    dequeue_choices: list[list[tuple[str, bool]]] = []
    for channel in in_channels:
        if base[channel.name]:
            dequeue_choices.append([(channel.name, False),
                                    (channel.name, True)])
    send_choices: list[list[tuple[str, frozenset | None]]] = []
    for channel in out_channels:
        options: list[frozenset | None] = [None]
        contents = base[channel.name]
        room = (semantics.queue_bound is None
                or len(contents) < semantics.queue_bound)
        if room:
            # sends into full queues would be dropped; omitting them
            # produces the same run set (environment chooses not to send)
            options.extend(
                _nested_message_options(channel.arity, value_domain,
                                        max_nested_rows)
                if channel.nested
                else _flat_message_options(channel.arity, value_domain)
            )
        send_choices.append([(channel.name, opt) for opt in options])

    out = []
    dequeue_product = (
        [list(c) for c in itertools.product(*dequeue_choices)]
        if dequeue_choices else [[]]
    )
    send_product = (
        [list(c) for c in itertools.product(*send_choices)]
        if send_choices else [[]]
    )
    for dequeues in dequeue_product:
        for sends in send_product:
            queues = dict(base)
            for name, do_dequeue in dequeues:
                if do_dequeue and queues[name]:
                    queues[name] = queues[name][1:]
            enqueued_set: set[str] = set()
            sent_set: set[str] = set()
            for name, message in sends:
                if message is None:
                    continue
                contents = queues[name]
                if (semantics.queue_bound is not None
                        and len(contents) >= semantics.queue_bound):
                    continue  # full after a concurrent dequeue race: skip
                sent_set.add(name)
                queues[name] = contents + (message,)
                enqueued_set.add(name)
            out.append(finish(queues, frozenset(enqueued_set),
                              frozenset(sent_set)))
    return out
