"""Global run states (snapshots) of a composition.

A :class:`GlobalState` captures one snapshot of Definition 2.6: every
peer's configuration (database, state, current input, previous input,
actions, error flags -- all stored in one qualified :class:`Instance`),
the contents of every channel queue, which peer moved to produce the
snapshot, and the channel events of that transition (which channels got a
message enqueued -- the observer-at-recipient events -- and which channels
a send fired into -- the observer-at-source events, Section 4).

States are immutable and hashable, so model checking can keep visited
sets of them.

:func:`snapshot_view` renders a state as the relational structure property
formulas are evaluated over (Section 3): in-queue symbols denote the first
queued message ``f(Q)``, out-queue symbols the last enqueued message
``l(Q)``, plus the ``empty_Q``, ``received_Q`` and ``move_W`` propositions
and, for open compositions, the environment's channel views ``ENV.q``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..errors import SemanticsError
from ..fo.instance import Instance
from ..fo.schema import (
    ENVIRONMENT_NAME, empty_name, move_name, received_name,
)
from ..fo.terms import Value
from ..spec.composition import Composition

#: One message: a set of rows (singleton for flat queues).
Message = frozenset
#: The FIFO contents of one channel, head first.
QueueContents = tuple


@dataclass(frozen=True, slots=True)
class GlobalState:
    """One snapshot of a composition run.

    ``data`` holds all qualified persistent relations (databases, states,
    inputs, previous inputs, actions, error flags).  ``queues`` maps each
    channel name to its FIFO contents (a tuple of messages, head first),
    stored as a sorted tuple of pairs for hashability.  ``mover`` names
    the peer (or ``"ENV"``) whose move produced this snapshot, ``None``
    for an initial snapshot.  ``enqueued``/``sent`` are the channel events
    of the producing transition.
    """

    data: Instance
    queues: tuple
    mover: str | None = None
    enqueued: frozenset = frozenset()
    sent: frozenset = frozenset()
    # Memoized hash: snapshots are hashed millions of times by visited
    # sets, transition caches, and the state interner, and the generated
    # dataclass hash re-walks the queue tuples on every call.
    _hash: int | None = field(default=None, init=False, repr=False,
                              compare=False)

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((self.data, self.queues, self.mover,
                      self.enqueued, self.sent))
            object.__setattr__(self, "_hash", h)
        return h

    def __getstate__(self) -> tuple:
        # the memoized hash is process-dependent (seeded string hashing):
        # never ship it to pool workers
        return (self.data, self.queues, self.mover, self.enqueued,
                self.sent)

    def __setstate__(self, state: tuple) -> None:
        for name, value in zip(
            ("data", "queues", "mover", "enqueued", "sent"), state
        ):
            object.__setattr__(self, name, value)
        object.__setattr__(self, "_hash", None)

    def queue(self, channel: str) -> QueueContents:
        for name, contents in self.queues:
            if name == channel:
                return contents
        raise SemanticsError(f"unknown channel {channel!r}")

    def queue_map(self) -> dict[str, QueueContents]:
        return dict(self.queues)

    def with_queues(self, queue_map: Mapping[str, QueueContents]
                    ) -> "GlobalState":
        return GlobalState(
            data=self.data,
            queues=freeze_queues(queue_map),
            mover=self.mover,
            enqueued=self.enqueued,
            sent=self.sent,
        )

    def total_queued_messages(self) -> int:
        return sum(len(contents) for _n, contents in self.queues)

    def active_domain(self) -> frozenset[Value]:
        """All values in relations or queued messages of this snapshot."""
        dom = set(self.data.active_domain())
        for _name, contents in self.queues:
            for message in contents:
                for row in message:
                    dom.update(row)
        return frozenset(dom)


def freeze_queues(queue_map: Mapping[str, Iterable]) -> tuple:
    """Canonical, hashable form of a channel-name -> contents mapping."""
    return tuple(sorted(
        (name, tuple(contents)) for name, contents in queue_map.items()
    ))


def empty_queues(composition: Composition) -> tuple:
    """All channels empty."""
    return freeze_queues({c.name: () for c in composition.channels})


def first_message(contents: QueueContents) -> frozenset:
    """``f(Q)``: rows of the first message, or empty if the queue is empty."""
    return contents[0] if contents else frozenset()


def last_message(contents: QueueContents) -> frozenset:
    """``l(Q)``: rows of the last enqueued message, or empty."""
    return contents[-1] if contents else frozenset()


def snapshot_view(state: GlobalState, composition: Composition) -> Instance:
    """The relational structure a property/rules see at this snapshot.

    Adds to ``state.data``:

    * ``Receiver.q`` = first message of channel ``q`` (in-queue reading);
    * ``Sender.q``   = last enqueued message of ``q`` (out-queue reading);
    * ``Receiver.empty_q`` / ``Receiver.received_q`` propositions;
    * ``ENV.q`` views of environment channels (first message for channels
      the environment consumes, last message for channels it feeds);
    * ``move_W`` for every peer, and ``move_ENV`` when open.
    """
    extra: dict[str, frozenset] = {}
    queue_map = state.queue_map()
    for channel in composition.channels:
        contents = queue_map[channel.name]
        if channel.receiver is not None:
            base = f"{channel.receiver}.{channel.name}"
            extra[base] = first_message(contents)
            extra[f"{channel.receiver}.{empty_name(channel.name)}"] = (
                frozenset() if contents else frozenset({()})
            )
            extra[f"{channel.receiver}.{received_name(channel.name)}"] = (
                frozenset({()}) if channel.name in state.enqueued
                else frozenset()
            )
        else:
            extra[f"{ENVIRONMENT_NAME}.{channel.name}"] = (
                first_message(contents)
            )
        if channel.sender is not None:
            extra[f"{channel.sender}.{channel.name}"] = (
                last_message(contents)
            )
        else:
            extra[f"{ENVIRONMENT_NAME}.{channel.name}"] = (
                last_message(contents)
            )
    for peer in composition.peers:
        extra[move_name(peer.name)] = (
            frozenset({()}) if state.mover == peer.name else frozenset()
        )
    if not composition.is_closed:
        extra[move_name(ENVIRONMENT_NAME)] = (
            frozenset({()}) if state.mover == ENVIRONMENT_NAME
            else frozenset()
        )
    return state.data.merged(Instance._from_frozen(extra))
