"""The legal-successor relation (Definitions 2.3, 2.4 and 2.6).

One peer moves per step (serialized runs).  A move of peer ``W``:

1. evaluates all of ``W``'s rules on the current snapshot (database, state,
   current input, previous input, first messages of in-queues);
2. computes the new state (insert/delete semantics with no-op conflict
   resolution), actions, and previous inputs;
3. fires the send rules: nested sends collect all answers into one
   message; flat sends with several candidates either pick one
   nondeterministically or raise the ``error_Q`` flag (Theorem 3.8),
   depending on the :class:`~repro.spec.channels.ChannelSemantics`;
4. dequeues the first message of every in-queue *mentioned* in ``W``'s
   rules, then delivers sent messages: lossy channels may drop any sent
   message nondeterministically, and messages arriving at a full
   (k-bounded) queue are dropped;
5. finally, ``W``'s next user input is chosen nondeterministically among
   the options its input rules generate *in the successor configuration*
   (Definition 2.3 constrains the input of every configuration).

All nondeterminism (flat-send picks, losses, input choices) is enumerated,
so :func:`successors` returns every legal successor snapshot.
"""

from __future__ import annotations

import itertools
import os
from collections import OrderedDict
from typing import Iterable, Mapping, Sequence

from ..errors import SpecificationError
from ..fo.evaluator import answers
from ..fo.instance import Instance, Rows
from ..obs import PHASE_RULE_FIRE, phase
from ..fo.schema import error_name, prev_name
from ..fo.terms import Value, value_sort_key
from ..spec.channels import (
    ChannelSemantics, FlatSendDiscipline, NestedEmptySend,
)
from ..spec.composition import Channel, Composition
from ..spec.peer import Peer
from ..spec.rules import Rule, RuleKind
from .state import GlobalState, empty_queues, freeze_queues, snapshot_view

Domain = Sequence[Value]


def _row_key(row: tuple) -> tuple:
    """Deterministic sort key for rows with mixed str/int values."""
    return tuple(value_sort_key(v) for v in row)


class _RuleCache:
    """Process-local, bounded (LRU) rule-firing memo.

    A rule body's answers depend only on the extensions of the relations
    it mentions and the quantification domain, both of which repeat
    heavily across snapshots during model checking.  The cache is keyed
    by the owning process id so that worker processes created by
    ``fork`` never serve (or mutate) entries inherited from the parent:
    the first access in a new process starts from an empty, private
    cache.  Entries are evicted least-recently-used once ``maxsize`` is
    reached, bounding memory in long-running services.
    """

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._pid = os.getpid()
        self._answers: OrderedDict = OrderedDict()
        # rules are interned by identity: a composition hands out the
        # same Rule objects for every snapshot, and hashing a Rule walks
        # its whole body formula -- far too expensive per lookup.  The
        # rule object is kept as the value so its id cannot be recycled.
        self._relevant: dict[int, tuple[Rule, tuple[str, ...]]] = {}
        # relation extensions and domains are interned by value into
        # dense ids, so memo keys are flat int tuples instead of nested
        # frozenset tuples (cheap to hash and compare on every lookup).
        self._extension_ids: dict = {}
        self._domain_ids: dict = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _check_owner(self) -> None:
        pid = os.getpid()
        if pid != self._pid:
            self._pid = pid
            self.clear()

    def clear(self) -> None:
        self._answers.clear()
        self._relevant.clear()
        self._extension_ids.clear()
        self._domain_ids.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def relevant_relations(self, rule: Rule) -> tuple[str, ...]:
        entry = self._relevant.get(id(rule))
        if entry is None:
            from ..fo.formulas import relations
            entry = (rule, tuple(sorted(relations(rule.body))))
            self._relevant[id(rule)] = entry
        return entry[1]

    def _intern(self, table: dict, obj) -> int:
        interned = table.get(obj)
        if interned is None:
            interned = len(table)
            table[obj] = interned
        return interned

    def answers_for(self, rule: Rule, view: Instance, domain: Domain
                    ) -> Rows:
        self._check_owner()
        ext_ids = self._extension_ids
        key = (
            id(rule),
            self._intern(self._domain_ids, tuple(domain)),
            *(self._intern(ext_ids, view[rel])
              for rel in self.relevant_relations(rule)),
        )
        cached = self._answers.get(key)
        if cached is not None:
            self.hits += 1
            self._answers.move_to_end(key)
            return cached
        self.misses += 1
        with phase(PHASE_RULE_FIRE):
            result = answers(rule.body, rule.head, view, domain)
        self._answers[key] = result
        if len(self._answers) > self.maxsize:
            self._answers.popitem(last=False)
            self.evictions += 1
        return result

    def info(self) -> dict:
        return {
            "size": len(self._answers),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


def _default_cache_size() -> int:
    raw = os.environ.get("REPRO_RULE_CACHE_SIZE", "")
    try:
        size = int(raw)
    except ValueError:
        return 100_000
    return max(size, 1)


_RULE_CACHE = _RuleCache(_default_cache_size())


def clear_rule_cache() -> None:
    """Drop the rule-firing memo (tests / long-running processes)."""
    _RULE_CACHE.clear()


def rule_cache_info() -> dict:
    """Size/hit/miss/eviction counters of this process's rule cache."""
    return _RULE_CACHE.info()


#: The monotonically increasing counters of :func:`rule_cache_info`
#: (``size``/``maxsize`` are levels, not counters, and are excluded
#: from deltas).
RULE_CACHE_COUNTER_KEYS = ("hits", "misses", "evictions")


def rule_cache_delta(before: Mapping[str, int]) -> dict[str, int]:
    """Positive counter movement of the rule cache since *before*.

    ``before`` is a prior :func:`rule_cache_info` snapshot.  Used to
    attribute cache activity to one verification call or sweep task
    (workers ship these deltas back to the driver); a cache clear in
    between yields partial (never negative) numbers.
    """
    info = _RULE_CACHE.info()
    out: dict[str, int] = {}
    for key in RULE_CACHE_COUNTER_KEYS:
        delta = info[key] - before.get(key, 0)
        if delta > 0:
            out[key] = delta
    return out


def _rule_answers(rule: Rule | None, view: Instance, domain: Domain
                  ) -> Rows:
    if rule is None:
        return frozenset()
    return _RULE_CACHE.answers_for(rule, view, domain)


def _find_rule(rules: Iterable[Rule], kind: RuleKind, target: str
               ) -> Rule | None:
    for rule in rules:
        if rule.kind == kind and rule.target == target:
            return rule
    return None


def input_choices(composition: Composition, state: GlobalState,
                  peer: Peer, domain: Domain
                  ) -> list[dict[str, Rows]]:
    """All legal input assignments for *peer* in snapshot *state*.

    Each assignment maps the peer's qualified input-relation names to at
    most one tuple (Definition 2.3: the user picks at most one option;
    propositional inputs may be set only when their option rule holds).
    """
    view = snapshot_view(state, composition)
    rules = composition.qualified_rules(peer.name)
    per_input: list[list[tuple[str, Rows]]] = []
    for inp in peer.inputs:
        qname = f"{peer.name}.{inp.name}"
        rule = _find_rule(rules, RuleKind.INPUT, qname)
        options = _rule_answers(rule, view, domain)
        if inp.arity == 0:
            # propositional: may be True only if the option rule holds
            # (an omitted rule means the option is never available)
            choices: list[tuple[str, Rows]] = [(qname, frozenset())]
            if options:
                choices.append((qname, frozenset({()})))
        else:
            choices = [(qname, frozenset())]
            choices.extend(
                (qname, frozenset({row}))
                for row in sorted(options, key=_row_key)
            )
        per_input.append(choices)
    if not per_input:
        return [{}]
    return [dict(combo) for combo in itertools.product(*per_input)]


def initial_states(composition: Composition,
                   databases: Mapping[str, Instance],
                   domain: Domain) -> list[GlobalState]:
    """All legal initial snapshots over the given per-peer databases.

    State, action, previous-input relations and queues start empty
    (Definition 2.6); each peer's initial input is any legal choice
    against its options in the initial configuration.
    """
    data_parts: dict[str, Rows] = {}
    for peer in composition.peers:
        db = databases.get(peer.name, Instance())
        declared = {s.name for s in peer.database}
        unknown = set(db.relations()) - declared
        if unknown:
            raise SpecificationError(
                f"database for peer {peer.name!r} mentions undeclared "
                f"relations {sorted(unknown)}"
            )
        for sym in peer.database:
            data_parts[f"{peer.name}.{sym.name}"] = db[sym.name]
    core = GlobalState(
        data=Instance(data_parts),
        queues=empty_queues(composition),
        mover=None,
    )
    # choose initial inputs peer by peer (options depend only on the
    # database in the empty initial configuration, so order is irrelevant)
    states = [core]
    for peer in composition.peers:
        expanded: list[GlobalState] = []
        for st in states:
            for choice in input_choices(composition, st, peer, domain):
                expanded.append(
                    GlobalState(
                        data=st.data.merged(Instance(choice)),
                        queues=st.queues,
                        mover=None,
                    )
                )
        states = expanded
    return states


def _resolve_flat_sends(
    candidates: Rows, semantics: ChannelSemantics
) -> list[tuple[frozenset | None, bool]]:
    """Outcomes of a flat send: (message rows or None, error-flag)."""
    if not candidates:
        return [(None, False)]
    if len(candidates) == 1:
        (row,) = candidates
        return [(frozenset({row}), False)]
    if semantics.flat_send is FlatSendDiscipline.DETERMINISTIC_ERROR:
        return [(None, True)]
    return [
        (frozenset({row}), False)
        for row in sorted(candidates, key=_row_key)
    ]


def _delivery_branches(
    messages: list[tuple[Channel, frozenset]],
    semantics: ChannelSemantics,
) -> list[list[tuple[Channel, frozenset, bool]]]:
    """All loss/delivery combinations for the messages sent this step.

    Each branch lists ``(channel, message, delivered)``; lossy channels may
    drop, perfect channels always deliver.
    """
    per_message: list[list[tuple[Channel, frozenset, bool]]] = []
    for channel, message in messages:
        lossy = (
            semantics.nested_is_lossy() if channel.nested
            else semantics.flat_is_lossy()
        )
        outcomes = [(channel, message, True)]
        if lossy:
            outcomes.append((channel, message, False))
        per_message.append(outcomes)
    if not per_message:
        return [[]]
    return [list(combo) for combo in itertools.product(*per_message)]


def peer_successors(composition: Composition, state: GlobalState,
                    mover: str, domain: Domain,
                    semantics: ChannelSemantics) -> list[GlobalState]:
    """All legal successors of *state* when peer *mover* moves."""
    peer = composition.peer(mover)
    rules = composition.qualified_rules(mover)
    view = snapshot_view(state, composition)

    def q(name: str) -> str:
        return f"{mover}.{name}"

    updates: dict[str, Rows] = {}

    # state relations: insert/delete with no-op conflict semantics
    for sym in peer.states:
        insert = _find_rule(rules, RuleKind.INSERT, q(sym.name))
        delete = _find_rule(rules, RuleKind.DELETE, q(sym.name))
        if insert is None and delete is None:
            continue
        ins = _rule_answers(insert, view, domain)
        dele = _rule_answers(delete, view, domain)
        old = state.data[q(sym.name)]
        updates[q(sym.name)] = frozenset(
            (ins - dele) | (old & ins & dele) | (old - ins - dele)
        )

    # actions are recomputed on every move
    for sym in peer.actions:
        rule = _find_rule(rules, RuleKind.ACTION, q(sym.name))
        updates[q(sym.name)] = _rule_answers(rule, view, domain)

    # previous inputs: replaced by the current input when non-empty
    for sym in peer.inputs:
        current = state.data[q(sym.name)]
        if current:
            updates[q(prev_name(sym.name))] = current

    # send rules
    flat_outcomes: list[list[tuple[Channel, frozenset | None, bool]]] = []
    nested_messages: list[tuple[Channel, frozenset]] = []
    for sym in peer.out_queues:
        channel = composition.channel(sym.name)
        rule = _find_rule(rules, RuleKind.SEND, q(sym.name))
        produced = _rule_answers(rule, view, domain)
        if sym.nested:
            if produced or (
                rule is not None
                and semantics.nested_empty_send is NestedEmptySend.ENQUEUE
            ):
                nested_messages.append((channel, frozenset(produced)))
        else:
            outcomes = _resolve_flat_sends(produced, semantics)
            flat_outcomes.append([
                (channel, message, error) for message, error in outcomes
            ])

    # queue mechanics: dequeue consumed in-queues first
    base_queues = state.queue_map()
    consumed = peer.consumed_in_queues()
    for channel in composition.channels:
        if channel.receiver == mover and channel.name in consumed:
            contents = base_queues[channel.name]
            if contents:
                base_queues[channel.name] = contents[1:]

    successors: list[GlobalState] = []
    flat_combos = (
        [list(combo) for combo in itertools.product(*flat_outcomes)]
        if flat_outcomes else [[]]
    )
    for flat_combo in flat_combos:
        error_updates: dict[str, Rows] = {}
        messages: list[tuple[Channel, frozenset]] = []
        for channel, message, error in flat_combo:
            error_updates[q(error_name(channel.name))] = (
                frozenset({()}) if error else frozenset()
            )
            if message is not None:
                messages.append((channel, message))
        messages.extend(nested_messages)
        messages.sort(key=lambda cm: cm[0].name)
        sent = frozenset(channel.name for channel, _m in messages)

        for branch in _delivery_branches(messages, semantics):
            queues = dict(base_queues)
            enqueued: set[str] = set()
            for channel, message, delivered in branch:
                if not delivered:
                    continue
                contents = queues[channel.name]
                if (semantics.queue_bound is not None
                        and len(contents) >= semantics.queue_bound):
                    continue  # full queue: message dropped
                queues[channel.name] = contents + (message,)
                enqueued.add(channel.name)

            data0 = state.data.merged(
                Instance({**updates, **error_updates})
            )
            candidate = GlobalState(
                data=data0,
                queues=freeze_queues(queues),
                mover=mover,
                enqueued=frozenset(enqueued),
                sent=sent,
            )
            # the successor's input is chosen against the successor's
            # own options (Definition 2.3)
            for choice in input_choices(composition, candidate, peer,
                                        domain):
                successors.append(
                    GlobalState(
                        data=data0.merged(Instance(choice)),
                        queues=candidate.queues,
                        mover=mover,
                        enqueued=candidate.enqueued,
                        sent=sent,
                    )
                )
    return successors


def successors(composition: Composition, state: GlobalState,
               domain: Domain, semantics: ChannelSemantics,
               include_environment: bool = True,
               env_max_nested_rows: int = 1,
               env_one_action_per_move: bool = False,
               env_value_domain: Domain | None = None) -> list[GlobalState]:
    """All legal successors of *state* (any peer may move).

    For open compositions, environment moves are included unless
    *include_environment* is False; the ``env_*`` knobs bound the
    environment's nondeterminism (see
    :func:`~repro.runtime.environment.environment_successors`).
    """
    out: list[GlobalState] = []
    for peer in composition.peers:
        out.extend(
            peer_successors(composition, state, peer.name, domain,
                            semantics)
        )
    if include_environment and not composition.is_closed:
        from .environment import environment_successors
        out.extend(
            environment_successors(
                composition, state, domain, semantics,
                max_nested_rows=env_max_nested_rows,
                one_action_per_move=env_one_action_per_move,
                value_domain=env_value_domain,
            )
        )
    return out
