"""Runs of a composition (Definition 2.6) and simulation helpers.

An infinite run is represented as a *lasso*: a finite prefix of snapshots
followed by a cycle repeated forever.  Counterexamples produced by the
verifier are lassos; the :func:`simulate` helper generates random finite
run prefixes for testing and exploration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence

from ..errors import SimulationError
from ..fo.instance import Instance
from ..fo.terms import Value
from ..spec.channels import ChannelSemantics, DECIDABLE_DEFAULT
from ..spec.composition import Composition
from .state import GlobalState, snapshot_view
from .step import Domain, _row_key, initial_states, successors


@dataclass(frozen=True)
class Lasso:
    """An ultimately periodic run: ``prefix . cycle^omega``.

    ``prefix`` may be empty; ``cycle`` is non-empty.  ``snapshot(i)``
    returns the i-th snapshot of the infinite unfolding.
    """

    prefix: tuple[GlobalState, ...]
    cycle: tuple[GlobalState, ...]

    def __post_init__(self) -> None:
        if not self.cycle:
            raise SimulationError("a lasso needs a non-empty cycle")

    def snapshot(self, i: int) -> GlobalState:
        if i < len(self.prefix):
            return self.prefix[i]
        return self.cycle[(i - len(self.prefix)) % len(self.cycle)]

    def __len__(self) -> int:
        return len(self.prefix) + len(self.cycle)

    def states(self) -> tuple[GlobalState, ...]:
        return self.prefix + self.cycle

    def active_domain(self) -> frozenset[Value]:
        """``Dom(rho)``: all values occurring anywhere in the run."""
        dom: set[Value] = set()
        for state in self.states():
            dom |= state.active_domain()
        return frozenset(dom)

    def movers(self) -> tuple[str | None, ...]:
        return tuple(s.mover for s in self.states())

    def describe(self, composition: Composition,
                 relations: Sequence[str] | None = None,
                 max_rows: int = 6) -> str:
        """A human-readable rendering of the lasso, for counterexamples."""
        lines: list[str] = []
        for idx, state in enumerate(self.states()):
            marker = "  (cycle)" if idx >= len(self.prefix) else ""
            lines.append(
                f"step {idx}: mover={state.mover or '-'}{marker}"
            )
            view = snapshot_view(state, composition)
            for rel in (relations or view.relations()):
                rows = view[rel]
                if not rows:
                    continue
                shown = sorted(rows, key=_row_key)[:max_rows]
                suffix = " ..." if len(rows) > max_rows else ""
                lines.append(f"    {rel} = {shown}{suffix}")
            queued = {
                name: [sorted(m, key=_row_key) for m in contents]
                for name, contents in state.queues if contents
            }
            if queued:
                lines.append(f"    queues: {queued}")
        return "\n".join(lines)


def simulate(composition: Composition,
             databases: Mapping[str, Instance],
             domain: Domain,
             steps: int,
             semantics: ChannelSemantics = DECIDABLE_DEFAULT,
             seed: int | None = None,
             choose: Callable[[list[GlobalState]], GlobalState] | None = None,
             ) -> list[GlobalState]:
    """Generate one random run prefix of the given length.

    ``choose`` overrides the uniform random successor choice (useful for
    steering the simulation in tests).
    """
    rng = random.Random(seed)
    pick = choose or (lambda options: rng.choice(options))
    starts = initial_states(composition, databases, domain)
    if not starts:
        raise SimulationError("no initial states")
    current = pick(starts)
    trace = [current]
    for _ in range(steps):
        options = successors(composition, current, domain, semantics)
        if not options:
            raise SimulationError("deadlock: no successor states")
        current = pick(options)
        trace.append(current)
    return trace


def validate_lasso(composition: Composition,
                   databases: Mapping[str, Instance],
                   domain: Domain,
                   lasso: Lasso,
                   semantics: ChannelSemantics = DECIDABLE_DEFAULT,
                   include_environment: bool = True,
                   env_one_action_per_move: bool = True,
                   env_value_domain: Domain | None = None,
                   ) -> list[str]:
    """Replay a lasso through the legal-successor relation.

    Returns a list of problems (empty iff the lasso is a genuine run):
    the first snapshot must be a legal initial snapshot, every
    consecutive pair must be a legal transition, and the cycle must close
    back onto its own first snapshot.  Used by the counterexample-replay
    tests to guard against prefix/cycle-splicing bugs in the emptiness
    search, and available to callers that want defence-in-depth on
    verifier output.

    The ``env_*`` knobs must match the ones the verifier searched with,
    otherwise environment moves of an open composition are judged
    against a different environment.
    """
    problems: list[str] = []
    states = lasso.states()
    if not states:
        return ["empty lasso"]

    starts = initial_states(composition, databases, domain)
    if states[0] not in starts:
        problems.append("first snapshot is not a legal initial snapshot")

    def succs(state: GlobalState) -> list[GlobalState]:
        return successors(
            composition, state, domain, semantics,
            include_environment=include_environment,
            env_one_action_per_move=env_one_action_per_move,
            env_value_domain=env_value_domain,
        )

    for idx in range(len(states) - 1):
        if states[idx + 1] not in succs(states[idx]):
            problems.append(
                f"snapshot {idx + 1} is not a legal successor of "
                f"snapshot {idx}"
            )
    if lasso.cycle[0] not in succs(lasso.cycle[-1]):
        problems.append("the cycle does not close back onto its start")
    return problems


def reachable_states(composition: Composition,
                     databases: Mapping[str, Instance],
                     domain: Domain,
                     semantics: ChannelSemantics = DECIDABLE_DEFAULT,
                     limit: int = 100_000) -> set[GlobalState]:
    """The full reachable snapshot set (breadth-first, bounded by *limit*).

    Raises :class:`SimulationError` when the bound is exceeded -- the
    composition is then too large for explicit exploration with this
    domain, or the queues are effectively unbounded.
    """
    seen: set[GlobalState] = set()
    frontier = list(initial_states(composition, databases, domain))
    seen.update(frontier)
    while frontier:
        state = frontier.pop()
        for nxt in successors(composition, state, domain, semantics):
            if nxt not in seen:
                if len(seen) >= limit:
                    raise SimulationError(
                        f"reachable-state limit {limit} exceeded"
                    )
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def iterate_snapshot_views(composition: Composition,
                           states: Sequence[GlobalState]
                           ) -> Iterator[Instance]:
    """Snapshot views of a sequence of states (convenience for tests)."""
    for state in states:
        yield snapshot_view(state, composition)
