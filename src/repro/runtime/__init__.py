"""Operational semantics: snapshots, transitions, runs, environments."""

from .state import (
    GlobalState, Message, QueueContents, empty_queues, first_message,
    freeze_queues, last_message, snapshot_view,
)
from .step import (
    clear_rule_cache, initial_states, input_choices, peer_successors,
    rule_cache_delta, rule_cache_info, successors,
)
from .environment import environment_successors
from .run import (
    Lasso, iterate_snapshot_views, reachable_states, simulate,
    validate_lasso,
)

__all__ = [
    "GlobalState", "Lasso", "Message", "QueueContents", "clear_rule_cache",
    "empty_queues", "environment_successors", "first_message",
    "freeze_queues", "initial_states", "input_choices",
    "iterate_snapshot_views", "last_message", "peer_successors",
    "reachable_states", "rule_cache_delta", "rule_cache_info",
    "simulate", "snapshot_view",
    "successors", "validate_lasso",
]
