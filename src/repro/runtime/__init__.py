"""Operational semantics: snapshots, transitions, runs, environments."""

from .state import (
    GlobalState, Message, QueueContents, empty_queues, first_message,
    freeze_queues, last_message, snapshot_view,
)
from .step import initial_states, input_choices, peer_successors, successors
from .environment import environment_successors
from .run import Lasso, iterate_snapshot_views, reachable_states, simulate

__all__ = [
    "GlobalState", "Lasso", "Message", "QueueContents", "empty_queues",
    "environment_successors", "first_message", "freeze_queues",
    "initial_states", "input_choices", "iterate_snapshot_views",
    "last_message", "peer_successors", "reachable_states", "simulate",
    "snapshot_view", "successors",
]
