"""Post's Correspondence Problem instances and a bounded solver.

PCP is the other classic undecidable problem the paper's frontier
theorems lean on (emptiness tests and non-ground nested atoms let
specifications compare unboundedly long strings).  This module provides
the problem itself: instances, a bounded-depth solver, and witnesses --
used by the frontier demonstrations and their tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..errors import SpecificationError


@dataclass(frozen=True)
class PCPInstance:
    """A PCP instance: pairs of words over a finite alphabet."""

    pairs: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        if not self.pairs:
            raise SpecificationError("a PCP instance needs at least one pair")
        for top, bottom in self.pairs:
            if not top and not bottom:
                raise SpecificationError("empty/empty pair is not allowed")

    def alphabet(self) -> frozenset[str]:
        out: set[str] = set()
        for top, bottom in self.pairs:
            out.update(top)
            out.update(bottom)
        return frozenset(out)

    def apply(self, indices: Sequence[int]) -> tuple[str, str]:
        """The (top, bottom) strings spelled by an index sequence."""
        top = "".join(self.pairs[i][0] for i in indices)
        bottom = "".join(self.pairs[i][1] for i in indices)
        return top, bottom

    def is_solution(self, indices: Sequence[int]) -> bool:
        if not indices:
            return False
        top, bottom = self.apply(indices)
        return top == bottom


def solve_bounded(instance: PCPInstance, max_length: int = 12
                  ) -> tuple[int, ...] | None:
    """Search for a solution of at most *max_length* indices.

    Depth-first over partial matches: a partial index sequence is viable
    only while one string is a prefix of the other.  Returns the first
    solution found, or None if none exists within the bound (which, PCP
    being undecidable, proves nothing about longer solutions).
    """
    n = len(instance.pairs)

    def extend(indices: list[int], top: str, bottom: str
               ) -> tuple[int, ...] | None:
        if indices and top == bottom:
            return tuple(indices)
        if len(indices) >= max_length:
            return None
        for i in range(n):
            t = top + instance.pairs[i][0]
            b = bottom + instance.pairs[i][1]
            if t.startswith(b) or b.startswith(t):
                indices.append(i)
                found = extend(indices, t, b)
                if found is not None:
                    return found
                indices.pop()
        return None

    return extend([], "", "")


def enumerate_solutions(instance: PCPInstance, max_length: int = 8
                        ) -> Iterator[tuple[int, ...]]:
    """All solutions up to *max_length* indices (exhaustive)."""
    n = len(instance.pairs)

    def walk(indices: list[int], top: str, bottom: str):
        if indices and top == bottom:
            yield tuple(indices)
        if len(indices) >= max_length:
            return
        for i in range(n):
            t = top + instance.pairs[i][0]
            b = bottom + instance.pairs[i][1]
            if t.startswith(b) or b.startswith(t):
                indices.append(i)
                yield from walk(indices, t, b)
                indices.pop()

    yield from walk([], "", "")


#: A classic solvable instance: solution (0, 1, 2) or similar.
SOLVABLE = PCPInstance((("a", "baa"), ("ab", "aa"), ("bba", "bb")))

#: An instance with no solution (mismatched first letters everywhere).
UNSOLVABLE = PCPInstance((("ab", "ba"), ("ba", "ab")))
