"""Executable gadget for the undecidability frontier (Theorem 3.7 family).

Theorems 3.7/3.8 prove verification undecidable for perfect (respectively
deterministic-send lossy) 1-bounded flat queues, by reduction from the
halting problem for two-counter machines.  The extended report's exact
encodings are not public; this module provides an *executable* encoding
with the same computational content, so the frontier can be demonstrated
empirically:

* :func:`machine_composition` compiles a :class:`CounterMachine` into a
  two-peer composition.  The ``Driver`` peer holds the control state and
  the two counters as successor chains in its state relations; its user
  supplies the data the simulation needs (a fresh chain value for each
  increment, the claimed predecessor pair for each decrement).  The
  ``Clock`` peer paces the simulation through a ``tick``/``tock``
  handshake over flat 1-bounded queues, so machine steps only happen when
  the handshake message arrives -- the role perfect channels play in the
  paper's reduction.
* :func:`halting_search_property` builds the property ``phi`` such that a
  violation of ``phi`` is exactly a *faithful* halting computation: the
  negation of ``phi`` conjoins the validation conditions (fresh values
  are really fresh; claimed predecessors really are the top of the
  chain) with ``F halted``.

Running the verifier on ``(composition, phi)`` with a data domain of at
least ``peak_space + 1`` fresh values finds a counterexample iff the
machine halts within that space (the demonstrated direction of the
reduction).  For non-halting machines the bounded-domain search is
exhausted without a witness.

Honest scope note: the validation payloads quantify variables that touch
state atoms, which exceeds the *literal* input-bounded property fragment
(the peers themselves are input-bounded).  The paper's non-public
encoding stays inside the fragment with a more intricate construction;
what is preserved here -- and what the benchmarks demonstrate -- is the
executable direction: halting computations are exactly the property
violations.
"""

from __future__ import annotations

from ..fo import formulas as fo
from ..fo.instance import Instance
from ..ltl.formulas import LTLFormula, land, lfinally, lglobally, lnot
from ..ltlfo.formulas import LTLFOSentence, lift_fo
from ..spec.composition import Composition
from ..spec.peer import Peer, PeerBuilder
from .minsky import HALT, CounterMachine, Inc, Test

#: Chain-bottom marker (counter value 0 = top points at the bottom).
BOTTOM = "@bot"

DRIVER = "Driver"
CLOCK = "Clock"


def _state_const(state: str) -> str:
    return f"@{state}"


def _disj(parts: list[fo.Formula]) -> fo.Formula:
    return fo.disj(*parts) if parts else fo.FALSE


def _inc_states(machine: CounterMachine) -> list[str]:
    return sorted(
        s for s, i in machine.program.items() if isinstance(i, Inc)
    )


def _test_states(machine: CounterMachine, counter: int) -> list[str]:
    return sorted(
        s for s, i in machine.program.items()
        if isinstance(i, Test) and i.counter == counter
    )


def driver_peer(machine: CounterMachine) -> Peer:
    """The peer simulating *machine* (control state + counter chains)."""
    v = fo.Var
    at = lambda s: fo.atom("at", _state_const(s))        # noqa: E731
    tick = fo.Atom("tick", ())

    builder = (
        PeerBuilder(DRIVER)
        .state("at", 1)                 # current control state (constant)
        .state("initialized", 0)
        .state("halted", 0)
        .state("top1", 1)
        .state("top2", 1)
        .state("succ1", 2)
        .state("succ2", 2)
        .input("fresh", 1)              # chain value for increments
        .input("dec1", 2)               # claimed (predecessor, top) for c1
        .input("dec2", 2)
        .flat_in_queue("tick", 0)
        .flat_out_queue("tock", 0)
    )

    init = fo.Atom("initialized", ())
    not_init = fo.neg(init)

    # ---- input option rules (exists*, ground state atoms only) --------
    inc_guard = _disj([at(s) for s in _inc_states(machine)])
    builder.input_rule("fresh", ["v"],
                       fo.conj(inc_guard, init) if not isinstance(
                           inc_guard, fo.FalseF) else fo.FALSE)
    for counter in (1, 2):
        test_guard = _disj([at(s) for s in _test_states(machine, counter)])
        builder.input_rule(
            f"dec{counter}", ["y", "t"],
            fo.conj(test_guard, init) if not isinstance(
                test_guard, fo.FalseF) else fo.FALSE,
        )

    # ---- helper condition fragments -----------------------------------
    some_fresh = fo.exists(["v"], fo.atom("fresh", v("v")))

    def some_dec(counter: int) -> fo.Formula:
        return fo.exists(
            ["y", "t"], fo.atom(f"dec{counter}", v("y"), v("t"))
        )

    def fired(state: str) -> fo.Formula:
        """The condition under which *state*'s instruction executes."""
        instr = machine.program[state]
        if isinstance(instr, Inc):
            return fo.conj(at(state), tick, some_fresh)
        zero = fo.atom(f"top{instr.counter}", BOTTOM)
        return fo.conj(at(state), tick,
                       fo.disj(zero, some_dec(instr.counter)))

    # ---- control-state transitions -------------------------------------
    # insert at(s): initialization plus every transition into s
    at_insert: list[fo.Formula] = [
        fo.conj(fo.eq(v("s"), _state_const(machine.initial)), not_init)
    ]
    at_delete: list[fo.Formula] = []
    for state, instr in sorted(machine.program.items()):
        if isinstance(instr, Inc):
            at_insert.append(fo.conj(
                fo.eq(v("s"), _state_const(instr.target)), fired(state)
            ))
        else:
            zero = fo.atom(f"top{instr.counter}", BOTTOM)
            at_insert.append(fo.conj(
                fo.eq(v("s"), _state_const(instr.on_zero)),
                at(state), tick, zero,
            ))
            at_insert.append(fo.conj(
                fo.eq(v("s"), _state_const(instr.on_positive)),
                at(state), tick, some_dec(instr.counter),
            ))
        at_delete.append(fo.conj(fo.eq(v("s"), _state_const(state)),
                                 fired(state)))
    builder.insert_rule("at", ["s"], _disj(at_insert))
    builder.delete_rule("at", ["s"], _disj(at_delete))

    # ---- initialization and halting -----------------------------------
    builder.insert_rule("initialized", [], fo.TRUE)
    builder.insert_rule("halted", [], at(HALT))

    # ---- counter chains -------------------------------------------------
    for counter in (1, 2):
        top = f"top{counter}"
        succ = f"succ{counter}"
        incs = [s for s in _inc_states(machine)
                if machine.program[s].counter == counter]
        tests = _test_states(machine, counter)
        inc_fires = _disj([fired(s) for s in incs])
        dec_fires = _disj([
            fo.conj(at(s), tick) for s in tests
        ])

        top_insert: list[fo.Formula] = [
            fo.conj(fo.eq(v("x"), BOTTOM), not_init)
        ]
        top_delete: list[fo.Formula] = []
        succ_insert: list[fo.Formula] = []
        succ_delete: list[fo.Formula] = []
        if incs:
            # new top is the fresh value; chain edge old-top -> fresh
            top_insert.append(fo.conj(fo.atom("fresh", v("x")), inc_fires))
            top_delete.append(fo.conj(
                fo.atom(top, v("x")), some_fresh, inc_fires,
            ))
            succ_insert.append(fo.conj(
                fo.atom(top, v("x")), fo.atom("fresh", v("y")), inc_fires,
            ))
        if tests:
            # decrement: the claimed predecessor becomes the top
            top_insert.append(fo.conj(
                fo.exists(["t"], fo.atom(f"dec{counter}", v("x"), v("t"))),
                dec_fires,
            ))
            top_delete.append(fo.conj(
                fo.exists(["y"], fo.atom(f"dec{counter}", v("y"), v("x"))),
                dec_fires,
            ))
            succ_delete.append(fo.conj(
                fo.atom(f"dec{counter}", v("x"), v("y")), dec_fires,
            ))
        builder.insert_rule(top, ["x"], _disj(top_insert))
        if top_delete:
            builder.delete_rule(top, ["x"], _disj(top_delete))
        if succ_insert:
            builder.insert_rule(succ, ["x", "y"], _disj(succ_insert))
        if succ_delete:
            builder.delete_rule(succ, ["x", "y"], _disj(succ_delete))

    # ---- handshake ------------------------------------------------------
    builder.send_rule("tock", [], fo.conj(tick, init))
    return builder.build()


def clock_peer() -> Peer:
    """The pacing peer: sends a tick, waits for the tock, repeats."""
    return (
        PeerBuilder(CLOCK)
        .state("started", 0)
        .flat_in_queue("tock", 0)
        .flat_out_queue("tick", 0)
        .insert_rule("started", [], fo.TRUE)
        .send_rule("tick", [], fo.disj(
            fo.neg(fo.Atom("started", ())), fo.Atom("tock", ()),
        ))
        .build()
    )


def machine_composition(machine: CounterMachine) -> Composition:
    """The two-peer composition simulating *machine*."""
    return Composition([driver_peer(machine), clock_peer()])


def machine_databases() -> dict[str, Instance]:
    """The gadget uses no databases."""
    return {}


def _validation_body(machine: CounterMachine) -> LTLFormula:
    """G of the closed FO validation conditions (faithful simulation)."""
    v = fo.Var
    at = lambda s: fo.atom("Driver.at", _state_const(s))  # noqa: E731

    conditions: list[fo.Formula] = []

    # V1: increment values are genuinely fresh -- not in any chain, not
    # the bottom marker, and not a control-state constant (so the fresh
    # values of the verification domain are exactly the chain capacity)
    inc_guard = _disj([at(s) for s in _inc_states(machine)])
    if not isinstance(inc_guard, fo.FalseF):
        reserved = [fo.eq(v("fv"), BOTTOM)]
        reserved += [
            fo.eq(v("fv"), _state_const(s)) for s in machine.states()
        ]
        in_some_chain = fo.disj(
            fo.atom("Driver.top1", v("fv")),
            fo.atom("Driver.top2", v("fv")),
            fo.exists(["w"], fo.conj(
                fo.atom("Driver.fresh", v("fv")),  # re-guard for ib shape
                fo.disj(
                    fo.atom("Driver.succ1", v("w"), v("fv")),
                    fo.atom("Driver.succ1", v("fv"), v("w")),
                    fo.atom("Driver.succ2", v("w"), v("fv")),
                    fo.atom("Driver.succ2", v("fv"), v("w")),
                ),
            )),
            *reserved,
        )
        conditions.append(fo.forall(
            ["fv"],
            fo.implies(
                fo.conj(fo.atom("Driver.fresh", v("fv")), inc_guard),
                fo.neg(in_some_chain),
            ),
        ))

    # V2: claimed decrement pairs are real chain tops
    for counter in (1, 2):
        tests = _test_states(machine, counter)
        if not tests:
            continue
        guard = _disj([at(s) for s in tests])
        conditions.append(fo.forall(
            ["dy", "dt"],
            fo.implies(
                fo.conj(
                    fo.atom(f"Driver.dec{counter}", v("dy"), v("dt")),
                    guard,
                ),
                fo.conj(
                    fo.atom(f"Driver.succ{counter}", v("dy"), v("dt")),
                    fo.atom(f"Driver.top{counter}", v("dt")),
                ),
            ),
        ))

    return lglobally(lift_fo(fo.conj(*conditions)))


def halting_search_property(machine: CounterMachine) -> LTLFOSentence:
    """The property whose violations are faithful halting computations.

    ``phi = ~(validation & F halted)``; the verifier's counterexample
    search for ``phi`` looks for runs satisfying
    ``validation & F halted``.
    """
    halted = lift_fo(fo.Atom("Driver.halted", ()))
    negated = land(_validation_body(machine), lfinally(halted))
    return LTLFOSentence((), lnot(negated))
