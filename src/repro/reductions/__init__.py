"""Executable material for the undecidability frontier (Sections 3.2/4/5)."""

from .minsky import (
    CounterMachine, HALT, Inc, MachineRun, Test, count_up_down,
    diverging_machine, ping_pong_machine, run_machine, transfer_machine,
)
from .pcp import (
    PCPInstance, SOLVABLE, UNSOLVABLE, enumerate_solutions, solve_bounded,
)
from .halting import (
    BOTTOM, clock_peer, driver_peer, halting_search_property,
    machine_composition, machine_databases,
)
from .frontier import (
    deterministic_send_gadget, emptiness_test_gadget,
    nonground_nested_gadget, nonground_nested_peer,
)

__all__ = [
    "BOTTOM", "CounterMachine", "HALT", "Inc", "MachineRun", "PCPInstance",
    "SOLVABLE", "Test", "UNSOLVABLE", "clock_peer", "count_up_down",
    "deterministic_send_gadget", "diverging_machine", "driver_peer",
    "emptiness_test_gadget", "enumerate_solutions",
    "halting_search_property", "machine_composition", "machine_databases",
    "nonground_nested_gadget", "nonground_nested_peer",
    "ping_pong_machine", "run_machine", "solve_bounded", "transfer_machine",
]
