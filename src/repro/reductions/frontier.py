"""Demonstration gadgets for the remaining frontier theorems.

Each gadget is a small composition + property pinpointing one relaxation
the paper proves fatal:

* :func:`deterministic_send_gadget` -- Theorem 3.8's semantics: flat
  sends with several candidates raise the ``error_Q`` flag instead of
  picking nondeterministically.  The gadget's property watches the flag,
  so its verdict flips with the
  :class:`~repro.spec.channels.FlatSendDiscipline`.
* :func:`emptiness_test_gadget` -- Theorem 3.9's relaxation: a property
  that tests *non-emptiness of a nested message* (``exists x: ?Q(x)``).
  The input-boundedness checker rejects the property (quantified variable
  in a nested-queue atom); with the check disabled, the bounded-domain
  search still runs and distinguishes an empty nested message from no
  message at all -- the distinction that powers the theorem's reduction.
* :func:`nonground_nested_gadget` -- Theorem 3.10's relaxation: an input
  rule with a *non-ground nested in-queue atom*.  The checker rejects the
  peer; the gadget exists to pin the boundary in tests.

Together with :mod:`repro.reductions.halting` (Theorems 3.7/3.8's
halting reductions) these make the undecidability frontier executable:
everything inside the fragment verifies; each single relaxation is either
rejected by the checker or demonstrably simulates unbounded computation.
"""

from __future__ import annotations

from ..fo.instance import Instance
from ..spec.channels import NestedEmptySend
from ..spec.composition import Composition
from ..spec.peer import Peer, PeerBuilder


def deterministic_send_gadget() -> tuple[Composition, dict, str]:
    """(composition, databases, property) for the Theorem 3.8 semantics.

    The shipper's send rule yields one candidate per catalog row; with
    two rows the deterministic-send discipline must raise ``error_ship``.
    The property ``G ~S.error_ship`` is therefore SATISFIED under the
    nondeterministic discipline and VIOLATED under the deterministic one.
    """
    shipper = (
        PeerBuilder("S")
        .database("catalog", 1)
        .input("go", 0)
        .flat_out_queue("ship", 1)
        .input_rule("go", [], "true")
        .send_rule("ship", ["x"], "go & catalog(x)")
        .build()
    )
    receiver = (
        PeerBuilder("R")
        .state("got", 1)
        .flat_in_queue("ship", 1)
        .insert_rule("got", ["x"], "?ship(x)")
        .build()
    )
    composition = Composition([shipper, receiver])
    databases = {"S": Instance({"catalog": [("a",), ("b",)]})}
    prop = "G ~S.error_ship"
    return composition, databases, prop


def emptiness_test_gadget() -> tuple[Composition, dict, str, str]:
    """(composition, databases, ib_property, emptiness_property).

    The reporter peer sends its (possibly empty) ``findings`` relation as
    a nested ``report`` message on every move -- under the paper-faithful
    :data:`~repro.spec.channels.NestedEmptySend.ENQUEUE` semantics, an
    *empty* message is still a message.  The auditor records that a
    report arrived (``heard``) and separately stores its rows.

    ``emptiness_property`` says "every report heard was non-empty"; it
    needs the forbidden test ``exists x: ?report(x)`` and is rejected by
    the input-boundedness checker.  ``ib_property`` is an in-fragment
    approximation ("every stored row is a finding"), illustrating what
    remains expressible.
    """
    reporter = (
        PeerBuilder("P")
        .database("findings", 1)
        .input("publish", 0)
        .nested_out_queue("report", 1)
        .input_rule("publish", [], "true")
        .send_rule("report", ["x"], "publish & findings(x)")
        .build()
    )
    auditor = (
        PeerBuilder("Q")
        .state("heard", 0)
        .state("stored", 1)
        .nested_in_queue("report", 1)
        .insert_rule("heard", [], "~empty_report")
        .insert_rule("stored", ["x"], "?report(x)")
        .build()
    )
    composition = Composition([reporter, auditor])
    databases = {"P": Instance({"findings": []})}  # empty: empty reports!
    ib_property = "forall x: G( Q.stored(x) -> P.findings(x) )"
    emptiness_property = "G( Q.heard -> (exists x: Q.?report(x)) )"
    return composition, databases, ib_property, emptiness_property


def nonground_nested_peer() -> Peer:
    """A peer whose input rule uses a non-ground nested in-queue atom
    (Theorem 3.10's relaxation; rejected by the checker)."""
    return (
        PeerBuilder("N")
        .input("act", 1)
        .nested_in_queue("feed", 1)
        .input_rule("act", ["x"], "?feed(x)")
        .build()
    )


def nonground_nested_gadget() -> Composition:
    """An open composition containing :func:`nonground_nested_peer`."""
    return Composition([nonground_nested_peer()])
