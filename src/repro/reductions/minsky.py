"""Two-counter (Minsky) machines and their interpreter.

The undecidability theorems of Sections 3-5 rest on reductions from the
halting problem for two-counter machines.  This module provides the
machines themselves: a program is a mapping from control states to
instructions, where an instruction either increments a counter and jumps,
or tests a counter -- jumping one way on zero and decrementing-and-jumping
the other way on positive.  Reaching the distinguished ``halt`` state
halts the machine.

The interpreter reports whether the machine halts within a step budget
and how much counter space the run used, which is exactly what the
executable reduction gadgets need to size their data domains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union

from ..errors import SpecificationError

#: The distinguished halting control state.
HALT = "halt"


@dataclass(frozen=True, slots=True)
class Inc:
    """Increment counter ``counter`` (1 or 2) and jump to ``target``."""

    counter: int
    target: str

    def __post_init__(self) -> None:
        if self.counter not in (1, 2):
            raise SpecificationError("counter must be 1 or 2")


@dataclass(frozen=True, slots=True)
class Test:
    """If the counter is zero jump to ``on_zero``; otherwise decrement it
    and jump to ``on_positive``."""

    counter: int
    on_zero: str
    on_positive: str

    def __post_init__(self) -> None:
        if self.counter not in (1, 2):
            raise SpecificationError("counter must be 1 or 2")


Instruction = Union[Inc, Test]

# keep pytest from trying to collect the Test instruction as a test class
Test.__test__ = False  # type: ignore[attr-defined]


@dataclass(frozen=True)
class CounterMachine:
    """A deterministic two-counter machine."""

    program: Mapping[str, Instruction]
    initial: str

    def __post_init__(self) -> None:
        if self.initial != HALT and self.initial not in self.program:
            raise SpecificationError(
                f"initial state {self.initial!r} has no instruction"
            )
        for state, instr in self.program.items():
            if state == HALT:
                raise SpecificationError("the halt state has no instruction")
            targets = (
                (instr.target,) if isinstance(instr, Inc)
                else (instr.on_zero, instr.on_positive)
            )
            for t in targets:
                if t != HALT and t not in self.program:
                    raise SpecificationError(
                        f"state {state!r} jumps to undefined state {t!r}"
                    )

    def states(self) -> tuple[str, ...]:
        return tuple(sorted(self.program)) + (HALT,)


@dataclass(frozen=True)
class MachineRun:
    """Outcome of running a machine for at most ``budget`` steps."""

    halted: bool
    steps: int
    max_c1: int
    max_c2: int
    final_c1: int
    final_c2: int

    @property
    def peak_space(self) -> int:
        """Distinct chain values a faithful simulation needs."""
        return self.max_c1 + self.max_c2


def run_machine(machine: CounterMachine, budget: int = 10_000
                ) -> MachineRun:
    """Execute *machine* for at most *budget* steps."""
    state = machine.initial
    c1 = c2 = 0
    max_c1 = max_c2 = 0
    steps = 0
    while state != HALT and steps < budget:
        instr = machine.program[state]
        if isinstance(instr, Inc):
            if instr.counter == 1:
                c1 += 1
                max_c1 = max(max_c1, c1)
            else:
                c2 += 1
                max_c2 = max(max_c2, c2)
            state = instr.target
        else:
            value = c1 if instr.counter == 1 else c2
            if value == 0:
                state = instr.on_zero
            else:
                if instr.counter == 1:
                    c1 -= 1
                else:
                    c2 -= 1
                state = instr.on_positive
        steps += 1
    return MachineRun(
        halted=state == HALT,
        steps=steps,
        max_c1=max_c1,
        max_c2=max_c2,
        final_c1=c1,
        final_c2=c2,
    )


# -- sample machines ---------------------------------------------------------

def count_up_down(n: int) -> CounterMachine:
    """Increment c1 to *n*, count it back down, halt.  Always halts."""
    program: dict[str, Instruction] = {}
    for i in range(n):
        program[f"up{i}"] = Inc(1, f"up{i + 1}" if i + 1 < n else "down")
    if n == 0:
        program["up0"] = Inc(1, "down")
    program["down"] = Test(1, HALT, "down")
    return CounterMachine(program, "up0")


def transfer_machine(n: int) -> CounterMachine:
    """c1 := n; move c1 into c2; drain c2; halt.  Always halts."""
    program: dict[str, Instruction] = {}
    for i in range(n):
        program[f"load{i}"] = Inc(1, f"load{i + 1}" if i + 1 < n else "mv")
    program["mv"] = Test(1, "drain", "mv_inc")
    program["mv_inc"] = Inc(2, "mv")
    program["drain"] = Test(2, HALT, "drain")
    return CounterMachine(program, "load0" if n > 0 else "mv")


def diverging_machine() -> CounterMachine:
    """Increments c1 forever.  Never halts, uses unbounded space."""
    return CounterMachine({"loop": Inc(1, "loop")}, "loop")


def ping_pong_machine() -> CounterMachine:
    """Bounces one token between the counters forever.  Never halts,
    uses bounded space (so even an unbounded-domain search would spin)."""
    return CounterMachine({
        "start": Inc(1, "take1"),
        "take1": Test(1, "take2", "put2"),
        "put2": Inc(2, "take1"),
        "take2": Test(2, "take1", "put1"),
        "put1": Inc(1, "take2"),
    }, "start")
