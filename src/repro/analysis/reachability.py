"""Analyzer pass 3: unreachable states and unused relations.

Builds a *may-be-nonempty* over-approximation of the composition's
relations by a monotone fixpoint:

* database relations, propositional bookkeeping flags (``empty_Q``,
  ``error_Q``), and previous-input relations of available inputs may
  always be nonempty;
* an in-queue may receive a message iff its channel's sender can fire
  the corresponding send rule -- or the sender is the environment (open
  composition), which can always send;
* an input/state/action/out-queue relation may be nonempty once some
  rule targeting it has a *possibly-true* body, where possibly-true is
  the obvious over-approximation (an atom over a may-be-empty relation
  is false; negation, implication, and universal quantification are
  always possibly true).

Because the approximation only ever adds relations, the fixpoint is
reached in at most ``#relations`` rounds, and a state relation that
never enters the set is *provably* never populated in any run over any
database: flagging it is sound (no false positives from abstraction on
the "unreachable" side -- though a reachable-in-the-abstraction state
may still be unreachable in reality).

Findings:

* ``DWV201`` -- a state relation that some rule reads (or deletes) but
  no rule chain can ever populate; every such read is constantly false;
* ``DWV202`` -- a declared database/state/input/action relation that no
  rule of its peer mentions at all (queues are the channel pass's
  business).
"""

from __future__ import annotations

from ..fo import formulas as fo
from ..fo.schema import RelationKind
from ..fo.terms import Const
from ..spec.composition import Composition
from ..spec.peer import Peer
from ..spec.rules import RuleKind
from .diagnostics import Diagnostic, make
from .passes import AnalysisContext


def _may_hold(formula: fo.Formula, available: set[tuple[str, str]],
              peer: str) -> bool:
    """Over-approximate satisfiability given may-be-nonempty relations."""
    if isinstance(formula, fo.TrueF):
        return True
    if isinstance(formula, fo.FalseF):
        return False
    if isinstance(formula, fo.Atom):
        return (peer, formula.rel) in available
    if isinstance(formula, fo.Eq):
        if (isinstance(formula.left, Const)
                and isinstance(formula.right, Const)):
            return formula.left == formula.right
        return True
    if isinstance(formula, fo.Not):
        return True  # ~phi holds on the empty/absent side
    if isinstance(formula, fo.And):
        return all(_may_hold(c, available, peer) for c in formula.children)
    if isinstance(formula, fo.Or):
        return any(_may_hold(c, available, peer) for c in formula.children)
    if isinstance(formula, fo.Implies):
        return True  # false antecedent suffices
    if isinstance(formula, fo.Forall):
        return True  # vacuously true over an empty guard
    if isinstance(formula, fo.Exists):
        return _may_hold(formula.body, available, peer)
    return True


def _seed(composition: Composition) -> set[tuple[str, str]]:
    """Relations that may be nonempty before any rule fires."""
    available: set[tuple[str, str]] = set()
    for peer in composition.peers:
        for sym in peer.local_schema:
            if sym.kind in (RelationKind.DATABASE,
                            RelationKind.QUEUE_STATE,
                            RelationKind.ERROR_FLAG,
                            RelationKind.RECEIVED_FLAG):
                available.add((peer.name, sym.name))
        # propositional inputs without an input rule default to an
        # always-available option (see PeerBuilder.build)
        for inp in peer.inputs:
            if inp.arity == 0 and not peer.rule_for(RuleKind.INPUT,
                                                    inp.name):
                available.add((peer.name, inp.name))
    # environment-sourced channels can always deliver
    for chan in composition.channels:
        if chan.sender is None and chan.receiver is not None:
            available.add((chan.receiver, chan.name))
    return available


def compute_available(composition: Composition) -> set[tuple[str, str]]:
    """The may-be-nonempty fixpoint: pairs ``(peer, local relation name)``."""
    from ..fo.schema import prev_name

    available = _seed(composition)
    channel_receiver = {
        c.name: c.receiver for c in composition.channels
        if c.sender is not None and c.receiver is not None
    }
    changed = True
    while changed:
        changed = False
        for peer in composition.peers:
            for rule in peer.rules:
                key = (peer.name, rule.target)
                if key in available:
                    continue
                if _may_hold(rule.body, available, peer.name):
                    available.add(key)
                    changed = True
                    if rule.kind is RuleKind.INPUT:
                        available.add((peer.name, prev_name(rule.target)))
                    elif rule.kind is RuleKind.SEND:
                        receiver = channel_receiver.get(rule.target)
                        if receiver is not None:
                            available.add((receiver, rule.target))
    return available


def _mentioned(peer: Peer) -> set[str]:
    """Relations some rule of *peer* reads (body) or writes (target)."""
    out: set[str] = set()
    for rule in peer.rules:
        out.add(rule.target)
        out |= fo.relations(rule.body)
    return out


def reachability_pass(ctx: AnalysisContext) -> list[Diagnostic]:
    composition = ctx.composition
    available = compute_available(composition)
    out: list[Diagnostic] = []
    for peer in composition.peers:
        mentioned = _mentioned(peer)
        read = set()
        for rule in peer.rules:
            read |= fo.relations(rule.body)
        for sym in peer.states:
            if (peer.name, sym.name) in available:
                continue
            if sym.name in read or any(
                    r.kind is RuleKind.DELETE and r.target == sym.name
                    for r in peer.rules):
                out.append(make(
                    "DWV201",
                    "no rule chain can ever populate this state "
                    "relation; every test of it is constantly false",
                    where=f"peer {peer.name}", peer=peer.name,
                    subject=sym.name,
                ))
        for sym in (peer.database + peer.states + peer.inputs
                    + peer.actions):
            if sym.name not in mentioned:
                out.append(make(
                    "DWV202",
                    f"declared {sym.kind.value} relation is never "
                    "mentioned by any rule of the peer",
                    where=f"peer {peer.name}", peer=peer.name,
                    subject=sym.name,
                ))
    return out
