"""Analyzer pass 2: dead and shadowed rules.

Detected by a *sound* propositional abstraction of rule bodies:

* every relational atom becomes one proposition keyed by its syntactic
  rendering (two occurrences of the same atom share a proposition);
* equality atoms simplify to true (identical terms) or false (distinct
  constants), otherwise they become propositions;
* every *maximal quantified subformula* becomes one opaque proposition.
  The abstraction never descends into quantifiers: doing so would be
  unsound -- ``(exists x: p(x)) & (exists x: ~p(x))`` is satisfiable
  although its naive propositional skeleton is not.

Any FO model induces a truth assignment over these propositions, so
propositional unsatisfiability implies FO unsatisfiability, and
``a & ~b`` propositionally unsat implies ``a -> b``.  The converse does
not hold: the pass under-reports, never over-reports.  Satisfiability is
decided by enumeration, capped at :data:`MAX_PROPS` distinct
propositions (larger bodies are conservatively assumed satisfiable).

Findings:

* ``DWV101`` -- a rule body that is propositionally unsatisfiable (a
  literal ``false`` body is the idiomatic "never fires" and is skipped);
* ``DWV102`` -- an insert/delete pair for the same state where one body
  implies the other: under the no-op conflict semantics of
  Definition 2.3 (a tuple in both the insert and the delete set keeps
  its old value) the implied rule can never have an effect;
* ``DWV103`` -- a disjunct implied by an earlier disjunct of the same
  ``Or``; the later branch adds nothing.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ..errors import FormulaError
from ..fo import formulas as fo
from ..fo.formulas import substitute
from ..spec.rules import Rule, RuleKind
from .diagnostics import Diagnostic, make
from .passes import AnalysisContext

#: Enumeration cap: bodies inducing more propositions are assumed sat.
MAX_PROPS = 16

# Skeletons are nested tuples: ("true",), ("false",), ("prop", key),
# ("not", s), ("and", s...), ("or", s...).


def abstract(formula: fo.Formula) -> tuple:
    """The propositional skeleton of *formula* (see module docstring)."""
    if isinstance(formula, fo.TrueF):
        return ("true",)
    if isinstance(formula, fo.FalseF):
        return ("false",)
    if isinstance(formula, fo.Atom):
        return ("prop", str(formula))
    if isinstance(formula, fo.Eq):
        if formula.left == formula.right:
            return ("true",)
        from ..fo.terms import Const
        if (isinstance(formula.left, Const)
                and isinstance(formula.right, Const)):
            return ("false",)
        return ("prop", str(formula))
    if isinstance(formula, fo.Not):
        return ("not", abstract(formula.body))
    if isinstance(formula, fo.And):
        return ("and",) + tuple(abstract(c) for c in formula.children)
    if isinstance(formula, fo.Or):
        return ("or",) + tuple(abstract(c) for c in formula.children)
    if isinstance(formula, fo.Implies):
        return ("or", ("not", abstract(formula.antecedent)),
                abstract(formula.consequent))
    # maximal quantified subformulas stay opaque (soundness)
    return ("prop", str(formula))


def _props(skeleton: tuple) -> set[str]:
    head = skeleton[0]
    if head == "prop":
        return {skeleton[1]}
    if head in ("true", "false"):
        return set()
    out: set[str] = set()
    for child in skeleton[1:]:
        out |= _props(child)
    return out


def _eval(skeleton: tuple, assignment: dict[str, bool]) -> bool:
    head = skeleton[0]
    if head == "true":
        return True
    if head == "false":
        return False
    if head == "prop":
        return assignment[skeleton[1]]
    if head == "not":
        return not _eval(skeleton[1], assignment)
    if head == "and":
        return all(_eval(c, assignment) for c in skeleton[1:])
    return any(_eval(c, assignment) for c in skeleton[1:])  # "or"


def _assignments(props: list[str]) -> Iterator[dict[str, bool]]:
    for bits in itertools.product((False, True), repeat=len(props)):
        yield dict(zip(props, bits))


def satisfiable(skeleton: tuple) -> bool:
    """Propositional satisfiability; True (= unknown) beyond the cap."""
    props = sorted(_props(skeleton))
    if len(props) > MAX_PROPS:
        return True
    return any(_eval(skeleton, a) for a in _assignments(props))


def implies(a: tuple, b: tuple) -> bool:
    """Propositional ``a -> b`` (False when unknown)."""
    counter = ("and", a, ("not", b))
    props = sorted(_props(counter))
    if len(props) > MAX_PROPS:
        return False
    return not any(_eval(counter, x) for x in _assignments(props))


def _where(peer_name: str, rule: Rule) -> str:
    return f"peer {peer_name}, {rule.kind.value} rule for {rule.target}"


def _rule_label(rule: Rule) -> str:
    return f"{rule.kind.value} rule for {rule.target}"


def _aligned_body(rule: Rule, onto: Rule) -> fo.Formula | None:
    """*rule*'s body with its head variables renamed to *onto*'s."""
    mapping = {
        rv: ov for rv, ov in zip(rule.head, onto.head) if rv != ov
    }
    if not mapping:
        return rule.body
    try:
        return substitute(rule.body, mapping)
    except FormulaError:
        return None  # renaming captured by a quantifier: skip the check


def _check_dead(peer_name: str, rule: Rule,
                out: list[Diagnostic]) -> None:
    if isinstance(rule.body, fo.FalseF):
        return  # the idiomatic explicit "never fires"
    if not satisfiable(abstract(rule.body)):
        out.append(make(
            "DWV101", "rule body is propositionally unsatisfiable",
            where=_where(peer_name, rule), peer=peer_name,
            rule=_rule_label(rule), subject=str(rule),
        ))


def _check_insert_delete(peer_name: str, insert: Rule, delete: Rule,
                         out: list[Diagnostic]) -> None:
    aligned = _aligned_body(delete, insert)
    if aligned is None:
        return
    ins_sk = abstract(insert.body)
    del_sk = abstract(aligned)
    if not satisfiable(ins_sk) or not satisfiable(del_sk):
        return  # dead rules are DWV101's finding
    pairs = [(insert, ins_sk, del_sk, delete),
             (delete, del_sk, ins_sk, insert)]
    for shadowed, sk_a, sk_b, other in pairs:
        if implies(sk_a, sk_b):
            out.append(make(
                "DWV102",
                f"whenever this rule fires, the {other.kind.value} rule "
                f"for {other.target!r} fires on the same tuples, so the "
                "conflict resolves to a no-op",
                where=_where(peer_name, shadowed), peer=peer_name,
                rule=_rule_label(shadowed), subject=str(shadowed),
            ))


def _check_shadowed_disjuncts(peer_name: str, rule: Rule,
                              out: list[Diagnostic]) -> None:
    for node in fo.walk(rule.body):
        if not isinstance(node, fo.Or):
            continue
        skeletons = [abstract(c) for c in node.children]
        for j in range(1, len(skeletons)):
            for i in range(j):
                if implies(skeletons[j], skeletons[i]):
                    out.append(make(
                        "DWV103",
                        f"disjunct {j + 1} is implied by disjunct "
                        f"{i + 1} of the same disjunction",
                        where=_where(peer_name, rule), peer=peer_name,
                        rule=_rule_label(rule),
                        subject=str(node.children[j]),
                    ))
                    break


def peer_rules_diagnostics(peer) -> list[Diagnostic]:
    """The pass's findings for one peer (peer-local by construction).

    Exposed separately so the lint cache can reuse per-peer results:
    every check here reads only the peer's own rules.
    """
    out: list[Diagnostic] = []
    inserts = {r.target: r for r in peer.rules_of_kind(RuleKind.INSERT)}
    deletes = {r.target: r for r in peer.rules_of_kind(RuleKind.DELETE)}
    for rule in peer.rules:
        _check_dead(peer.name, rule, out)
        _check_shadowed_disjuncts(peer.name, rule, out)
    for target in sorted(set(inserts) & set(deletes)):
        _check_insert_delete(peer.name, inserts[target],
                             deletes[target], out)
    return out


def rules_pass(ctx: AnalysisContext) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for peer in ctx.composition.peers:
        out.extend(peer_rules_diagnostics(peer))
    return out
