"""Analyzer pass 1: input-boundedness (Section 3.1).

The actual checker lives in :mod:`repro.ib.checker`; this pass runs it
over every peer and every parsed property, lifts its
:class:`~repro.ib.report.Violation` records into the shared
:class:`~repro.analysis.diagnostics.Diagnostic` type, and -- since the
provenance analysis landed -- attaches to every violation an
*explanation*: where the values of each implicated relation come from
(the exact atom chain when they are invented) and, for unguarded
quantifiers, a minimal-repair suggestion naming the peer's available
guard relations.

The per-peer halves (:func:`peer_ib_diagnostics`) are exposed
separately so the lint cache can reuse one peer's findings while the
rest of the composition changes.
"""

from __future__ import annotations

import dataclasses

from ..ib.checker import check_peer, check_sentence
from ..ltlfo.formulas import LTLFOSentence
from ..spec.composition import Composition
from ..spec.peer import Peer
from .diagnostics import Diagnostic
from .passes import AnalysisContext
from .provenance import compute_provenance, explain_relations, \
    repair_suggestion


def _attach(diag: Diagnostic, lines: list[str]) -> Diagnostic:
    if not lines:
        lines = ["values originate in this rule alone"]
    return dataclasses.replace(diag, provenance=tuple(lines))


def attach_provenance(composition: Composition, facts,
                      violation) -> Diagnostic:
    """Lift one checker Violation into a provenance-carrying Diagnostic.

    This is the single rendering path shared by the lint ib pass and
    ``repro check``, so both commands explain a violation identically.
    """
    diag = violation.as_diagnostic()
    lines = explain_relations(
        composition, facts, diag.peer, violation.relations)
    if violation.code in ("DWV001", "DWV002") and diag.peer is not None:
        lines.append(repair_suggestion(composition.peer(diag.peer)))
    return _attach(diag, lines)


def peer_ib_diagnostics(composition: Composition, peer: Peer,
                        facts, strict: bool = False) -> list[Diagnostic]:
    """One peer's input-boundedness findings, provenance attached.

    *facts* is the :func:`~repro.analysis.provenance.compute_provenance`
    fixpoint of the whole composition (the explanations are the one
    interprocedural ingredient of this otherwise peer-local check).
    """
    return [attach_provenance(composition, facts, violation)
            for violation in check_peer(peer, strict)]


def sentence_ib_diagnostics(composition: Composition, name: str,
                            sentence: LTLFOSentence, facts,
                            strict: bool = False) -> list[Diagnostic]:
    """One property's findings (relations arrive ``Peer.rel``-qualified)."""
    return [attach_provenance(composition, facts, violation)
            for violation in check_sentence(
                sentence, composition.schema,
                where=f"property {name}", strict=strict)]


def ib_pass(ctx: AnalysisContext) -> list[Diagnostic]:
    facts = compute_provenance(ctx.composition)
    out: list[Diagnostic] = []
    for peer in ctx.composition.peers:
        out.extend(peer_ib_diagnostics(
            ctx.composition, peer, facts, ctx.strict))
    for name, sentence in sorted(ctx.sentences.items()):
        out.extend(sentence_ib_diagnostics(
            ctx.composition, name, sentence, facts, ctx.strict))
    return out
