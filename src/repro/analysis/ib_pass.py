"""Analyzer pass 1: input-boundedness (Section 3.1).

A thin adapter: the actual checker lives in :mod:`repro.ib.checker`;
this pass runs it over every peer and every parsed property and lifts
its :class:`~repro.ib.report.Violation` records into the shared
:class:`~repro.analysis.diagnostics.Diagnostic` type, so ``repro lint``
and ``repro check`` report the identical findings.
"""

from __future__ import annotations

from ..ib.checker import check_composition, check_sentence
from ..ib.report import violations_to_diagnostics
from .diagnostics import Diagnostic
from .passes import AnalysisContext


def ib_pass(ctx: AnalysisContext) -> list[Diagnostic]:
    violations = check_composition(ctx.composition, strict=ctx.strict)
    for name, sentence in sorted(ctx.sentences.items()):
        violations.extend(check_sentence(
            sentence, ctx.composition.schema,
            where=f"property {name}", strict=ctx.strict,
        ))
    return violations_to_diagnostics(violations)
