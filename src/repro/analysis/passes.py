"""The pluggable pass framework of the static analyzer.

A pass is a named function from an :class:`AnalysisContext` (the built
composition plus the parsed properties and the channel semantics under
which verification would run) to a list of
:class:`~repro.analysis.diagnostics.Diagnostic` records.  The driver
(:func:`run_passes`) times every pass through the observability layer --
each pass gets its own ``lint:<name>`` phase and a
``lint.<name>.diagnostics`` counter -- so ``repro profile`` style
breakdowns extend to the analyzer.

The default pipeline (:data:`ALL_PASSES`) mirrors the paper's
restrictions in dependency order: input-boundedness first (Section 3.1),
then the purely syntactic rule/reachability/channel analyses, then the
decidability classification that consumes the earlier findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..ltlfo.formulas import LTLFOSentence
from ..obs import PHASE_LINT, counter, lint_phase, phase
from ..spec.channels import ChannelSemantics, DECIDABLE_DEFAULT
from ..spec.composition import Composition
from .diagnostics import Diagnostic, LintReport


@dataclass
class AnalysisContext:
    """Everything a pass may look at.

    ``sentences`` holds the parsed properties (name -> sentence);
    ``strict`` selects the literal Section 3.1 guard definition for the
    input-boundedness pass (no database guards).
    """

    composition: Composition
    sentences: dict[str, LTLFOSentence] = field(default_factory=dict)
    semantics: ChannelSemantics = DECIDABLE_DEFAULT
    strict: bool = False
    #: Filled by the cost pass (see :mod:`repro.analysis.cost`); copied
    #: onto the report by :func:`run_passes`.
    cost_hints: dict = field(default_factory=dict)


PassFn = Callable[[AnalysisContext], list[Diagnostic]]


@dataclass(frozen=True, slots=True)
class AnalysisPass:
    """One named analysis pass."""

    name: str
    run: PassFn
    description: str = ""


def run_passes(ctx: AnalysisContext,
               passes: Sequence[AnalysisPass] | None = None) -> LintReport:
    """Run *passes* (default: all) over *ctx*, timing each one."""
    if passes is None:
        passes = default_passes()
    report = LintReport()
    with phase(PHASE_LINT):
        for p in passes:
            with phase(lint_phase(p.name)):
                found = p.run(ctx)
            counter(f"lint.{p.name}.diagnostics").inc(len(found))
            report.extend(found)
            report.passes_run.append(p.name)
    report.cost_hints = dict(ctx.cost_hints)
    counter("lint.runs").inc()
    counter("lint.diagnostics").inc(len(report.diagnostics))
    return report


_DEFAULT_PASSES: tuple[AnalysisPass, ...] | None = None


def default_passes() -> tuple[AnalysisPass, ...]:
    """The full pipeline, built lazily (the pass modules import this one)."""
    global _DEFAULT_PASSES
    if _DEFAULT_PASSES is None:
        from .channels_pass import channels_pass
        from .cost import CostPass
        from .decidability import decidability_pass
        from .flow import FlowPass
        from .ib_pass import ib_pass
        from .provenance import ProvenancePass
        from .reachability import reachability_pass
        from .rules_pass import rules_pass

        _DEFAULT_PASSES = (
            AnalysisPass("ib", ib_pass,
                         "input-boundedness (Section 3.1)"),
            AnalysisPass("rules", rules_pass,
                         "dead and shadowed rules"),
            AnalysisPass("reachability", reachability_pass,
                         "unreachable states and unused relations"),
            AnalysisPass("channels", channels_pass,
                         "channel discipline (Definition 2.5)"),
            FlowPass,
            ProvenancePass,
            CostPass,
            AnalysisPass("decidability", decidability_pass,
                         "which theorem row applies"),
        )
    return _DEFAULT_PASSES


def __getattr__(name: str):
    if name == "ALL_PASSES":
        return default_passes()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
