"""Analyzer pass 5: the decidability classifier.

Given a composition, its properties, and the channel semantics the
verifier would run under, report which row of the paper's
decidability map applies:

==================================================  ==================
configuration                                       verdict
==================================================  ==================
lossy, k-bounded, input-bounded (incl. the remark   decidable,
after Thm 3.4: perfect *nested* channels are fine)  PSPACE (Thm 3.4)
unbounded queues                                    undecidable
                                                    (Cor 3.6)
perfect (non-lossy) channels, even 1-bounded        undecidable
                                                    (Thm 3.7)
deterministic flat sends (error_Q discipline)       undecidable
                                                    (Thm 3.8)
emptiness tests on nested queues, when empty        undecidable
nested messages are enqueued                        (Thm 3.9)
input-boundedness violated                          undecidable
                                                    (Thm 3.5 / 3.10)
==================================================  ==================

Protocols (Section 4) have their own map: data-agnostic protocols
observed at the recipient are decidable (Theorem 4.2), observed at the
source undecidable (Theorem 4.3); data-aware protocols with
input-bounded guard formulas are decidable (Theorems 4.5/4.6).

``repro verify`` consults :func:`classify` pre-flight and warns before
searching an undecidable configuration (the search stays sound for bug
finding over the bounded domain; only exhaustiveness loses meaning).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..ib.checker import check_composition, check_sentence
from ..ltlfo.formulas import LTLFOSentence
from ..spec.channels import (
    ChannelSemantics, DECIDABLE_DEFAULT, FlatSendDiscipline,
    NestedEmptySend,
)
from ..spec.composition import Composition
from .diagnostics import Diagnostic, make
from .passes import AnalysisContext


@dataclass(frozen=True)
class Classification:
    """Which theorem row applies to one verification configuration."""

    decidable: bool
    theorem: str
    complexity: str | None = None       # decidable rows only
    restriction_violated: str | None = None  # undecidable rows only
    reasons: tuple[str, ...] = field(default_factory=tuple)

    def describe(self) -> str:
        if self.decidable:
            comp = f", {self.complexity}" if self.complexity else ""
            head = f"decidable ({self.theorem}{comp})"
        else:
            head = (f"undecidable ({self.theorem}; violated restriction: "
                    f"{self.restriction_violated})")
        if self.reasons:
            head += ": " + "; ".join(self.reasons)
        return head


def _nested_emptiness_tests(composition: Composition) -> list[str]:
    """``empty_Q`` flags of *nested* in-queues some rule consults."""
    from ..fo.formulas import relations as formula_relations
    from ..fo.schema import empty_name

    hits: list[str] = []
    for peer in composition.peers:
        nested_flags = {
            empty_name(q.name): q.name
            for q in peer.in_queues if q.nested
        }
        if not nested_flags:
            continue
        mentioned: set[str] = set()
        for rule in peer.rules:
            mentioned |= formula_relations(rule.body)
        for flag in sorted(nested_flags):
            if flag in mentioned:
                hits.append(f"{peer.name}.{flag}")
    return hits


def classify(composition: Composition,
             sentences: Iterable[LTLFOSentence] = (),
             semantics: ChannelSemantics = DECIDABLE_DEFAULT,
             strict: bool = False) -> Classification:
    """The decidability verdict for verifying *sentences* of *composition*."""
    if not semantics.bounded:
        return Classification(
            decidable=False, theorem="Corollary 3.6",
            restriction_violated="bounded queues",
            reasons=("queue_bound=None: even lossy unbounded queues make "
                     "verification undecidable",),
        )
    if not semantics.lossy:
        return Classification(
            decidable=False, theorem="Theorem 3.7",
            restriction_violated="lossy channels",
            reasons=(f"perfect {semantics.queue_bound}-bounded channels "
                     "encode two-counter machines",),
        )
    if semantics.flat_send is FlatSendDiscipline.DETERMINISTIC_ERROR:
        return Classification(
            decidable=False, theorem="Theorem 3.8",
            restriction_violated="nondeterministic flat sends",
            reasons=("deterministic flat sends with error_Q flags restore "
                     "enough synchronization for undecidability",),
        )

    violations = check_composition(composition, strict=strict)
    for idx, sentence in enumerate(sentences):
        violations.extend(check_sentence(
            sentence, composition.schema, where=f"property #{idx}",
            strict=strict,
        ))
    if violations:
        theorem = "Theorem 3.5"
        if any(v.code == "DWV005" for v in violations):
            theorem = "Theorems 3.5/3.10"
        return Classification(
            decidable=False, theorem=theorem,
            restriction_violated="input-boundedness",
            reasons=(f"{len(violations)} input-boundedness violation(s); "
                     "run `repro check` for the list",),
        )

    if semantics.nested_empty_send is NestedEmptySend.ENQUEUE:
        tests = _nested_emptiness_tests(composition)
        if tests:
            return Classification(
                decidable=False, theorem="Theorem 3.9",
                restriction_violated=(
                    "no emptiness tests on nested messages"
                ),
                reasons=("empty nested messages are enqueued and "
                         f"{', '.join(tests)} test(s) observe them",),
            )

    arity = composition.max_arity()
    reasons = [
        f"lossy {semantics.queue_bound}-bounded queues, input-bounded "
        "composition and properties",
        f"PSPACE for the fixed maximum arity {arity} "
        "(EXPSPACE when the arity is part of the input)",
    ]
    if semantics.perfect_nested:
        reasons.append("perfect nested channels stay decidable "
                       "(remark after Theorem 3.4)")
    return Classification(
        decidable=True, theorem="Theorem 3.4", complexity="PSPACE",
        reasons=tuple(reasons),
    )


def classify_protocol(protocol) -> Classification:
    """The decidability verdict for protocol compliance (Section 4)."""
    from ..protocols.base import AgnosticProtocol, DataAwareProtocol, Observer

    if isinstance(protocol, AgnosticProtocol):
        if protocol.observer is Observer.SOURCE:
            return Classification(
                decidable=False, theorem="Theorem 4.3",
                restriction_violated="observer at the recipient",
                reasons=("observing send *attempts* at the source defeats "
                         "the lossy-channel abstraction",),
            )
        return Classification(
            decidable=True, theorem="Theorem 4.2", complexity="PSPACE",
            reasons=("data-agnostic protocol observed at the recipient",),
        )
    if isinstance(protocol, DataAwareProtocol):
        return Classification(
            decidable=True, theorem="Theorems 4.5/4.6",
            complexity="PSPACE",
            reasons=("data-aware protocol over the out-queue schema, "
                     "observed at the recipient (guard formulas must be "
                     "input-bounded)",),
        )
    raise TypeError(f"not a protocol: {protocol!r}")


def classification_diagnostics(classification: Classification
                               ) -> list[Diagnostic]:
    """The classifier verdict as ``DWV401``/``DWV402`` diagnostics."""
    if classification.decidable:
        return [make(
            "DWV401", classification.describe(),
            where="configuration", subject=classification.theorem,
        )]
    return [make(
        "DWV402", classification.describe(),
        where="configuration", subject=classification.theorem,
    )]


def decidability_pass(ctx: AnalysisContext) -> list[Diagnostic]:
    classification = classify(
        ctx.composition, list(ctx.sentences.values()), ctx.semantics,
        strict=ctx.strict,
    )
    return classification_diagnostics(classification)
