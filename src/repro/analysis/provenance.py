"""Analyzer pass family DWV6xx: interprocedural data provenance.

A taint-style least fixpoint over the composition tracks, for every
relation of every peer, the *sources* its values may derive from:

* ``"input"`` / ``"prev-input"`` -- user inputs (the values Theorem 3.4
  bounds);
* ``"database"`` -- the fixed finite database;
* ``"env"`` -- payloads of environment-sourced channels (open
  compositions);
* ``"constant"`` -- pinned by an equality with a constant;
* ``"invented"`` -- a rule head variable bound by *no* positive atom:
  the rule may emit arbitrary active-domain values.

The interesting flow is ``"invented"`` crossing a channel: a peer-local
input-boundedness check accepts a quantifier guarded by a flat in-queue
atom (Section 3.1 allows it), but if the *sender* invents the payload
the guard no longer bounds anything -- the bounded-domain argument of
Theorem 3.4 erodes exactly there.  ``DWV601`` flags that situation;
``DWV602`` is the milder note that a channel's payload may carry
invented values at all.

The same fixpoint powers the provenance *explanations* attached to
every DWV0xx input-boundedness diagnostic: :func:`explain_relations`
renders, for each relation implicated in a violation, the source set
and -- when values are invented -- the exact rule chain that invents
them, plus a minimal-repair suggestion naming the peer's available
guard relations.
"""

from __future__ import annotations

from ..fo import formulas as fo
from ..fo.schema import RelationKind, Schema, prev_name
from ..fo.terms import Const, Var
from ..spec.composition import Composition
from ..spec.peer import Peer
from ..spec.rules import Rule, RuleKind
from .dataflow import solve
from .diagnostics import Diagnostic, make
from .passes import AnalysisContext, AnalysisPass

#: Source tags, in severity order ("invented" is the one that bites).
TAGS = ("input", "prev-input", "database", "env", "constant", "invented")

#: Relation kinds whose facts flow through when read positively.
_FLOW_KINDS = frozenset({
    RelationKind.IN_QUEUE, RelationKind.OUT_QUEUE,
    RelationKind.STATE, RelationKind.ACTION,
})


def _positive_literals(formula: fo.Formula, positive: bool = True,
                       atoms: list | None = None,
                       eqs: list | None = None,
                       ) -> tuple[list[fo.Atom], list[fo.Eq]]:
    """Atoms and equalities occurring under positive polarity."""
    if atoms is None:
        atoms = []
    if eqs is None:
        eqs = []
    if isinstance(formula, fo.Atom):
        if positive:
            atoms.append(formula)
    elif isinstance(formula, fo.Eq):
        if positive:
            eqs.append(formula)
    elif isinstance(formula, fo.Not):
        _positive_literals(formula.body, not positive, atoms, eqs)
    elif isinstance(formula, fo.Implies):
        _positive_literals(formula.antecedent, not positive, atoms, eqs)
        _positive_literals(formula.consequent, positive, atoms, eqs)
    elif isinstance(formula, (fo.And, fo.Or)):
        for child in formula.children:
            _positive_literals(child, positive, atoms, eqs)
    elif isinstance(formula, (fo.Exists, fo.Forall)):
        _positive_literals(formula.body, positive, atoms, eqs)
    return atoms, eqs


def _atom_var_names(a: fo.Atom) -> set[str]:
    return {t.name for t in a.terms if isinstance(t, Var)}


def _rule_var_tags(rule: Rule, schema: Schema, peer: str,
                   facts) -> dict[str, frozenset[str]]:
    """Source tags for every variable of *rule*'s body/head.

    A variable bound by a positive atom inherits that atom's sources;
    var-to-var equalities alias; a positive equality with a constant
    pins; anything left is invented.
    """
    atoms, eqs = _positive_literals(rule.body)
    tags: dict[str, set[str]] = {}
    bound: set[str] = set()
    for a in atoms:
        sym = schema.get(a.rel)
        if sym is None:
            continue
        if sym.kind is RelationKind.DATABASE:
            sources: set[str] = {"database"}
        elif sym.kind is RelationKind.INPUT:
            sources = {"input"}
        elif sym.kind is RelationKind.PREV_INPUT:
            sources = {"prev-input"}
        elif sym.kind in _FLOW_KINDS:
            sources = set(facts.get((peer, a.rel), frozenset()))
        else:
            continue  # propositional bookkeeping: carries no values
        for name in _atom_var_names(a):
            tags.setdefault(name, set()).update(sources)
            bound.add(name)
    # alias through var = var; pin through var = const
    changed = True
    while changed:
        changed = False
        for eq in eqs:
            left, right = eq.left, eq.right
            if isinstance(left, Var) and isinstance(right, Var):
                for a_name, b_name in ((left.name, right.name),
                                       (right.name, left.name)):
                    if a_name in bound and b_name not in bound:
                        tags.setdefault(b_name, set()).update(
                            tags.get(a_name, set()))
                        bound.add(b_name)
                        changed = True
            elif isinstance(left, Var) and isinstance(right, Const):
                if left.name not in bound:
                    tags.setdefault(left.name, set()).add("constant")
                    bound.add(left.name)
                    changed = True
            elif isinstance(right, Var) and isinstance(left, Const):
                if right.name not in bound:
                    tags.setdefault(right.name, set()).add("constant")
                    bound.add(right.name)
                    changed = True
    out: dict[str, frozenset[str]] = {}
    for v in rule.head:
        if v.name in bound:
            out[v.name] = frozenset(tags.get(v.name, set()))
        else:
            out[v.name] = frozenset({"invented"})
    return out


def compute_provenance(composition: Composition,
                       ) -> dict[tuple[str, str], frozenset[str]]:
    """The provenance fixpoint: ``(peer, relation) -> source tags``."""
    senders = {c.name: c.sender for c in composition.channels}
    nodes: list[tuple[str, str]] = []
    writing: dict[tuple[str, str], list[Rule]] = {}
    for peer in composition.peers:
        for sym in peer.relations():
            nodes.append((peer.name, sym.name))
        for rule in peer.rules:
            if rule.kind is RuleKind.DELETE:
                continue  # deletions select tuples, they add no values
            writing.setdefault((peer.name, rule.target), []).append(rule)

    def deps(node: tuple[str, str]):
        p, r = node
        sym = composition.peer(p).local_schema.get(r)
        if sym is not None and sym.kind is RelationKind.IN_QUEUE:
            sender = senders.get(r)
            return [(sender, r)] if sender is not None else []
        out = []
        for rule in writing.get(node, ()):
            atoms, _ = _positive_literals(rule.body)
            schema = composition.peer(p).local_schema
            for a in atoms:
                read = schema.get(a.rel)
                if read is not None and read.kind in _FLOW_KINDS:
                    out.append((p, a.rel))
        return out

    def transfer(node: tuple[str, str], facts):
        p, r = node
        schema = composition.peer(p).local_schema
        sym = schema.get(r)
        if sym is not None and sym.kind is RelationKind.DATABASE:
            return frozenset({"database"})
        if sym is not None and sym.kind is RelationKind.IN_QUEUE:
            sender = senders.get(r)
            if sender is None:
                return frozenset({"env"})
            return facts.get((sender, r), frozenset())
        acc: set[str] = set()
        for rule in writing.get(node, ()):
            acc.update(*(_rule_var_tags(rule, schema, p, facts).values()
                         or [frozenset()]))
        return frozenset(acc)

    return solve(nodes, deps, transfer)


# -- explanations ------------------------------------------------------------


def _invention_witness(composition: Composition,
                       facts: dict[tuple[str, str], frozenset[str]],
                       peer_name: str, rel: str,
                       depth: int = 8) -> list[str]:
    """The rule chain through which ``(peer, rel)`` may carry invented
    values: one hop per entry, ending at the inventing rule."""
    chain: list[str] = []
    seen: set[tuple[str, str]] = set()
    cur = (peer_name, rel)
    senders = {c.name: c.sender for c in composition.channels}
    while depth > 0 and cur not in seen:
        seen.add(cur)
        depth -= 1
        p, r = cur
        peer = composition.peer(p)
        sym = peer.local_schema.get(r)
        if sym is not None and sym.kind is RelationKind.IN_QUEUE:
            sender = senders.get(r)
            if sender is None:
                chain.append(f"{p}.{r} is filled by the environment")
                return chain
            chain.append(f"{p}.{r} receives from {sender}.{r}")
            cur = (sender, r)
            continue
        hop = None
        for rule in peer.rules:
            if rule.target != r or rule.kind is RuleKind.DELETE:
                continue
            var_tags = _rule_var_tags(rule, peer.local_schema, p, facts)
            for v in rule.head:
                tags = var_tags.get(v.name, frozenset())
                if "invented" not in tags:
                    continue
                if tags == frozenset({"invented"}):
                    chain.append(
                        f"{p}.{r}: head variable {v.name} of the "
                        f"{rule.kind.value} rule is bound by no "
                        "positive atom (invented value)")
                    return chain
                # inherited: find the positive atom carrying the taint
                atoms, _ = _positive_literals(rule.body)
                for a in atoms:
                    read = peer.local_schema.get(a.rel)
                    if (read is not None and read.kind in _FLOW_KINDS
                            and v.name in _atom_var_names(a)
                            and "invented" in facts.get(
                                (p, a.rel), frozenset())):
                        chain.append(
                            f"{p}.{r}: {v.name} flows from {a.rel} in "
                            f"the {rule.kind.value} rule")
                        hop = (p, a.rel)
                        break
                if hop:
                    break
            if hop:
                break
        if hop is None:
            return chain
        cur = hop
    return chain


def _resolve(composition: Composition, peer_name: str | None,
             name: str) -> tuple[str, str] | None:
    """Map a (possibly ``Peer.rel``-qualified, possibly ``prev_``-derived)
    relation name to a provenance key, or None for bookkeeping symbols."""
    if "." in name:
        owner, base = name.rsplit(".", 1)
    elif peer_name is not None:
        owner, base = peer_name, name
    else:
        return None
    try:
        peer = composition.peer(owner)
    except Exception:
        return None
    sym = peer.local_schema.get(base)
    if sym is None:
        return None
    if sym.kind is RelationKind.PREV_INPUT:
        for inp in peer.inputs:
            if prev_name(inp.name) == base:
                return (owner, inp.name)
        return None
    if sym.kind in (RelationKind.QUEUE_STATE, RelationKind.ERROR_FLAG,
                    RelationKind.RECEIVED_FLAG, RelationKind.MOVE):
        return None
    return (owner, base)


def explain_relations(composition: Composition,
                      facts: dict[tuple[str, str], frozenset[str]],
                      peer_name: str | None,
                      relations,
                      depth: int = 8) -> list[str]:
    """Provenance lines for *relations* (bare or ``Peer.rel`` names):
    one source-set line each, plus the invention chain when tainted."""
    lines: list[str] = []
    for name in relations:
        key = _resolve(composition, peer_name, name)
        if key is None:
            continue
        tags = facts.get(key, frozenset())
        shown = [t for t in TAGS if t in tags] or ["none (never populated)"]
        lines.append(f"{name}: values may derive from "
                     f"{{{', '.join(shown)}}}")
        if "invented" in tags:
            lines.extend("  " + entry for entry in _invention_witness(
                composition, facts, key[0], key[1], depth))
    return lines


def repair_suggestion(peer: Peer) -> str:
    """The minimal-repair line for an unguarded quantifier on *peer*."""
    guards = sorted(
        [s.name for s in peer.inputs]
        + [prev_name(s.name) for s in peer.inputs]
        + [s.name for s in peer.in_queues if not s.nested]
    )
    if guards:
        return ("repair: guard the quantifier with one of peer "
                f"{peer.name}'s bounded relations: {', '.join(guards)}")
    return (f"repair: peer {peer.name} declares no input or flat-queue "
            "relation to guard with; add an input relation")


# -- the DWV6xx pass ---------------------------------------------------------


def _guarded_queue_quantifiers(peer: Peer, strict: bool):
    """Yield ``(rule, quantifier, guard_atom)`` for quantifiers guarded
    by a flat in-queue atom (the Section 3.1-legal cross-peer guards)."""
    from ..ib.checker import _atom_vars, _flatten_conj, _is_guard_kind

    in_names = {q.name for q in peer.in_queues if not q.nested}
    for rule in peer.rules:
        for node in fo.walk(rule.body):
            if not isinstance(node, (fo.Exists, fo.Forall)):
                continue
            quantified = {v.name for v in node.variables}
            if isinstance(node, fo.Exists):
                candidates = _flatten_conj(node.body)
            elif isinstance(node.body, fo.Implies):
                candidates = _flatten_conj(node.body.antecedent)
            else:
                continue
            for cand in candidates:
                if not isinstance(cand, fo.Atom):
                    continue
                sym = peer.local_schema.get(cand.rel)
                if sym is None or not _is_guard_kind(sym, strict):
                    continue
                if quantified <= _atom_vars(cand):
                    if cand.rel in in_names:
                        yield rule, node, cand
                    break


def provenance_pass(ctx: AnalysisContext) -> list[Diagnostic]:
    """DWV601/602: invented values crossing channels."""
    composition = ctx.composition
    facts = compute_provenance(composition)
    out: list[Diagnostic] = []
    for peer in composition.peers:
        for rule, node, guard in _guarded_queue_quantifiers(
                peer, ctx.strict):
            tags = facts.get((peer.name, guard.rel), frozenset())
            if "invented" not in tags:
                continue
            where = (f"peer {peer.name}, {rule.kind.value} rule "
                     f"for {rule.target}")
            out.append(make(
                "DWV601",
                f"quantifier is guarded by ?{guard.rel}, but the "
                "sender may invent the payload values, so the guard "
                "does not bound the quantification",
                where=where, peer=peer.name,
                rule=f"{rule.kind.value} rule for {rule.target}",
                subject=str(node),
                provenance=tuple(explain_relations(
                    composition, facts, peer.name, [guard.rel])),
            ))
    for chan in sorted(composition.channels, key=lambda c: c.name):
        if chan.sender is None:
            continue
        tags = facts.get((chan.sender, chan.name), frozenset())
        if "invented" not in tags:
            continue
        out.append(make(
            "DWV602",
            f"peer {chan.sender} may send invented values on this "
            "channel",
            where=f"channel {chan.name}", peer=chan.sender,
            subject=chan.name,
            provenance=tuple(
                "  " + entry for entry in _invention_witness(
                    composition, facts, chan.sender, chan.name)),
        ))
    return out


#: The pass object registered in :data:`repro.analysis.passes.ALL_PASSES`.
ProvenancePass = AnalysisPass(
    "provenance", provenance_pass,
    "interprocedural data provenance (DWV6xx)",
)


__all__ = [
    "ProvenancePass", "TAGS", "compute_provenance", "explain_relations",
    "provenance_pass", "repair_suggestion",
]
