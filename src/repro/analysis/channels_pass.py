"""Analyzer pass 4: channel discipline.

Re-checks the Definition 2.5 wiring through
:func:`repro.spec.validate.collect_channel_issues` (on a *built*
composition only the non-fatal findings -- dangling endpoints -- can
still appear; the fatal ones are reported by the pre-build structural
scan in :mod:`repro.analysis.lint`), then adds two analyses the builder
does not perform:

* ``DWV306`` -- a flat send rule whose head joins against a database or
  state relation, so a single firing may produce several candidate
  tuples.  Harmless under the default nondeterministic-send semantics,
  but under Theorem 3.8's deterministic discipline the send raises
  ``error_Q`` and delivers nothing;
* ``DWV307`` -- a channel whose receiver never mentions the in-queue in
  any rule.  By Definition 2.4 an unmentioned queue is never dequeued,
  so with a k-bounded queue every message after the first k is provably
  dropped.
"""

from __future__ import annotations

from ..fo import formulas as fo
from ..fo.terms import Var
from ..spec.channels import FlatSendDiscipline
from ..spec.rules import RuleKind
from ..spec.validate import collect_channel_issues
from .diagnostics import Diagnostic, make
from .passes import AnalysisContext


def _channel_issue_diagnostics(ctx: AnalysisContext) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for issue in collect_channel_issues(ctx.composition.peers):
        out.append(make(
            issue.code, issue.message,
            where=f"queue {issue.queue}",
            peer=issue.peers[0] if issue.peers else None,
            subject=issue.queue,
        ))
    return out


def _multi_tuple_sends(ctx: AnalysisContext) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    deterministic = (
        ctx.semantics.flat_send is FlatSendDiscipline.DETERMINISTIC_ERROR
    )
    for peer in ctx.composition.peers:
        flat_out = {q.name for q in peer.out_queues if not q.nested}
        wide = {s.name for s in peer.database + peer.states}
        for rule in peer.rules_of_kind(RuleKind.SEND):
            if rule.target not in flat_out or not rule.head:
                continue
            head = set(rule.head)
            joins = sorted(
                a.rel for a in fo.atoms(rule.body)
                if a.rel in wide
                and head & {t for t in a.terms if isinstance(t, Var)}
            )
            if joins:
                severity = None  # catalog default (note)
                message = (
                    "flat send head joins against "
                    f"{', '.join(joins)}; one firing may yield several "
                    "candidate tuples"
                )
                if deterministic:
                    message += (
                        " (under the configured deterministic-send "
                        "discipline this raises error_"
                        f"{rule.target} and sends nothing)"
                    )
                out.append(make(
                    "DWV306", message, severity=severity,
                    where=f"peer {peer.name}, send rule for "
                          f"{rule.target}",
                    peer=peer.name,
                    rule=f"send rule for {rule.target}",
                    subject=str(rule),
                ))
    return out


def _never_consumed(ctx: AnalysisContext) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    consumed = {
        peer.name: peer.consumed_in_queues()
        for peer in ctx.composition.peers
    }
    bound = ctx.semantics.queue_bound
    for chan in ctx.composition.channels:
        if chan.receiver is None:
            continue  # the environment consumes at will (Section 5)
        if chan.name in consumed[chan.receiver]:
            continue
        detail = (
            f"every message beyond the queue bound ({bound}) is "
            "provably dropped" if bound is not None
            else "the queue grows without bound"
        )
        out.append(make(
            "DWV307",
            f"receiver {chan.receiver!r} never mentions in-queue "
            f"{chan.name!r}, so it is never dequeued; {detail}",
            where=f"queue {chan.name}", peer=chan.receiver,
            subject=chan.name,
        ))
    return out


def channels_pass(ctx: AnalysisContext) -> list[Diagnostic]:
    out = _channel_issue_diagnostics(ctx)
    out.extend(_multi_tuple_sends(ctx))
    out.extend(_never_consumed(ctx))
    return out
