"""Static analysis over peer/composition specs (``repro lint``).

The package is organised as a pluggable pipeline of passes
(:mod:`repro.analysis.passes`) producing structured
:class:`~repro.analysis.diagnostics.Diagnostic` records:

* :mod:`~repro.analysis.ib_pass` -- input-boundedness (Section 3.1),
  with provenance explanations on every violation;
* :mod:`~repro.analysis.rules_pass` -- dead and shadowed rules;
* :mod:`~repro.analysis.reachability` -- unreachable states, unused symbols;
* :mod:`~repro.analysis.channels_pass` -- channel discipline;
* :mod:`~repro.analysis.flow` -- interprocedural communication flow
  (deadlocks, orphan flows, dropped-message chains) over the
  communication graph;
* :mod:`~repro.analysis.provenance` -- taint-style data provenance
  (invented values crossing peers);
* :mod:`~repro.analysis.cost` -- static reachable-state cost hints;
* :mod:`~repro.analysis.decidability` -- which theorem row applies.

:mod:`~repro.analysis.cache` wraps the pipeline in a content-addressed
per-peer lint cache (``repro lint --cache``).

Only :mod:`.diagnostics` is imported eagerly: ``repro.ib.report`` renders
through it, so loading anything heavier here would close an import cycle
(ib.report -> analysis -> passes -> ib.checker -> ib.report).
"""

import importlib

from .diagnostics import (
    CODES, Diagnostic, LintReport, Severity, count_by_severity, has_errors,
    make, render_github, render_report, sort_key, to_json,
)

__all__ = [
    "CODES", "Diagnostic", "LintReport", "Severity", "count_by_severity",
    "has_errors", "make", "render_github", "render_report", "sort_key",
    "to_json",
    # lazy:
    "lint_composition", "lint_text", "lint_path",
    "structural_diagnostics", "error_codes", "classify",
    "classify_protocol", "classification_diagnostics", "Classification",
    "to_sarif", "sarif_document", "ALL_PASSES", "AnalysisContext",
    "AnalysisPass", "run_passes",
    "build_comm_graph", "FlowPass", "ProvenancePass", "CostPass",
    "compute_provenance", "sweep_cost_hints",
    "LintCache", "lint_cached", "lint_cached_composition",
    "default_cache_dir",
]

_LAZY = {
    "lint_composition": "lint",
    "lint_text": "lint",
    "lint_path": "lint",
    "structural_diagnostics": "lint",
    "error_codes": "lint",
    "ALL_PASSES": "passes",
    "AnalysisContext": "passes",
    "AnalysisPass": "passes",
    "run_passes": "passes",
    "classify": "decidability",
    "classify_protocol": "decidability",
    "classification_diagnostics": "decidability",
    "Classification": "decidability",
    "to_sarif": "sarif",
    "sarif_document": "sarif",
    "build_comm_graph": "flow",
    "FlowPass": "flow",
    "ProvenancePass": "provenance",
    "compute_provenance": "provenance",
    "CostPass": "cost",
    "sweep_cost_hints": "cost",
    "LintCache": "cache",
    "lint_cached": "cache",
    "lint_cached_composition": "cache",
    "default_cache_dir": "cache",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(importlib.import_module(f".{module}", __name__), name)
