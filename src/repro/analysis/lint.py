"""The lint driver: structural scanning plus the analysis pipeline.

Two entry points:

* :func:`lint_composition` analyzes an already-built
  :class:`~repro.spec.Composition` (library examples, programmatic
  specs);
* :func:`lint_text` analyzes a ``.dws`` document.  It first runs a
  *structural* check over the raw declaration/rule IR
  (:func:`repro.spec.dsl.scan_document`) so that mistakes which would
  make the build raise -- a send into an undeclared queue, a head arity
  clash, two senders on one channel -- come back as ``DWV3xx``
  diagnostics instead of exceptions.  Only when the structure is sound
  does it build the composition and run the full pass pipeline.

Text that does not match the surface grammar at all still raises
:class:`~repro.errors.ParseError`; the CLI maps that to exit status 2
(structural/semantic findings exit 1, a clean document exits 0).
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

from ..ltlfo.formulas import LTLFOSentence
from ..ltlfo.parser import parse_ltlfo
from ..obs import counter
from ..spec.channels import ChannelSemantics, DECIDABLE_DEFAULT
from ..spec.composition import Composition
from ..spec.dsl import (
    RawDocument, load_composition, load_properties, scan_document,
)
from .decidability import classify
from .diagnostics import Diagnostic, LintReport, Severity, make
from .passes import AnalysisContext, AnalysisPass, run_passes

#: rule family -> the declaration kind its target must have
_EXPECTED_DECL = {
    "input": ("input",),
    "insert": ("state",),
    "delete": ("state",),
    "action": ("action",),
    "send": ("out",),
}

_KIND_LABEL = {
    "database": "database relation", "state": "state relation",
    "input": "input relation", "action": "action relation",
    "in": "in-queue", "out": "out-queue",
}


def structural_diagnostics(document: RawDocument) -> list[Diagnostic]:
    """Pre-build structural checks over the raw document IR."""
    out: list[Diagnostic] = []
    out_queues: dict[str, tuple[str, "object"]] = {}
    in_queues: dict[str, tuple[str, "object"]] = {}

    for peer in document.peers:
        seen: dict[str, str] = {}
        for decl in peer.decls:
            if decl.name in seen:
                out.append(make(
                    "DWV304",
                    f"relation {decl.name!r} is declared twice "
                    f"(as {_KIND_LABEL[seen[decl.name]]} and "
                    f"{_KIND_LABEL[decl.kind]})",
                    where=f"peer {peer.name}", peer=peer.name,
                    subject=decl.name,
                ))
            else:
                seen[decl.name] = decl.kind
            if decl.kind == "out":
                if decl.name in out_queues:
                    other = out_queues[decl.name][0]
                    out.append(make(
                        "DWV304",
                        f"queue {decl.name!r} is an out-queue of both "
                        f"{other!r} and {peer.name!r}",
                        where=f"queue {decl.name}", peer=peer.name,
                        subject=decl.name,
                    ))
                else:
                    out_queues[decl.name] = (peer.name, decl)
            elif decl.kind == "in":
                if decl.name in in_queues:
                    other = in_queues[decl.name][0]
                    out.append(make(
                        "DWV304",
                        f"queue {decl.name!r} is an in-queue of both "
                        f"{other!r} and {peer.name!r}",
                        where=f"queue {decl.name}", peer=peer.name,
                        subject=decl.name,
                    ))
                else:
                    in_queues[decl.name] = (peer.name, decl)

        for rule in peer.rules:
            where = (f"peer {peer.name}, {rule.kind} rule for "
                     f"{rule.target}")
            decl = peer.decl(rule.target)
            expected = _EXPECTED_DECL[rule.kind]
            if decl is None:
                wanted = " or ".join(_KIND_LABEL[k] for k in expected)
                out.append(make(
                    "DWV301",
                    f"{rule.kind} rule targets {rule.target!r}, but the "
                    f"peer declares no {wanted} of that name",
                    where=where, peer=peer.name,
                    rule=f"{rule.kind} rule for {rule.target}",
                    subject=rule.target,
                ))
                continue
            if decl.kind not in expected:
                out.append(make(
                    "DWV302",
                    f"{rule.kind} rule targets {rule.target!r}, which is "
                    f"declared as {_KIND_LABEL[decl.kind]} (expected "
                    + " or ".join(_KIND_LABEL[k] for k in expected) + ")",
                    where=where, peer=peer.name,
                    rule=f"{rule.kind} rule for {rule.target}",
                    subject=rule.target,
                ))
                continue
            if decl.arity != len(rule.head):
                out.append(make(
                    "DWV303",
                    f"rule head has {len(rule.head)} variable(s), "
                    f"{rule.target!r} is declared with arity "
                    f"{decl.arity}",
                    where=where, peer=peer.name,
                    rule=f"{rule.kind} rule for {rule.target}",
                    subject=rule.target,
                ))

    for name in sorted(set(out_queues) & set(in_queues)):
        s_peer, s_decl = out_queues[name]
        r_peer, r_decl = in_queues[name]
        if s_peer == r_peer:
            out.append(make(
                "DWV308",
                f"queue {name!r}: sender and receiver are both "
                f"{s_peer!r}",
                where=f"queue {name}", peer=s_peer, subject=name,
            ))
        elif (s_decl.arity != r_decl.arity
                or s_decl.nested != r_decl.nested):
            out.append(make(
                "DWV305",
                f"queue {name!r}: {s_peer!r} sends "
                f"({s_decl.arity}, nested={s_decl.nested}), {r_peer!r} "
                f"receives ({r_decl.arity}, nested={r_decl.nested})",
                where=f"queue {name}", peer=s_peer, subject=name,
            ))
    return out


def _parse_sentences(properties: Mapping[str, str],
                     composition: Composition
                     ) -> dict[str, LTLFOSentence]:
    return {
        name: parse_ltlfo(text, composition.schema)
        for name, text in sorted(properties.items())
    }


def lint_composition(composition: Composition,
                     sentences: Mapping[str, LTLFOSentence] | None = None,
                     semantics: ChannelSemantics = DECIDABLE_DEFAULT,
                     strict: bool = False,
                     passes: Sequence[AnalysisPass] | None = None,
                     ) -> LintReport:
    """Run the analysis pipeline over a built composition."""
    ctx = AnalysisContext(
        composition=composition,
        sentences=dict(sentences or {}),
        semantics=semantics,
        strict=strict,
    )
    report = run_passes(ctx, passes)
    report.classifications["composition"] = classify(
        composition, list(ctx.sentences.values()), semantics,
        strict=strict,
    )
    return report


def lint_text(text: str,
              semantics: ChannelSemantics = DECIDABLE_DEFAULT,
              strict: bool = False,
              passes: Sequence[AnalysisPass] | None = None,
              ) -> LintReport:
    """Scan, structurally check, and (when sound) fully analyze *text*."""
    document = scan_document(text)
    structural = structural_diagnostics(document)
    counter("lint.structural.diagnostics").inc(len(structural))
    if any(d.severity is Severity.ERROR for d in structural):
        report = LintReport(diagnostics=structural,
                            passes_run=["structure"])
        return report

    composition = load_composition(text)
    sentences = _parse_sentences(load_properties(text), composition)
    report = lint_composition(composition, sentences, semantics,
                              strict=strict, passes=passes)
    report.diagnostics = structural + report.diagnostics
    report.passes_run.insert(0, "structure")
    return report


def lint_path(path: str | Path,
              semantics: ChannelSemantics = DECIDABLE_DEFAULT,
              strict: bool = False) -> LintReport:
    """Lint one ``.dws`` file."""
    return lint_text(Path(path).read_text(), semantics=semantics,
                     strict=strict)


def error_codes(report: LintReport) -> list[str]:
    """The codes of the error-severity diagnostics (exit-status gate)."""
    return sorted({
        d.code for d in report.diagnostics
        if d.severity is Severity.ERROR
    })


__all__ = [
    "error_codes", "lint_composition", "lint_path", "lint_text",
    "structural_diagnostics",
]
