"""The static cost model: per-peer reachable-state upper bounds.

A peer's contribution to the composition's reachable state space is
bounded by its mutable relational state over the verification domain:
each state relation ``S/k`` contributes up to ``2^(n^k)`` subsets over
an ``n``-value domain, each input/prev-input/action relation holds at
most one tuple (``n^k + 1`` options), and each queue slot of a
``k``-bounded channel holds one message or nothing.  Working in
log-space keeps the numbers additive and finite::

    bits(peer, n) =   sum_S  n^arity(S)                      (state)
                    + sum_I  2 * log2(n^arity(I) + 1)        (input + prev)
                    + sum_A  log2(n^arity(A) + 1)            (action)
                    + sum_Q  bound * log2(n^arity(Q) + 1)    (queues)

These are *hints*, not admissible bounds -- the propositional
abstraction ignores rule guards entirely -- but they are monotone in
what actually drives sweep cost (arity, domain size, queue bounds), so
:func:`sweep_cost_hints` uses them to weight the work-stealing batch
sizes in :func:`repro.verifier.parallel.plan_batches`: expensive
``(group, ctx)`` cells get smaller batches (finer-grained stealing),
cheap ones bigger batches (less queue traffic).

The lint-facing :func:`cost_pass` publishes the same numbers on the
report (``cost_hints``) for a nominal domain, and never emits
diagnostics -- cost is advisory, not a defect.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ..spec.composition import Composition
from ..spec.peer import Peer
from .diagnostics import Diagnostic
from .passes import AnalysisContext, AnalysisPass

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..verifier.parallel import SweepPayload


def peer_state_bits(peer: Peer, domain_size: int,
                    queue_bound: int = 1) -> float:
    """Log2 upper bound on *peer*'s local state-space contribution."""
    n = max(2, domain_size)
    bits = 0.0
    for sym in peer.states:
        bits += float(n) ** sym.arity
    for sym in peer.inputs:
        bits += 2.0 * math.log2(float(n) ** sym.arity + 1.0)
    for sym in peer.actions:
        bits += math.log2(float(n) ** sym.arity + 1.0)
    for sym in peer.in_queues + peer.out_queues:
        slots = max(1, queue_bound)
        bits += slots * math.log2(float(n) ** sym.arity + 1.0)
    return bits


def composition_cost(composition: Composition, domain_size: int,
                     queue_bound: int = 1) -> dict[str, float]:
    """Per-peer bits plus the composition total, for one domain size."""
    peers = {
        peer.name: peer_state_bits(peer, domain_size, queue_bound)
        for peer in composition.peers
    }
    return {
        "domain_size": float(max(2, domain_size)),
        "total": sum(peers.values()),
        **{f"peer.{name}": bits for name, bits in sorted(peers.items())},
    }


def sweep_cost_hints(payload: "SweepPayload",
                     ) -> dict[tuple[int, int], float]:
    """Relative cost weights per ``(group, ctx)`` cell of a sweep grid.

    ``group`` indexes the property, ``ctx`` the database context; the
    weight is the composition's state bits over that context's domain,
    scaled by the property's FO payload count (more payloads mean more
    letter evaluations per product step).
    """
    bound = max(1, payload.semantics.queue_bound)
    base = {
        ctx_idx: sum(
            peer_state_bits(peer, len(ctx.domain.values), bound)
            for peer in payload.composition.peers
        )
        for ctx_idx, ctx in enumerate(payload.contexts)
    }
    hints: dict[tuple[int, int], float] = {}
    for group, sentence in enumerate(payload.sentences):
        factor = 1.0 + float(len(list(sentence.fo_payloads())))
        for ctx_idx, bits in base.items():
            hints[(group, ctx_idx)] = bits * factor
    return hints


def cost_pass(ctx: AnalysisContext) -> list[Diagnostic]:
    """Publish nominal cost hints on the context; emits no diagnostics."""
    composition = ctx.composition
    nominal = max(2, len(composition.constants()) + 1)
    ctx.cost_hints = composition_cost(
        composition, nominal, max(1, ctx.semantics.queue_bound))
    return []


#: The pass object registered in :data:`repro.analysis.passes.ALL_PASSES`.
CostPass = AnalysisPass(
    "cost", cost_pass,
    "static reachable-state cost model (batch-sizing hints)",
)


__all__ = [
    "CostPass", "composition_cost", "cost_pass", "peer_state_bits",
    "sweep_cost_hints",
]
