"""A reusable forward-fixpoint dataflow engine (worklist solver).

The interprocedural passes (:mod:`.flow`, :mod:`.provenance`) and the
cost model all reduce to the same shape: a finite set of nodes, a
dependency relation, and a monotone transfer function into a finite
join-semilattice.  :func:`solve` computes the least fixpoint with a
classic worklist: a node is re-evaluated when any node it depends on
changes, so the engine does work proportional to the number of fact
changes, not to ``rounds x nodes``.

``transfer(node, facts)`` may read any entry of ``facts`` (missing
nodes read as ``bottom``), but only its declared ``dependencies`` wake
it up -- reading an undeclared node risks a stale fixpoint, so declare
everything you read.  Transfers must be *monotone* (never shrink their
output as inputs grow); the engine guards against accidental
non-monotonicity with a generous step budget and raises instead of
spinning forever.

:func:`tarjan_sccs` (iterative Tarjan) is bundled here because cycle
condensation is the other half of every flow analysis: the deadlock
detector runs it over the channel wait-for graph.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable, Iterable, Mapping, Sequence, TypeVar

N = TypeVar("N", bound=Hashable)
F = TypeVar("F")


def solve(nodes: Sequence[N],
          dependencies: Callable[[N], Iterable[N]],
          transfer: Callable[[N, Mapping[N, F]], F],
          bottom: F = frozenset(),  # type: ignore[assignment]
          ) -> dict[N, F]:
    """Least fixpoint of *transfer* over *nodes* (forward worklist).

    ``dependencies(n)`` lists the nodes whose facts ``transfer(n, ...)``
    reads; when any of them changes, ``n`` is re-evaluated.  Facts start
    at *bottom*.  Raises :class:`RuntimeError` when the step budget is
    exhausted (a non-monotone transfer, the only way a finite lattice
    fails to converge).
    """
    node_list = list(nodes)
    facts: dict[N, F] = {n: bottom for n in node_list}
    dependents: dict[N, list[N]] = {}
    for n in node_list:
        for dep in dependencies(n):
            dependents.setdefault(dep, []).append(n)

    worklist: deque[N] = deque(node_list)
    queued = set(node_list)
    budget = 64 + 32 * len(node_list) * (len(node_list) + 1)
    while worklist:
        budget -= 1
        if budget < 0:
            raise RuntimeError(
                "dataflow solve did not converge -- non-monotone "
                "transfer function?"
            )
        node = worklist.popleft()
        queued.discard(node)
        new = transfer(node, facts)
        if new == facts[node]:
            continue
        facts[node] = new
        for dependent in dependents.get(node, ()):
            if dependent not in queued:
                worklist.append(dependent)
                queued.add(dependent)
    return facts


def tarjan_sccs(nodes: Sequence[N],
                successors: Callable[[N], Iterable[N]],
                ) -> list[tuple[N, ...]]:
    """Strongly connected components, iteratively, in deterministic order.

    Components come back in reverse topological order (a component
    before everything it reaches), each as a tuple in discovery order.
    Successors outside *nodes* are ignored.
    """
    node_set = set(nodes)
    index: dict[N, int] = {}
    lowlink: dict[N, int] = {}
    on_stack: set[N] = set()
    stack: list[N] = []
    sccs: list[tuple[N, ...]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        # (node, iterator over its remaining successors)
        work = [(root, iter(sorted((s for s in successors(root)
                                    if s in node_set), key=repr)))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(
                        (s for s in successors(succ) if s in node_set),
                        key=repr))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: list[N] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(tuple(reversed(component)))
    return sccs


def has_self_loop(node: N, successors: Callable[[N], Iterable[N]]) -> bool:
    return node in set(successors(node))


__all__ = ["has_self_loop", "solve", "tarjan_sccs"]
