"""Structured diagnostics for the static analyzer (``repro lint``).

Every finding of every analysis pass -- including the input-boundedness
checker's violations, which :mod:`repro.ib.report` renders through this
type -- is a :class:`Diagnostic` with a stable ``DWV***`` code, a
severity, a location path (peer / rule / subformula), a human message,
and a fix hint.  The code catalog below maps each code to the paper
section or theorem it enforces (the same table lives in DESIGN.md).

This module deliberately imports nothing from the rest of ``repro`` so
that low-level modules (``ib.report``) can import it without cycles.

Code ranges:

* ``DWV0xx`` -- input-boundedness (Section 3.1, Theorem 3.4)
* ``DWV1xx`` -- dead and shadowed rules
* ``DWV2xx`` -- reachability and unused symbols
* ``DWV3xx`` -- channel discipline and spec structure
* ``DWV4xx`` -- decidability classification (Theorems 3.4-3.10, 4.2-4.6)
* ``DWV5xx`` -- interprocedural communication flow (deadlocks, orphan
  flows, multi-hop dropped-message chains)
* ``DWV6xx`` -- data provenance (invented values crossing peers)
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass, field
from typing import Iterable, Sequence


class Severity(enum.Enum):
    """Diagnostic severity; ``ERROR`` gates the lint exit status."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "note": 2}[self.value]


@dataclass(frozen=True, slots=True)
class CodeInfo:
    """Catalog entry for one stable diagnostic code."""

    title: str
    severity: Severity
    ref: str          # paper section / theorem the code enforces
    hint: str = ""    # default fix hint


#: The stable code catalog.  Codes are append-only: never renumber.
CODES: dict[str, CodeInfo] = {
    # -- input-boundedness (Section 3.1) ---------------------------------
    "DWV001": CodeInfo(
        "unguarded quantifier", Severity.ERROR, "Section 3.1 / Theorem 3.4",
        "guard the quantifier with an input, prev-input, or flat-queue "
        "atom covering all quantified variables",
    ),
    "DWV002": CodeInfo(
        "universal quantifier not in guarded form", Severity.ERROR,
        "Section 3.1 / Theorem 3.4",
        "write the quantifier as `forall x̄: alpha -> phi` with a guard "
        "atom alpha",
    ),
    "DWV003": CodeInfo(
        "quantified variable in restricted atom", Severity.ERROR,
        "Section 3.1 / Theorem 3.4",
        "copy the needed value into an input or flat message first; "
        "state, action, and nested-queue atoms may not see quantified "
        "variables",
    ),
    "DWV004": CodeInfo(
        "input/flat-send rule outside exists* FO", Severity.ERROR,
        "Section 3.1, condition 2",
        "rewrite the body as `exists x̄: (quantifier-free)`",
    ),
    "DWV005": CodeInfo(
        "non-ground state/nested atom in input/flat-send rule",
        Severity.ERROR, "Section 3.1, condition 2 / Theorem 3.10",
        "only propositional (ground) state tests are allowed here; "
        "route data through a nested queue instead",
    ),
    # -- dead / shadowed rules -------------------------------------------
    "DWV101": CodeInfo(
        "dead rule: body unsatisfiable", Severity.WARNING,
        "Definition 2.1 (rule semantics)",
        "the rule can never fire; delete it or fix the contradictory "
        "guard",
    ),
    "DWV102": CodeInfo(
        "shadowed rule: insert/delete conflict", Severity.WARNING,
        "Definition 2.3 (no-op conflict semantics)",
        "insert and delete for the same state fire together on every "
        "snapshot where this rule fires, so it has no effect; make the "
        "guards disjoint",
    ),
    "DWV103": CodeInfo(
        "shadowed disjunct: subsumed by an earlier branch",
        Severity.WARNING, "Definition 2.1 (rule semantics)",
        "the branch is implied by an earlier disjunct of the same body "
        "and can be removed",
    ),
    # -- reachability / unused symbols -----------------------------------
    "DWV201": CodeInfo(
        "unreachable state relation", Severity.WARNING,
        "Definition 2.3 (runs)",
        "no rule chain can ever populate this state; add an insert rule "
        "or remove the relation",
    ),
    "DWV202": CodeInfo(
        "unused relation", Severity.NOTE, "Definition 2.1",
        "the relation is declared but no rule reads or writes it; "
        "remove the declaration",
    ),
    # -- channel discipline / spec structure -----------------------------
    "DWV301": CodeInfo(
        "rule targets undeclared relation", Severity.ERROR,
        "Definition 2.1",
        "declare the relation (for sends: an out-queue of the peer) "
        "before using it as a rule target",
    ),
    "DWV302": CodeInfo(
        "rule targets relation of the wrong kind", Severity.ERROR,
        "Definition 2.1",
        "send rules must target out-queues, insert/delete rules states, "
        "input rules inputs, action rules actions",
    ),
    "DWV303": CodeInfo(
        "rule head arity mismatch", Severity.ERROR, "Definition 2.1",
        "the head variable tuple must match the target relation's arity",
    ),
    "DWV304": CodeInfo(
        "duplicate declaration", Severity.ERROR, "Definition 2.5",
        "each queue has at most one sender and one receiver, and each "
        "relation is declared once per peer",
    ),
    "DWV305": CodeInfo(
        "channel endpoint mismatch", Severity.ERROR, "Definition 2.5",
        "the sender's out-queue and the receiver's in-queue must agree "
        "on arity and flat/nested shape",
    ),
    "DWV306": CodeInfo(
        "flat send may yield multiple tuples", Severity.NOTE,
        "Theorem 3.8 (deterministic sends)",
        "under the deterministic-send discipline this raises error_Q "
        "and sends nothing; pin the head variables to a single tuple "
        "if deterministic sends are intended",
    ),
    "DWV307": CodeInfo(
        "queue is never consumed by its receiver", Severity.WARNING,
        "Definition 2.4 / Section 3.1 (bounded queues)",
        "the receiver never mentions the queue, so it never dequeues; "
        "every message beyond the queue bound is provably dropped",
    ),
    "DWV308": CodeInfo(
        "self-channel", Severity.ERROR, "Definition 2.5",
        "a queue's sender and receiver must be different peers; route "
        "through a relay peer",
    ),
    "DWV309": CodeInfo(
        "dangling channel endpoint (open composition)", Severity.NOTE,
        "Section 5 (open compositions)",
        "the queue's missing endpoint becomes the environment; close "
        "the composition or verify modularly with an environment spec",
    ),
    # -- decidability classification -------------------------------------
    "DWV401": CodeInfo(
        "decidable verification configuration", Severity.NOTE,
        "Theorem 3.4",
        "",
    ),
    "DWV402": CodeInfo(
        "undecidable verification configuration", Severity.WARNING,
        "Theorems 3.5-3.10",
        "the verifier remains sound for bug finding over the bounded "
        "domain, but exhausting the search proves nothing in general",
    ),
    # -- communication flow (interprocedural) ----------------------------
    "DWV501": CodeInfo(
        "blocking-receive cycle (static deadlock)", Severity.WARNING,
        "Definition 2.4 (communication semantics)",
        "every producer of every channel in the cycle waits on another "
        "channel of the cycle; make at least one send rule fireable "
        "from inputs or database atoms alone",
    ),
    "DWV502": CodeInfo(
        "orphan message flow: every consuming rule is dead",
        Severity.WARNING, "Definition 2.4",
        "the receiver mentions the queue only in rules that can never "
        "fire under the propositional abstraction; fix the dead guards "
        "or drop the send",
    ),
    "DWV503": CodeInfo(
        "multi-hop dropped-message chain", Severity.WARNING,
        "Section 3.1 (bounded queues) / Definition 2.4",
        "the payload is only ever relayed into queues that provably "
        "drop it under the k-bounded semantics; consume it with an "
        "insert/delete/action/input rule somewhere, or remove the relay",
    ),
    # -- data provenance (interprocedural) -------------------------------
    "DWV601": CodeInfo(
        "cross-peer input-boundedness erosion", Severity.WARNING,
        "Section 3.1 / Theorem 3.4",
        "the quantifier is guarded by a queue whose payload can carry "
        "invented values; bind the sender's head variables with input, "
        "database, or queue atoms",
    ),
    "DWV602": CodeInfo(
        "message payload carries invented values", Severity.NOTE,
        "Section 3.1",
        "some head variable of a rule sending into this channel is not "
        "bound by any positive input/database/queue atom; pin it to a "
        "constant or bind it if the free choice is unintended",
    ),
}


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One analyzer finding with a stable code and a location path.

    ``where`` is the human-readable location path ("peer O, send rule
    for getRating"); ``peer``/``rule`` are its machine-readable parts
    when known.  ``subject`` is the offending formula, relation, or
    configuration rendered as text.  ``provenance`` is the explanation
    chain (one atom hop per entry) for findings the provenance analysis
    can trace to their origin.
    """

    code: str
    message: str
    severity: Severity = Severity.ERROR
    where: str = ""
    peer: str | None = None
    rule: str | None = None
    subject: str = ""
    hint: str = ""
    ref: str = ""
    provenance: tuple[str, ...] = ()

    def render(self) -> str:
        """The canonical one-line text rendering (plus hint/provenance)."""
        loc = f" [{self.where}]" if self.where else ""
        subj = f": {self.subject}" if self.subject else ""
        line = f"{self.code} {self.severity.value}{loc} {self.message}{subj}"
        for entry in self.provenance:
            line += f"\n    provenance: {entry}"
        if self.hint:
            line += f"\n    hint: {self.hint}"
        return line

    def to_dict(self) -> dict:
        out = asdict(self)
        out["severity"] = self.severity.value
        out["provenance"] = list(self.provenance)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Diagnostic":
        """The inverse of :meth:`to_dict` (lint-cache round trip)."""
        return cls(
            code=data["code"],
            message=data["message"],
            severity=Severity(data.get("severity", "error")),
            where=data.get("where", ""),
            peer=data.get("peer"),
            rule=data.get("rule"),
            subject=data.get("subject", ""),
            hint=data.get("hint", ""),
            ref=data.get("ref", ""),
            provenance=tuple(data.get("provenance", ())),
        )


def make(code: str, message: str, *, severity: Severity | None = None,
         where: str = "", peer: str | None = None, rule: str | None = None,
         subject: str = "", hint: str | None = None,
         provenance: Sequence[str] = ()) -> Diagnostic:
    """Build a diagnostic, defaulting severity/ref/hint from the catalog."""
    info = CODES[code]
    return Diagnostic(
        code=code,
        message=message,
        severity=severity if severity is not None else info.severity,
        where=where,
        peer=peer,
        rule=rule,
        subject=subject,
        hint=info.hint if hint is None else hint,
        ref=info.ref,
        provenance=tuple(provenance),
    )


def sort_key(diag: Diagnostic) -> tuple:
    """Stable report order: severity, then code, then location."""
    return (diag.severity.rank, diag.code, diag.where, diag.subject)


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(d.severity is Severity.ERROR for d in diagnostics)


def count_by_severity(diagnostics: Iterable[Diagnostic]) -> dict[str, int]:
    out = {s.value: 0 for s in Severity}
    for d in diagnostics:
        out[d.severity.value] += 1
    return out


def render_report(diagnostics: Sequence[Diagnostic]) -> str:
    """A multi-line text report, one diagnostic per entry, sorted."""
    if not diagnostics:
        return "clean: no diagnostics"
    return "\n".join(d.render() for d in sorted(diagnostics, key=sort_key))


#: GitHub Actions annotation level per severity.
_GITHUB_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.NOTE: "notice",
}


def _github_escape(text: str) -> str:
    """Escape annotation message data per the workflow-command grammar."""
    return (text.replace("%", "%25").replace("\r", "%0D")
            .replace("\n", "%0A"))


def render_github(diagnostics: Sequence[Diagnostic]) -> str:
    """GitHub Actions ``::error``/``::warning``/``::notice`` annotations.

    ``.dws`` documents have no stable line numbers after continuation
    joining, so the annotations are file/line-free and carry the
    ``where=`` location path inside the message instead.
    """
    lines = []
    for d in sorted(diagnostics, key=sort_key):
        message = f"[{d.where}] {d.message}" if d.where else d.message
        if d.subject:
            message += f": {d.subject}"
        lines.append(f"::{_GITHUB_LEVEL[d.severity]} "
                     f"title={d.code}::{_github_escape(message)}")
    return "\n".join(lines)


def to_json(diagnostics: Sequence[Diagnostic], *, extra: dict | None = None,
            ) -> str:
    """The machine-readable JSON report (schema ``repro.lint/1``)."""
    payload = {
        "schema": "repro.lint/1",
        "counts": count_by_severity(diagnostics),
        "diagnostics": [
            d.to_dict() for d in sorted(diagnostics, key=sort_key)
        ],
    }
    if extra:
        payload.update(extra)
    return json.dumps(payload, indent=2, default=str)


@dataclass
class LintReport:
    """The aggregate result of one analyzer run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    classifications: dict[str, "object"] = field(default_factory=dict)
    passes_run: list[str] = field(default_factory=list)
    #: Static cost hints from the cost-model pass (see analysis.cost).
    cost_hints: dict = field(default_factory=dict)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    @property
    def has_errors(self) -> bool:
        return has_errors(self.diagnostics)

    def codes(self) -> list[str]:
        return sorted({d.code for d in self.diagnostics})

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]
