"""Analyzer pass family DWV5xx: interprocedural communication flow.

Three detectors over the static communication graph
(:mod:`repro.spec.commgraph`), all sound with respect to the same
propositional may-be-nonempty abstraction the reachability pass uses:

* ``DWV501`` -- **static deadlock**: a cycle of channels where every
  producer of every channel in the cycle positively waits on another
  channel of the same cycle, and no send into the cycle is enabled
  when all in-cycle deliveries are blocked.  Under Definition 2.4 no
  message of the cycle is ever enqueued, so every positive ``?Q`` test
  on it is constantly false.
* ``DWV502`` -- **orphan message flow**: the channel's producer can
  fire, but every receiver-side rule that positively consumes the
  queue is dead under the abstraction; the messages arrive and are
  never acted on.
* ``DWV503`` -- **multi-hop dropped-message chain**: the payload is
  only ever *relayed* -- every live consuming rule is itself a send
  into a channel that is (transitively) never observed by an
  insert/delete/action/input rule, ending in a queue its receiver
  never mentions.  Under the k-bounded lossy semantics every such
  message beyond the terminal bound is provably dropped; this is
  DWV307 generalized across hops.

Each detector is deliberately conservative: DWV501 only fires when
*no* producer of the cycle can be enabled from outside it, and
DWV502/503 require a provably-live producer, so a dead sender (already
DWV101's finding) does not cascade into flow noise.
"""

from __future__ import annotations

from ..fo.schema import prev_name
from ..spec.commgraph import CommGraph, QueueNode, build_comm_graph
from ..spec.composition import Composition
from ..spec.rules import RuleKind
from .dataflow import solve, tarjan_sccs
from .diagnostics import Diagnostic, make
from .passes import AnalysisContext, AnalysisPass
from .reachability import _may_hold, _seed

#: Rule kinds that *observe* a payload (anything but a pure relay).
_OBSERVING_KINDS = frozenset({
    RuleKind.INPUT.value, RuleKind.INSERT.value,
    RuleKind.DELETE.value, RuleKind.ACTION.value,
})


def _available_blocking(composition: Composition,
                        blocked: frozenset[str]) -> set[tuple[str, str]]:
    """The may-be-nonempty fixpoint with deliveries on *blocked* channels
    suppressed: the receiver of a blocked channel never sees its queue
    become nonempty, however often the sender fires."""
    available = _seed(composition)
    for chan in composition.channels:
        if chan.name in blocked and chan.receiver is not None:
            available.discard((chan.receiver, chan.name))
    channel_receiver = {
        c.name: c.receiver for c in composition.channels
        if c.sender is not None and c.receiver is not None
    }
    changed = True
    while changed:
        changed = False
        for peer in composition.peers:
            for rule in peer.rules:
                key = (peer.name, rule.target)
                if key in available:
                    continue
                if _may_hold(rule.body, available, peer.name):
                    available.add(key)
                    changed = True
                    if rule.kind is RuleKind.INPUT:
                        available.add((peer.name, prev_name(rule.target)))
                    elif (rule.kind is RuleKind.SEND
                          and rule.target not in blocked):
                        receiver = channel_receiver.get(rule.target)
                        if receiver is not None:
                            available.add((receiver, rule.target))
    return available


def _deadlock_cycles(graph: CommGraph,
                     composition: Composition) -> list[Diagnostic]:
    """DWV501: blocking-receive cycles with no external producer."""
    channels = sorted(
        c.name for c in composition.channels
        if c.sender is not None and c.receiver is not None
    )
    if not channels:
        return []
    waits = {q: graph.waits_for(q) for q in channels}
    sccs = tarjan_sccs(channels, lambda q: waits.get(q, ()))
    out: list[Diagnostic] = []
    for scc in sccs:
        cycle = frozenset(scc)
        if len(scc) == 1 and scc[0] not in waits.get(scc[0], ()):
            continue
        # Can any send into the cycle fire with in-cycle deliveries
        # blocked?  If so the cycle can be primed from outside.
        blocked_avail = _available_blocking(composition, cycle)
        primed = False
        for q in scc:
            for producer in graph.producers(q):
                rule = graph.rule(producer)
                if _may_hold(rule.body, blocked_avail, producer.peer):
                    primed = True
                    break
            if primed:
                break
        if primed:
            continue
        names = " -> ".join(sorted(scc))
        out.append(make(
            "DWV501",
            "every producer of this channel cycle blocks on a positive "
            "receive from the same cycle; no message is ever enqueued",
            where="composition",
            subject=f"cycle {names}",
        ))
    return out


def _orphan_flows(graph: CommGraph, composition: Composition,
                  available: set[tuple[str, str]]) -> list[Diagnostic]:
    """DWV502: live sender, but every positive consumer is dead."""
    out: list[Diagnostic] = []
    for chan in sorted(composition.channels, key=lambda c: c.name):
        if chan.sender is None or chan.receiver is None:
            continue
        producers = graph.producers(chan.name)
        if not any(_may_hold(graph.rule(p).body, available, p.peer)
                   for p in producers):
            continue  # dead sender is DWV101's finding, not flow noise
        consumers = [
            edge.dst for edge in graph.successors(QueueNode(chan.name))
            if edge.kind == "receive" and edge.positive
        ]
        if not consumers:
            continue  # never mentioned at all -> DWV307's case
        if any(_may_hold(graph.rule(c).body, available, c.peer)
               for c in consumers):
            continue
        dead = ", ".join(sorted(c.label() for c in consumers))
        out.append(make(
            "DWV502",
            f"peer {chan.sender} can send on this channel but every "
            f"consuming rule of peer {chan.receiver} is dead",
            where=f"channel {chan.name}",
            subject=dead,
        ))
    return out


def _dropped_chains(graph: CommGraph, composition: Composition,
                    available: set[tuple[str, str]],
                    orphaned: set[str]) -> list[Diagnostic]:
    """DWV503: payloads only ever relayed into provably-dropped queues."""
    channels = [c for c in composition.channels
                if c.sender is not None and c.receiver is not None]
    names = [c.name for c in channels]
    name_set = set(names)
    # a relay into an environment-facing queue escapes the composition:
    # the environment observes everything sent to it
    env_observed = {c.name for c in composition.channels
                    if c.receiver is None}

    def consumers(q: str):
        return tuple(edge.dst for edge in graph.successors(QueueNode(q))
                     if edge.kind == "receive" and edge.positive)

    def deps(q: str):
        # q's productivity depends on the relay targets of its consumers
        targets = []
        for node in consumers(q):
            rule = graph.rule(node)
            if rule.kind is RuleKind.SEND and rule.target in name_set:
                targets.append(rule.target)
        return targets

    def transfer(q: str, facts):
        for node in consumers(q):
            rule = graph.rule(node)
            if node.kind in _OBSERVING_KINDS:
                return frozenset({"productive"})
            if rule.kind is RuleKind.SEND:
                if rule.target in env_observed:
                    return frozenset({"productive"})
                if facts.get(rule.target, frozenset()):
                    return frozenset({"productive"})
        return frozenset()

    productive = solve(names, deps, transfer)

    out: list[Diagnostic] = []
    for chan in sorted(channels, key=lambda c: c.name):
        q = chan.name
        if productive.get(q) or q in orphaned:
            continue
        cons = consumers(q)
        if not cons:
            continue  # DWV307 already covers the unmentioned queue
        producers = graph.producers(q)
        if not any(_may_hold(graph.rule(p).body, available, p.peer)
                   for p in producers):
            continue
        # Walk one relay chain to the terminal dropped queue for the
        # explanation (breadth-first, so the shortest chain wins).
        chain = [q]
        seen = {q}
        frontier = q
        while True:
            next_hop = None
            for node in consumers(frontier):
                rule = graph.rule(node)
                if (rule.kind is RuleKind.SEND
                        and rule.target in productive
                        and rule.target not in seen):
                    next_hop = rule.target
                    break
            if next_hop is None:
                break
            chain.append(next_hop)
            seen.add(next_hop)
            frontier = next_hop
        hops = " -> ".join(chain)
        terminal = chain[-1]
        out.append(make(
            "DWV503",
            "messages on this channel are only ever relayed; the chain "
            f"ends at queue {terminal}, which its receiver never "
            "observes, so every message beyond the bound is dropped",
            where=f"channel {q}",
            subject=f"chain {hops}",
            provenance=tuple(
                f"?{a} relayed by {b}" for a, b in zip(chain, chain[1:])
            ) or (f"?{q} has no observing rule",),
        ))
    return out


def flow_pass(ctx: AnalysisContext) -> list[Diagnostic]:
    """Run the three DWV5xx communication-flow detectors."""
    from .reachability import compute_available

    composition = ctx.composition
    graph = build_comm_graph(composition)
    available = compute_available(composition)
    out = _deadlock_cycles(graph, composition)
    deadlocked: set[str] = set()
    for d in out:
        if d.subject.startswith("cycle "):
            deadlocked.update(d.subject[len("cycle "):].split(" -> "))
    orphans = _orphan_flows(graph, composition, available)
    orphaned = {d.where[len("channel "):] for d in orphans}
    out.extend(orphans)
    out.extend(_dropped_chains(graph, composition, available,
                               orphaned | deadlocked))
    return out


#: The pass object registered in :data:`repro.analysis.passes.ALL_PASSES`.
FlowPass = AnalysisPass(
    "flow", flow_pass,
    "interprocedural communication flow (DWV5xx)",
)


__all__ = ["FlowPass", "build_comm_graph", "flow_pass"]
