"""SARIF 2.1.0 output for ``repro lint``.

Emits the minimal static-analysis interchange document that GitHub code
scanning and SARIF viewers accept: one run, one driver
(``repro-lint``), one reporting rule per DWV code actually used, and
one result per diagnostic.  Peer/rule paths are carried as logical
locations (``.dws`` documents have no stable line numbers after
continuation joining, so physical regions are limited to the artifact).
"""

from __future__ import annotations

import json
from typing import Sequence

from .diagnostics import CODES, Diagnostic, Severity, sort_key

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.NOTE: "note",
}


def _rule(code: str) -> dict:
    info = CODES[code]
    rule: dict = {
        "id": code,
        "shortDescription": {"text": info.title},
        "defaultConfiguration": {"level": _LEVEL[info.severity]},
        "properties": {"paperRef": info.ref},
    }
    if info.hint:
        rule["help"] = {"text": info.hint}
    return rule


def _result(diag: Diagnostic, rule_index: dict[str, int],
            artifact_uri: str | None) -> dict:
    text = diag.message
    if diag.subject:
        text += f": {diag.subject}"
    result: dict = {
        "ruleId": diag.code,
        "ruleIndex": rule_index[diag.code],
        "level": _LEVEL[diag.severity],
        "message": {"text": text},
    }
    location: dict = {}
    if artifact_uri:
        location["physicalLocation"] = {
            "artifactLocation": {"uri": artifact_uri},
        }
    logical = []
    if diag.peer:
        logical.append({"name": diag.peer, "kind": "namespace"})
    if diag.rule:
        logical.append({
            "name": diag.rule, "kind": "function",
            "fullyQualifiedName": diag.where or diag.rule,
        })
    elif diag.where:
        logical.append({"name": diag.where, "kind": "member"})
    if logical:
        location["logicalLocations"] = logical
    if location:
        result["locations"] = [location]
    if diag.hint:
        result.setdefault("properties", {})["hint"] = diag.hint
    return result


def to_sarif(diagnostics: Sequence[Diagnostic],
             artifact_uri: str | None = None) -> str:
    """Render *diagnostics* as a SARIF 2.1.0 JSON document."""
    ordered = sorted(diagnostics, key=sort_key)
    used_codes = sorted({d.code for d in ordered})
    rule_index = {code: i for i, code in enumerate(used_codes)}
    run: dict = {
        "tool": {
            "driver": {
                "name": "repro-lint",
                "informationUri":
                    "https://doi.org/10.1145/1142351.1142364",
                "rules": [_rule(code) for code in used_codes],
            },
        },
        "results": [
            _result(d, rule_index, artifact_uri) for d in ordered
        ],
    }
    if artifact_uri:
        run["artifacts"] = [{"location": {"uri": artifact_uri}}]
    return json.dumps({
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }, indent=2)
