"""SARIF 2.1.0 output for ``repro lint``.

Emits the static-analysis interchange document that GitHub code
scanning and SARIF viewers accept: one driver (``repro-lint``) carrying
the *full* DWV rule catalog (stable rule indices across runs, and the
new DWV5xx/6xx families are discoverable even before they ever fire),
and one result per diagnostic.  Peer/rule paths are carried as logical
locations (``.dws`` documents have no stable line numbers after
continuation joining, so physical regions are limited to the artifact).

Each result carries a stable ``partialFingerprints`` entry hashed from
the code, the peer, and the subject -- the identity GitHub code
scanning uses to deduplicate findings across runs, chosen so that
reordering diagnostics, editing unrelated peers, or rewording a message
does not resurrect a dismissed alert.

:func:`sarif_document` emits one document with multiple runs (one per
linted target), the shape ``repro lint a.dws b.dws --format sarif``
uploads as a single artifact.
"""

from __future__ import annotations

import hashlib
import json
from typing import Sequence

from .diagnostics import CODES, Diagnostic, Severity, sort_key

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.NOTE: "note",
}

#: Stable rule order: the full catalog, sorted by code.
_CATALOG = tuple(sorted(CODES))
_RULE_INDEX = {code: i for i, code in enumerate(_CATALOG)}


def _rule(code: str) -> dict:
    info = CODES[code]
    rule: dict = {
        "id": code,
        "shortDescription": {"text": info.title},
        "defaultConfiguration": {"level": _LEVEL[info.severity]},
        "properties": {"paperRef": info.ref},
    }
    if info.hint:
        rule["help"] = {"text": info.hint}
    return rule


def fingerprint(diag: Diagnostic) -> str:
    """The stable result identity: code + peer + subject, hashed."""
    h = hashlib.sha256()
    for part in (diag.code, diag.peer or "", diag.subject):
        h.update(part.encode("utf-8", "surrogatepass"))
        h.update(b"\x00")
    return h.hexdigest()


def _result(diag: Diagnostic, artifact_uri: str | None) -> dict:
    text = diag.message
    if diag.subject:
        text += f": {diag.subject}"
    result: dict = {
        "ruleId": diag.code,
        "ruleIndex": _RULE_INDEX[diag.code],
        "level": _LEVEL[diag.severity],
        "message": {"text": text},
        "partialFingerprints": {
            "reproLint/v1": fingerprint(diag),
        },
    }
    location: dict = {}
    if artifact_uri:
        location["physicalLocation"] = {
            "artifactLocation": {"uri": artifact_uri},
        }
    logical = []
    if diag.peer:
        logical.append({"name": diag.peer, "kind": "namespace"})
    if diag.rule:
        logical.append({
            "name": diag.rule, "kind": "function",
            "fullyQualifiedName": diag.where or diag.rule,
        })
    elif diag.where:
        logical.append({"name": diag.where, "kind": "member"})
    if logical:
        location["logicalLocations"] = logical
    if location:
        result["locations"] = [location]
    properties: dict = {}
    if diag.hint:
        properties["hint"] = diag.hint
    if diag.provenance:
        properties["provenance"] = list(diag.provenance)
    if properties:
        result["properties"] = properties
    return result


def _run(diagnostics: Sequence[Diagnostic],
         artifact_uri: str | None = None) -> dict:
    ordered = sorted(diagnostics, key=sort_key)
    run: dict = {
        "tool": {
            "driver": {
                "name": "repro-lint",
                "informationUri":
                    "https://doi.org/10.1145/1142351.1142364",
                "rules": [_rule(code) for code in _CATALOG],
            },
        },
        "results": [_result(d, artifact_uri) for d in ordered],
    }
    if artifact_uri:
        run["artifacts"] = [{"location": {"uri": artifact_uri}}]
    return run


def sarif_document(
    entries: Sequence[tuple[Sequence[Diagnostic], str | None]],
) -> str:
    """One SARIF document with one run per ``(diagnostics, uri)`` entry."""
    return json.dumps({
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [_run(diags, uri) for diags, uri in entries],
    }, indent=2)


def to_sarif(diagnostics: Sequence[Diagnostic],
             artifact_uri: str | None = None) -> str:
    """Render *diagnostics* as a single-run SARIF 2.1.0 document."""
    return sarif_document([(diagnostics, artifact_uri)])


__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "fingerprint",
           "sarif_document", "to_sarif"]
