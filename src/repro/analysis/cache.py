"""The content-addressed lint cache.

``repro lint --cache`` over a large corpus should re-analyze only what
changed.  Two cache granularities, both keyed by sha256 over canonical
content (never paths or mtimes):

* **document keys** -- the canonical ``.dws`` dump of the whole
  composition, the normalized property texts, the channel semantics,
  the strict flag, and :data:`PASS_VERSION`.  A hit reconstructs the
  entire :class:`~repro.analysis.diagnostics.LintReport` (diagnostics,
  passes, classification, cost hints) bit-for-bit.
* **peer keys** -- the canonical dump of one peer plus its *inbound
  provenance signature*: for every in-queue, the source-tag set and
  the invention-witness chain of the payload.  The signature is what
  makes per-peer caching sound for the interprocedural ib pass: a
  peer's diagnostics (including their provenance explanations) depend
  on other peers only through what flows into its in-queues, and the
  signature hashes exactly that.  Witness chains are depth-capped (8
  hops, matching what the diagnostics render), so an upstream change
  *beyond* the cap that alters no tag and no rendered chain can --
  harmlessly -- still hit.

Structural scanning is always recomputed (it is cheaper than hashing
would be), and only the per-peer pass families (ib + rules) are served
from peer entries; the genuinely interprocedural passes re-run on every
document miss.  Hits/misses/stores surface as ``lint.cache_*`` obs
counters and as attributes on :class:`LintCache` for the CLI stats
line.

The cache root resolves ``REPRO_LINT_CACHE_DIR`` ->
``$REPRO_RUN_DIR/lint-cache`` -> ``~/.cache/repro/lint``; entries are
two-level-fanout JSON files written atomically (tmp + rename), safe
under concurrent linting.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Mapping, Sequence

from ..obs import counter
from ..obs.live import RUN_DIR_ENV
from ..spec.channels import ChannelSemantics, DECIDABLE_DEFAULT
from ..spec.composition import Composition
from ..spec.dsl import (
    dump_composition, dump_peer, load_composition, load_properties,
    scan_document,
)
from ..spec.peer import Peer
from .channels_pass import channels_pass
from .cost import cost_pass
from .decidability import Classification, classify, decidability_pass
from .diagnostics import Diagnostic, LintReport, Severity
from .flow import flow_pass
from .ib_pass import peer_ib_diagnostics, sentence_ib_diagnostics
from .lint import _parse_sentences, structural_diagnostics
from .passes import AnalysisContext
from .provenance import (
    _invention_witness, compute_provenance, provenance_pass,
)
from .reachability import reachability_pass
from .rules_pass import peer_rules_diagnostics

#: Bump on any change to pass logic or diagnostic rendering: every key
#: embeds it, so stale entries die by never being addressed again.
PASS_VERSION = "1"

_DOC_SCHEMA = f"repro.lint-cache/{PASS_VERSION}"
_PEER_SCHEMA = f"repro.lint-peer/{PASS_VERSION}"

#: Environment override for the cache root.
CACHE_DIR_ENV = "REPRO_LINT_CACHE_DIR"

#: The names run_passes would record for the same pipeline.
_PASS_NAMES = ["ib", "rules", "reachability", "channels",
               "flow", "provenance", "cost", "decidability"]


def default_cache_dir() -> Path:
    """Resolve the cache root (see module docstring)."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    run_dir = os.environ.get(RUN_DIR_ENV)
    if run_dir:
        return Path(run_dir) / "lint-cache"
    return Path.home() / ".cache" / "repro" / "lint"


class LintCache:
    """A content-addressed JSON store with hit/miss accounting."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.document_hits = 0
        self.document_misses = 0
        self.peer_hits = 0
        self.peer_misses = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> dict | None:
        """The stored payload for *key*, or None (missing/corrupt)."""
        try:
            raw = self._path(key).read_text()
            return json.loads(raw)
        except (OSError, ValueError):
            return None

    def store(self, key: str, payload: dict) -> None:
        """Atomically persist *payload* under *key* (best effort)."""
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, default=str)
            os.replace(tmp, path)
        except OSError:
            return
        self.stores += 1
        counter("lint.cache_stores").inc()

    def stats_line(self) -> str:
        """The one-line summary the CLI prints to stderr."""
        return (f"lint-cache: doc-hits={self.document_hits} "
                f"doc-misses={self.document_misses} "
                f"peer-hits={self.peer_hits} "
                f"peer-misses={self.peer_misses} "
                f"stores={self.stores} root={self.root}")


def _digest(parts: Sequence[str]) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8", "surrogatepass"))
        h.update(b"\x00")
    return h.hexdigest()


def _property_lines(properties: Mapping[str, str]) -> list[str]:
    return [f"{name}: {' '.join(text.split())}"
            for name, text in sorted(properties.items())]


def document_key(composition: Composition,
                 properties: Mapping[str, str],
                 semantics: ChannelSemantics,
                 strict: bool) -> str | None:
    """The whole-report cache key, or None when the spec cannot be
    canonically dumped (unemittable constants: never cached)."""
    try:
        dump = dump_composition(composition)
    except Exception:
        return None
    return _digest([_DOC_SCHEMA, dump, *_property_lines(properties),
                    repr(semantics), f"strict={strict}"])


def peer_key(composition: Composition, peer: Peer,
             facts: dict, semantics: ChannelSemantics,
             strict: bool) -> str | None:
    """The per-peer key: peer dump + inbound provenance signature."""
    try:
        dump = dump_peer(peer)
    except Exception:
        return None
    inbound: list[str] = []
    for sym in sorted(peer.in_queues, key=lambda s: s.name):
        tags = sorted(facts.get((peer.name, sym.name), frozenset()))
        inbound.append(f"in {sym.name}: {','.join(tags)}")
        inbound.extend(_invention_witness(
            composition, facts, peer.name, sym.name))
    return _digest([_PEER_SCHEMA, dump, repr(semantics),
                    f"strict={strict}", *inbound])


# -- report (de)serialization ------------------------------------------------


def _payload_from_report(report: LintReport) -> dict:
    return {
        "schema": _DOC_SCHEMA,
        "diagnostics": [d.to_dict() for d in report.diagnostics],
        "passes_run": list(report.passes_run),
        "classifications": {
            name: dataclasses.asdict(c)
            for name, c in report.classifications.items()
        },
        "cost_hints": dict(report.cost_hints),
    }


def _report_from_payload(payload: dict) -> LintReport:
    report = LintReport(
        diagnostics=[Diagnostic.from_dict(d)
                     for d in payload.get("diagnostics", ())],
        passes_run=list(payload.get("passes_run", ())),
        cost_hints=dict(payload.get("cost_hints", {})),
    )
    for name, data in payload.get("classifications", {}).items():
        report.classifications[name] = Classification(
            decidable=data["decidable"],
            theorem=data["theorem"],
            complexity=data.get("complexity"),
            restriction_violated=data.get("restriction_violated"),
            reasons=tuple(data.get("reasons", ())),
        )
    return report


# -- the cached drivers ------------------------------------------------------


def lint_cached_composition(composition: Composition,
                            properties: Mapping[str, str] | None = None,
                            semantics: ChannelSemantics = DECIDABLE_DEFAULT,
                            strict: bool = False,
                            cache: LintCache | None = None) -> LintReport:
    """:func:`~repro.analysis.lint.lint_composition`, cache-backed.

    Reports are bit-for-bit identical to a cold run: document hits
    replay the stored report; document misses rebuild it, serving the
    per-peer pass families (ib + rules) from peer entries where the
    peer and its inbound provenance are unchanged.
    """
    if cache is None:
        cache = LintCache()
    properties = dict(properties or {})
    doc_key = document_key(composition, properties, semantics, strict)
    if doc_key is not None:
        payload = cache.load(doc_key)
        if payload is not None and payload.get("schema") == _DOC_SCHEMA:
            cache.document_hits += 1
            cache.peer_hits += len(composition.peers)
            counter("lint.cache_hits").inc()
            counter("lint.cache_peer_hits").inc(len(composition.peers))
            return _report_from_payload(payload)
    cache.document_misses += 1
    counter("lint.cache_misses").inc()

    sentences = _parse_sentences(properties, composition)
    facts = compute_provenance(composition)
    diagnostics: list[Diagnostic] = []
    for peer in composition.peers:
        key = peer_key(composition, peer, facts, semantics, strict)
        bundle = cache.load(key) if key is not None else None
        if bundle is not None and bundle.get("schema") == _PEER_SCHEMA:
            cache.peer_hits += 1
            counter("lint.cache_peer_hits").inc()
            diagnostics.extend(
                Diagnostic.from_dict(d) for d in bundle["diagnostics"])
            continue
        cache.peer_misses += 1
        counter("lint.cache_peer_misses").inc()
        found = peer_ib_diagnostics(composition, peer, facts, strict)
        found.extend(peer_rules_diagnostics(peer))
        diagnostics.extend(found)
        if key is not None:
            cache.store(key, {
                "schema": _PEER_SCHEMA,
                "diagnostics": [d.to_dict() for d in found],
            })

    ctx = AnalysisContext(
        composition=composition, sentences=dict(sentences),
        semantics=semantics, strict=strict,
    )
    for name, sentence in sorted(sentences.items()):
        diagnostics.extend(sentence_ib_diagnostics(
            composition, name, sentence, facts, strict))
    diagnostics.extend(reachability_pass(ctx))
    diagnostics.extend(channels_pass(ctx))
    diagnostics.extend(flow_pass(ctx))
    diagnostics.extend(provenance_pass(ctx))
    cost_pass(ctx)
    diagnostics.extend(decidability_pass(ctx))

    report = LintReport(
        diagnostics=diagnostics,
        passes_run=list(_PASS_NAMES),
        cost_hints=dict(ctx.cost_hints),
    )
    report.classifications["composition"] = classify(
        composition, list(sentences.values()), semantics, strict=strict,
    )
    if doc_key is not None:
        cache.store(doc_key, _payload_from_report(report))
    return report


def lint_cached(text: str,
                semantics: ChannelSemantics = DECIDABLE_DEFAULT,
                strict: bool = False,
                cache: LintCache | None = None) -> LintReport:
    """:func:`~repro.analysis.lint.lint_text`, cache-backed.

    The structural scan always runs (it is the cheap part and gates the
    build); the pass pipeline behind it is served from the cache.
    """
    document = scan_document(text)
    structural = structural_diagnostics(document)
    counter("lint.structural.diagnostics").inc(len(structural))
    if any(d.severity is Severity.ERROR for d in structural):
        return LintReport(diagnostics=structural,
                          passes_run=["structure"])
    composition = load_composition(text)
    properties = load_properties(text)
    report = lint_cached_composition(
        composition, properties, semantics, strict=strict, cache=cache)
    report.diagnostics = structural + report.diagnostics
    report.passes_run.insert(0, "structure")
    return report


__all__ = [
    "CACHE_DIR_ENV", "LintCache", "PASS_VERSION", "default_cache_dir",
    "document_key", "lint_cached", "lint_cached_composition", "peer_key",
]
