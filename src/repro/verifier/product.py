"""On-the-fly product of the composition transition system with an NBA.

The composition's reachable snapshot graph is finite once the data domain
and the queue bound are fixed (the computational content of Theorem 3.4's
reduction).  :class:`TransitionCache` memoizes successor computation so
multiple property valuations share one exploration;
:class:`ProductSystem` lazily pairs snapshots with Büchi states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from ..errors import VerificationError
from ..fo.instance import Instance
from ..fo.terms import Value
from ..ltl.buchi import BuchiAutomaton
from ..obs import PHASE_EXPAND, counter, histogram, phase
from ..spec.channels import ChannelSemantics
from ..spec.composition import Composition
from ..runtime.state import GlobalState
from ..runtime.step import initial_states, successors
from .atoms import SnapshotEvaluator


@dataclass
class SearchBudget:
    """Caps on the explicit search, to fail fast instead of hanging."""

    max_system_states: int = 2_000_000
    max_product_nodes: int = 5_000_000


class TransitionCache:
    """Memoized transition relation of one composition + database + domain."""

    def __init__(self, composition: Composition,
                 databases: Mapping[str, Instance],
                 domain: Sequence[Value],
                 semantics: ChannelSemantics,
                 include_environment: bool = True,
                 budget: SearchBudget | None = None,
                 env_max_nested_rows: int = 1,
                 env_one_action_per_move: bool = True,
                 env_value_domain: Sequence[Value] | None = None) -> None:
        if semantics.queue_bound is None:
            raise VerificationError(
                "verification requires bounded queues (Corollary 3.6: "
                "unbounded queues make verification undecidable); "
                "set ChannelSemantics.queue_bound"
            )
        self.composition = composition
        self.databases = dict(databases)
        self.domain = tuple(domain)
        self.semantics = semantics
        self.include_environment = include_environment
        self.env_max_nested_rows = env_max_nested_rows
        self.env_one_action_per_move = env_one_action_per_move
        self.env_value_domain = env_value_domain
        self.budget = budget or SearchBudget()
        self._initial: tuple[GlobalState, ...] | None = None
        self._successors: dict[GlobalState, tuple[GlobalState, ...]] = {}

    def initial(self) -> tuple[GlobalState, ...]:
        if self._initial is None:
            self._initial = tuple(
                initial_states(self.composition, self.databases, self.domain)
            )
        return self._initial

    def successors_of(self, state: GlobalState) -> tuple[GlobalState, ...]:
        cached = self._successors.get(state)
        if cached is None:
            if len(self._successors) >= self.budget.max_system_states:
                raise VerificationError(
                    f"system-state budget "
                    f"({self.budget.max_system_states}) exceeded; "
                    "reduce the domain, queue bound, or composition size"
                )
            with phase(PHASE_EXPAND):
                cached = tuple(
                    successors(
                        self.composition, state, self.domain,
                        self.semantics,
                        include_environment=self.include_environment,
                        env_max_nested_rows=self.env_max_nested_rows,
                        env_one_action_per_move=self.env_one_action_per_move,
                        env_value_domain=self.env_value_domain,
                    )
                )
            self._successors[state] = cached
            counter("product.states_expanded").inc()
            histogram("product.branching_factor",
                      boundaries=(1, 2, 4, 8, 16, 32, 64, 128, 256)
                      ).observe(len(cached))
        return cached

    @property
    def states_expanded(self) -> int:
        return len(self._successors)


#: A product node: (system snapshot, Büchi state).
ProductNode = tuple


class ProductSystem:
    """The synchronous product used by the emptiness search.

    The NBA reads, on each transition, the letter (AP valuation) of the
    *source* system snapshot; the automaton's distinguished pre-initial
    state (from the GPVW translation) therefore reads the initial
    snapshot's letter on its outgoing edges, matching the LTL convention
    that position 0 is the initial snapshot.
    """

    def __init__(self, cache: TransitionCache, nba: BuchiAutomaton,
                 evaluator: SnapshotEvaluator) -> None:
        self.cache = cache
        self.nba = nba
        self.evaluator = evaluator

    def initial_nodes(self) -> list[ProductNode]:
        return [
            (state, q)
            for state in self.cache.initial()
            for q in self.nba.initial
        ]

    def successors(self, node: ProductNode) -> Iterator[ProductNode]:
        state, q = node
        letter = self.evaluator.letter(state)
        targets = [
            edge.dst for edge in self.nba.edges_from(q)
            if edge.guard.satisfied(letter)
        ]
        if not targets:
            return
        for nxt in self.cache.successors_of(state):
            for dst in targets:
                yield (nxt, dst)

    def is_accepting(self, node: ProductNode) -> bool:
        return node[1] in self.nba.accepting
