"""Hash-consed exploration graph shared across property valuations.

Theorem 3.4's reduction rests on a fact this module exploits directly:
the composition's reachable snapshot graph is *valuation-independent* --
different valuations of a property's closure variables change only the
AP letters the Büchi automaton reads, never the snapshots or the
transitions between them.  The seed engine re-derives that graph for
every valuation (and, under ``--workers``, once per worker process).

Three pieces remove the redundancy:

* :class:`StateInterner` hash-conses :class:`GlobalState` snapshots into
  dense integer ids, so visited-set membership during the nested DFS is
  an int hash instead of a deep nested-tuple hash, and product nodes are
  ``(int, buchi_state)`` pairs.
* :class:`SharedExploration` wraps one :class:`TransitionCache` behind
  the interner, memoizes successor rows as id tuples, and can
  :meth:`~SharedExploration.complete` the reachable graph into a frozen
  CSR adjacency (:class:`ExploredGraph`): two flat ``array('q')``
  buffers, ``offsets``/``targets``.  Once frozen, every subsequent
  valuation's product search is a pure graph walk -- no rule firing, no
  snapshot hashing, no dict-of-states lookups.
* :class:`ExploredGraph` is picklable, so the parallel sweep's driver
  can expand once and ship the frozen graph to pool workers
  (:meth:`SharedExploration.from_graph`), instead of every worker
  re-expanding the same state space from scratch.

Successor order, initial-state order, and Büchi target order are all
preserved exactly, so the interned product visits the same nodes in the
same order as the seed :class:`~repro.verifier.product.ProductSystem` --
verdicts, counterexample lassos, and search node counts are identical
(the differential suite pins this).
"""

from __future__ import annotations

import os
import pickle
from array import array
from collections import deque
from typing import Iterator

from ..errors import VerificationError
from ..obs import counter, gauge
from ..runtime.state import GlobalState
from ..spec.composition import Composition
from .product import ProductNode, SearchBudget, TransitionCache

#: Engine names accepted by ``verify(..., engine=...)`` and the CLI.
ENGINES = ("shared", "seed")


def resolve_engine(engine: str | None) -> str:
    """Normalize an engine selector (None -> ``REPRO_ENGINE`` or shared)."""
    if engine is None:
        engine = os.environ.get("REPRO_ENGINE", "") or "shared"
    if engine not in ENGINES:
        raise VerificationError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    return engine


class StateInterner:
    """Hash-cons snapshots into dense ids (ids are assignment order)."""

    __slots__ = ("_ids", "_states")

    def __init__(self, states: tuple[GlobalState, ...] = ()) -> None:
        self._states: list[GlobalState] = list(states)
        self._ids: dict[GlobalState, int] = {
            s: i for i, s in enumerate(self._states)
        }

    def intern(self, state: GlobalState) -> int:
        sid = self._ids.get(state)
        if sid is None:
            sid = len(self._states)
            self._ids[state] = sid
            self._states.append(state)
        return sid

    def state_of(self, sid: int) -> GlobalState:
        return self._states[sid]

    def snapshot(self) -> tuple[GlobalState, ...]:
        return tuple(self._states)

    def __len__(self) -> int:
        return len(self._states)


def _as_q_array(data) -> array:
    """Coerce CSR buffer data back into an owned ``array('q')``.

    Accepts whatever the pickle layer hands us: an ``array`` (older
    pickles), in-band ``bytes``/``bytearray`` (a :class:`pickle.
    PickleBuffer` serialized without out-of-band transport), or a
    ``memoryview`` (out-of-band buffer, or a shared-memory cast).
    """
    if isinstance(data, array):
        return data
    if isinstance(data, memoryview):
        data = data.cast("B")
    out = array("q")
    out.frombytes(bytes(data))
    return out


def _rebuild_graph(states, initial_ids, offsets, targets, budget
                   ) -> "ExploredGraph":
    return ExploredGraph(states, tuple(initial_ids),
                         _as_q_array(offsets), _as_q_array(targets), budget)


class ExploredGraph:
    """A frozen reachable snapshot graph in CSR form (picklable).

    ``states[i]`` is the snapshot with interned id ``i``; the successors
    of ``i`` are ``targets[offsets[i]:offsets[i+1]]``, in the exact
    order :func:`repro.runtime.step.successors` produced them.

    ``offsets``/``targets`` are normally ``array('q')`` buffers, but a
    graph attached from shared memory carries ``memoryview`` casts over
    the mapping instead (see :mod:`repro.verifier.shm`) -- every access
    pattern used here (indexing, slicing, ``len``) behaves identically.
    Pickling always materializes owned arrays, and under protocol 5 the
    CSR buffers travel as :class:`pickle.PickleBuffer` so transports
    that support out-of-band buffers skip one copy.
    """

    __slots__ = ("states", "initial_ids", "offsets", "targets", "budget")

    def __init__(self, states: tuple[GlobalState, ...],
                 initial_ids: tuple[int, ...],
                 offsets, targets,
                 budget: SearchBudget) -> None:
        self.states = states
        self.initial_ids = initial_ids
        self.offsets = offsets
        self.targets = targets
        self.budget = budget

    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def num_edges(self) -> int:
        return len(self.targets)

    @property
    def csr_nbytes(self) -> int:
        """Bytes of the two CSR buffers (the zero-copy payload)."""
        itemsize = array("q").itemsize
        return (len(self.offsets) + len(self.targets)) * itemsize

    def __reduce_ex__(self, protocol: int):
        offsets = _as_q_array(self.offsets)
        targets = _as_q_array(self.targets)
        if protocol >= 5:
            return (_rebuild_graph, (
                self.states, tuple(self.initial_ids),
                pickle.PickleBuffer(offsets), pickle.PickleBuffer(targets),
                self.budget,
            ))
        return (_rebuild_graph, (
            self.states, tuple(self.initial_ids), offsets, targets,
            self.budget,
        ))


class SharedExploration:
    """One interned exploration, reused by every valuation's search.

    Wraps a live :class:`TransitionCache` (driver side) or a frozen
    :class:`ExploredGraph` (worker side, via :meth:`from_graph`); either
    way the product search only ever sees integer state ids.
    """

    def __init__(self, cache: TransitionCache) -> None:
        self.cache: TransitionCache | None = cache
        self.composition: Composition = cache.composition
        self.budget: SearchBudget = cache.budget
        self.interner = StateInterner()
        self._initial_ids: tuple[int, ...] | None = None
        self._succ: dict[int, tuple[int, ...]] = {}
        self._frozen: ExploredGraph | None = None
        self._reuse_hits = counter("graph.reuse_hits")
        from .atoms import SharedSnapshotContext
        self.shared = SharedSnapshotContext(self.composition, self.interner)

    @classmethod
    def from_graph(cls, graph: ExploredGraph,
                   composition: Composition) -> "SharedExploration":
        """An exploration served entirely from a pre-expanded graph."""
        self = cls.__new__(cls)
        self.cache = None
        self.composition = composition
        self.budget = graph.budget
        self.interner = StateInterner(graph.states)
        self._initial_ids = tuple(graph.initial_ids)
        self._succ = {}
        self._frozen = graph
        self._reuse_hits = counter("graph.reuse_hits")
        from .atoms import SharedSnapshotContext
        self.shared = SharedSnapshotContext(composition, self.interner)
        return self

    @property
    def frozen(self) -> ExploredGraph | None:
        return self._frozen

    @property
    def states_expanded(self) -> int:
        """Snapshots expanded *in this process* (0 for shipped graphs)."""
        return self.cache.states_expanded if self.cache is not None else 0

    def initial_ids(self) -> tuple[int, ...]:
        if self._initial_ids is None:
            assert self.cache is not None
            self._initial_ids = tuple(
                self.interner.intern(s) for s in self.cache.initial()
            )
        return self._initial_ids

    def successors_of(self, sid: int) -> tuple[int, ...]:
        succ = self._succ.get(sid)
        if succ is not None:
            self._reuse_hits.inc()
            return succ
        graph = self._frozen
        if graph is not None:
            offsets = graph.offsets
            succ = tuple(graph.targets[offsets[sid]:offsets[sid + 1]])
            self._reuse_hits.inc()
        else:
            assert self.cache is not None
            intern = self.interner.intern
            succ = tuple(
                intern(s) for s in
                self.cache.successors_of(self.interner.state_of(sid))
            )
        self._succ[sid] = succ
        return succ

    def complete(self, strict: bool = True) -> ExploredGraph | None:
        """Expand the full reachable graph and freeze it into CSR form.

        Valuation-independence (Theorem 3.4) makes this sound: the
        frozen graph serves every valuation of every property over the
        same composition/databases/semantics.  With ``strict=False`` a
        budget overrun returns None and leaves the exploration lazy --
        callers treat freezing as an optimization, not an obligation
        (the lazy product may stay within budget where the full graph
        does not).
        """
        if self._frozen is not None:
            return self._frozen
        try:
            frontier = deque(self.initial_ids())
            seen = set(frontier)
            while frontier:
                sid = frontier.popleft()
                for target in self.successors_of(sid):
                    if target not in seen:
                        seen.add(target)
                        frontier.append(target)
        except VerificationError:
            if strict:
                raise
            return None
        n = len(self.interner)
        offsets = array("q", [0])
        targets = array("q")
        for sid in range(n):
            targets.extend(self._succ[sid])
            offsets.append(len(targets))
        self._frozen = ExploredGraph(
            self.interner.snapshot(), self.initial_ids(), offsets,
            targets, self.budget,
        )
        counter("graph.freezes").inc()
        gauge("graph.interned_states").set(n)
        gauge("graph.frozen_edges").set(len(targets))
        return self._frozen


class InternedProduct:
    """Drop-in for :class:`ProductSystem` over interned state ids.

    Nodes are ``(state_id, buchi_state)``; ``cache`` aliases the
    exploration so the search's ``product.cache.budget`` access works
    unchanged.  Successor enumeration mirrors ``ProductSystem`` exactly
    (letter of the *source* snapshot; same target and successor order).
    """

    def __init__(self, space: SharedExploration, nba,
                 evaluator) -> None:
        self.cache = space
        self.space = space
        self.nba = nba
        self.evaluator = evaluator

    def initial_nodes(self) -> list[ProductNode]:
        return [
            (sid, q)
            for sid in self.space.initial_ids()
            for q in self.nba.initial
        ]

    def successors(self, node: ProductNode) -> Iterator[ProductNode]:
        sid, q = node
        letter = self.evaluator.letter(sid)
        targets = [
            edge.dst for edge in self.nba.edges_from(q)
            if edge.guard.satisfied(letter)
        ]
        if not targets:
            return
        for nxt in self.space.successors_of(sid):
            for dst in targets:
                yield (nxt, dst)

    def is_accepting(self, node: ProductNode) -> bool:
        return node[1] in self.nba.accepting
