"""Verification-domain computation (the bounded-domain principle).

The decidability results (Theorem 3.4 and its relatives) rest on the
bounded-domain property inherited from [12]: an input-bounded property is
violated by some run iff it is violated by a run whose data values are
drawn from a domain of size computable from the specification -- the
constants mentioned anywhere, plus a fresh value for each variable a rule
or property can bind simultaneously.

:func:`verification_domain` computes that domain.  The returned
:class:`VerificationDomain` separates constants from interchangeable fresh
values so the verifier can canonicalize valuations (fresh values are
symmetric under permutation as long as they do not occur in the database).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..fo.instance import Instance
from ..fo.terms import Value, value_sort_key
from ..ltlfo.formulas import LTLFOSentence
from ..obs import PHASE_VALUATIONS, phase
from ..spec.composition import Composition

FRESH_PREFIX = "$v"


@dataclass(frozen=True)
class VerificationDomain:
    """The finite data domain a verification run ranges over.

    ``constants`` are values pinned by the specification, the property, or
    the concrete databases; ``fresh`` are interchangeable extra values
    representing "any other data value".
    """

    constants: tuple[Value, ...]
    fresh: tuple[Value, ...]

    @property
    def values(self) -> tuple[Value, ...]:
        return self.constants + self.fresh

    def __len__(self) -> int:
        return len(self.constants) + len(self.fresh)

    def __iter__(self):
        return iter(self.values)

    def describe(self) -> str:
        return (f"{len(self.constants)} constants + "
                f"{len(self.fresh)} fresh values")


def fresh_values(count: int, taken: Iterable[Value]) -> tuple[str, ...]:
    """*count* fresh string values distinct from everything in *taken*."""
    taken_set = set(taken)
    out: list[str] = []
    i = 0
    while len(out) < count:
        candidate = f"{FRESH_PREFIX}{i}"
        if candidate not in taken_set:
            out.append(candidate)
        i += 1
    return tuple(out)


def verification_domain(
    composition: Composition,
    properties: Sequence[LTLFOSentence] = (),
    databases: Mapping[str, Instance] | None = None,
    extra_fresh: int = 0,
    fresh_count: int | None = None,
) -> VerificationDomain:
    """The default verification domain for a composition and properties.

    Constants: every constant in any rule or property payload, plus the
    active domains of the given databases.  Fresh values: one per distinct
    variable of the largest rule or property (so any single rule firing or
    valuation can be served by fresh values alone), plus one headroom
    value, plus *extra_fresh*.  ``fresh_count`` overrides the computed
    number entirely (smaller domains remain sound for *bug finding*:
    every counterexample found is real; they may only miss bugs needing
    more distinct values).
    """
    constants: set[Value] = set(composition.constants())
    for prop in properties:
        constants |= prop.constants()
    for db in (databases or {}).values():
        constants |= db.active_domain()

    if fresh_count is None:
        width = composition.max_rule_variables()
        for prop in properties:
            width = max(width, prop.variable_count())
        fresh_count = width + 1 + extra_fresh

    fresh = fresh_values(fresh_count, constants)
    ordered = tuple(sorted(constants, key=value_sort_key))
    return VerificationDomain(ordered, fresh)


def canonical_valuations(
    variables: Sequence, domain: VerificationDomain
) -> list[dict]:
    """Valuations of the closure variables, up to fresh-value symmetry.

    Fresh values are interchangeable (they occur in no database and no
    formula), so a valuation using fresh values is canonical iff the fresh
    values it uses are the first ones, introduced in order of first use.
    This prunes the ``|domain|^k`` enumeration substantially without
    losing completeness.
    """
    results: list[dict] = []

    def extend(idx: int, current: dict, used_fresh: int) -> None:
        if idx == len(variables):
            results.append(dict(current))
            return
        var = variables[idx]
        for value in domain.constants:
            current[var] = value
            extend(idx + 1, current, used_fresh)
        # fresh choices: reuse any already-used fresh value, or take the
        # next unused one (introducing fresh values in order)
        limit = min(used_fresh + 1, len(domain.fresh))
        for j in range(limit):
            current[var] = domain.fresh[j]
            extend(idx + 1, current, max(used_fresh, j + 1))
        current.pop(var, None)

    with phase(PHASE_VALUATIONS):
        extend(0, {}, 0)
    return results


def canonicalize_valuation(
    variables: Sequence, valuation: Mapping, domain: VerificationDomain
) -> dict:
    """The canonical representative of a valuation's symmetry orbit.

    Fresh values are interchangeable, so two valuations that differ only
    by a permutation of fresh values describe the same verification
    obligation.  The representative renames fresh values to the first
    ones of ``domain.fresh`` in order of first use (constants are left
    untouched).  :func:`canonical_valuations` enumerates exactly the
    fixpoints of this map -- a property the property-based tests check.
    """
    fresh_set = set(domain.fresh)
    rename: dict = {}
    out: dict = {}
    for var in variables:
        value = valuation[var]
        if value in fresh_set:
            if value not in rename:
                rename[value] = domain.fresh[len(rename)]
            value = rename[value]
        out[var] = value
    return out


def enumerate_databases(
    relation_arities: Mapping[str, int],
    domain: Sequence[Value],
    max_rows: int = 1,
) -> list[Instance]:
    """All databases over *domain* with at most *max_rows* rows per relation.

    Exhaustive and exponential -- intended for completeness experiments on
    tiny schemas.  Relations are filled independently; the result is the
    cross product of per-relation row subsets.
    """
    import itertools

    per_relation: list[list[tuple[str, frozenset]]] = []
    for name in sorted(relation_arities):
        arity = relation_arities[name]
        rows = sorted(
            itertools.product(domain, repeat=arity),
            key=lambda r: tuple(value_sort_key(v) for v in r),
        )
        choices: list[tuple[str, frozenset]] = []
        for size in range(max_rows + 1):
            for combo in itertools.combinations(rows, size):
                choices.append((name, frozenset(combo)))
        per_relation.append(choices)

    out: list[Instance] = []
    for combo in itertools.product(*per_relation):
        out.append(Instance({name: rows for name, rows in combo}))
    return out
