"""Parallel valuation-sweep execution engine for the LTL-FO verifier.

The verifier's outer loop is embarrassingly parallel: each canonical
valuation of the property's closure variables (times each candidate
database, for enumeration sweeps) spawns an independent Büchi
translation plus nested-DFS emptiness search.  This module fans that
(valuation, database) task grid out across worker processes, organized
in three planes:

* **Zero-copy graph plane.**  Under the shared engine the driver
  expands the valuation-independent reachable graph once (Theorem 3.4)
  and publishes its CSR arrays in a ``multiprocessing.shared_memory``
  segment (:mod:`repro.verifier.shm`); workers *attach* read-only views
  instead of unpickling private copies, so seeding cost no longer grows
  with worker count.  When shared memory is unavailable the frozen
  graph ships pickled inside the payload (the PR 5 path), and when a
  pool cannot be used at all the sweep runs sequentially in-process.
* **Work-stealing scheduler.**  Tasks are chunked into valuation-group
  batches and dealt round-robin onto per-worker deques; a worker pops
  from the front of its own deque and, when empty, steals from the back
  of a victim's.  Scheduling is dynamic, but the *decision* is not:
  a group's verdict is decided by the lowest-order violated task, so
  any schedule -- any worker count, any steal pattern -- returns the
  same verdict, the same decisive valuation, and the same
  counterexample lasso as the sequential sweep.
* **Shard plane.**  ``shard=(i, N)`` restricts the sweep to the i-th
  residue class of the task order (``order % N == i``) while keeping
  global order numbers, so independent machines can each run one shard
  and a later ``repro merge-shards`` reassembles the global verdict by
  the same lowest-order-wins rule (:mod:`repro.verifier.shards`).

* **Early cancellation.**  As soon as any worker finds an accepting
  lasso it publishes the violated order in a shared array; workers poll
  it from inside the emptiness search (:class:`~repro.verifier.search.
  SearchCancelled`) and abandon in-flight tasks that can no longer
  affect the verdict (only tasks *later* in the order are cancelled --
  earlier ones must still complete to keep the decision deterministic).
* **Per-task stats.**  Every task reports wall time, node counts, and
  observability deltas; the driver aggregates them into
  :class:`VerifierStats`.  Only tasks at or before the decisive order
  contribute to the headline counters, so ``product_nodes_visited``
  matches the sequential sweep exactly.

All cross-process serialization (payload, batch plan, result messages)
uses ``pickle.HIGHEST_PROTOCOL`` explicitly -- the multiprocessing
default is protocol 4, which measurably inflates worker seeding cost
on snapshot-heavy payloads.
"""

from __future__ import annotations

import itertools
import os
import pickle
import queue as queue_mod
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from ..fo.instance import Instance
from ..fo.terms import Value, Var, value_sort_key
from ..ltl.formulas import land, latom, lfinally, lglobally, lnot
from ..ltl.translate import ltl_to_buchi
from ..ltlfo.formulas import LTLFOSentence
from ..obs import (
    NULL_PROGRESS, PHASE_SWEEP, REGISTRY, counter, counters_snapshot,
    diff_numeric,
    gauge, instant, merge_counters, merge_numeric, phase, phase_counts,
    phase_seconds, reset_for_worker, sweep_progress,
)
from ..obs import ledger
from ..runtime.run import Lasso
from ..runtime.step import (
    clear_rule_cache, rule_cache_delta, rule_cache_info,
)
from ..spec.channels import ChannelSemantics
from ..spec.composition import Composition
from .atoms import InternedSnapshotEvaluator, OccursAtom, SnapshotEvaluator
from .domain import VerificationDomain
from .graph import (
    ExploredGraph, InternedProduct, SharedExploration, resolve_engine,
)
from .product import ProductSystem, SearchBudget, TransitionCache
from .result import (
    Counterexample, TaskStats, VerificationResult, VerifierStats,
)
from .search import SearchCancelled, find_accepting_lasso
from .shm import GraphSegment, ShmGraphHandle, attach_graph, shm_available

#: Sentinel order meaning "no violation found yet" in the cancel array.
_UNDECIDED = 2 ** 62

#: Target number of steal batches dealt per worker.  Small enough that
#: a batch amortizes per-task queue traffic, large enough that an
#: unlucky initial deal leaves real work to steal.
STEAL_BATCHES_PER_WORKER = 4

#: Seconds the driver waits on the result queue before re-checking
#: worker liveness (a killed worker never sends anything).
_POLL_SECONDS = 0.2


# ---------------------------------------------------------------------------
# worker-count resolution


def default_workers() -> int:
    """The worker count implied by ``REPRO_WORKERS`` (default: 1).

    ``REPRO_WORKERS=0`` (or any non-positive value) means "all cores".
    """
    raw = os.environ.get("REPRO_WORKERS", "")
    try:
        n = int(raw)
    except ValueError:
        return 1
    if n <= 0:
        return os.cpu_count() or 1
    return n


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``workers=`` argument (None -> env default, <=0 -> all)."""
    if workers is None:
        return default_workers()
    if workers <= 0:
        return os.cpu_count() or 1
    return workers


def resolve_shard(shard: tuple[int, int] | None) -> tuple[int, int] | None:
    """Validate a ``shard=(i, N)`` argument (None passes through)."""
    if shard is None:
        return None
    index, count = shard
    if count < 1 or not (0 <= index < count):
        raise ValueError(
            f"shard index/count {index}/{count} invalid: need "
            "0 <= index < count"
        )
    return (int(index), int(count))


def shard_filter(tasks: Sequence["SweepTask"],
                 shard: tuple[int, int] | None) -> list["SweepTask"]:
    """The subset of *tasks* owned by this shard (orders stay global).

    Partitioning is round-robin on the task order within each group
    (``order % N == i``): deterministic, balanced even when early
    orders are systematically cheaper, and independent of the engine,
    worker count, and batch size.  A merged N-shard run therefore
    covers exactly the unsharded task set, each task exactly once.
    """
    shard = resolve_shard(shard)
    if shard is None:
        return list(tasks)
    index, count = shard
    return [t for t in tasks if t.order % count == index]


# ---------------------------------------------------------------------------
# the task grid


@dataclass(frozen=True)
class SweepContext:
    """One database context of the grid: fixed databases + their domain."""

    databases: tuple[tuple[str, Instance], ...]
    domain: VerificationDomain


@dataclass(frozen=True)
class SweepPayload:
    """Everything a worker needs, shipped once per worker.

    Exactly one of ``graph_handle`` / ``frozen_graph`` is set when the
    driver pre-expanded the reachable graph: ``graph_handle`` names a
    shared-memory segment workers attach to (zero-copy), while
    ``frozen_graph`` embeds the pickled graph in the payload itself
    (the fallback when shared memory is unavailable).  The driver-side
    copy of a prepared payload keeps ``frozen_graph`` populated even on
    the shm path so the sequential fallback never re-expands;
    :func:`payload_to_bytes` strips it from what workers receive.
    """

    composition: Composition
    contexts: tuple[SweepContext, ...]
    sentences: tuple[LTLFOSentence, ...]
    semantics: ChannelSemantics
    include_environment: bool = True
    env_value_domain: tuple[Value, ...] | None = None
    env_one_action_per_move: bool = True
    fair_scheduling: bool = False
    budget: SearchBudget | None = None
    #: "shared" (interned exploration, frozen-graph reuse) or "seed".
    engine: str = "shared"
    #: Pre-expanded reachable graph (pickle-fallback shipping path).
    frozen_graph: ExploredGraph | None = None
    #: Shared-memory descriptor of the pre-expanded graph (zero-copy).
    graph_handle: ShmGraphHandle | None = None


@dataclass(frozen=True)
class SweepTask:
    """One cell of the (valuation, database) grid.

    ``group`` selects the result slot (one per property in
    ``verify_all``); ``order`` is the task's position in the sequential
    sweep of its group -- the determinism anchor.
    """

    group: int
    order: int
    ctx: int
    sentence: int
    valuation: tuple[tuple[Var, Value], ...]


@dataclass(frozen=True)
class TaskOutcome:
    """What a worker reports back for one task.

    Besides the verdict-relevant lasso and node counters, each outcome
    carries the observability deltas accrued while executing the task
    in its worker process: exclusive per-phase seconds/entry counts
    (:mod:`repro.obs.phases`) and rule-cache counter movement
    (:func:`repro.runtime.step.rule_cache_delta`).  These would
    otherwise die with the pool worker; the driver merges them into
    :class:`~repro.verifier.result.VerifierStats` so ``--stats`` and
    ``repro profile`` report true totals under ``--workers > 1``.
    """

    group: int
    order: int
    ctx: int
    valuation: tuple[tuple[Var, Value], ...]
    cancelled: bool
    lasso_prefix: tuple | None
    lasso_cycle: tuple | None
    nba_states: int
    blue_visited: int
    red_visited: int
    states_expanded: int
    wall_seconds: float
    worker: str = ""
    phase_seconds: dict = field(default_factory=dict)
    phase_counts: dict = field(default_factory=dict)
    rule_cache: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)


def freeze_valuation(valuation: Mapping[Var, Value]
                     ) -> tuple[tuple[Var, Value], ...]:
    """A hashable, deterministic form of a closure valuation."""
    return tuple(sorted(valuation.items(), key=lambda kv: kv[0].name))


# ---------------------------------------------------------------------------
# one grid cell (shared by the sequential and parallel sweeps)


@dataclass(frozen=True)
class ValuationOutcome:
    """Result of checking one valuation: lasso (if violated) + counters."""

    lasso_prefix: tuple | None
    lasso_cycle: tuple | None
    nba_states: int
    blue_visited: int
    red_visited: int

    @property
    def violated(self) -> bool:
        return self.lasso_cycle is not None


def fairness_terms(composition: Composition) -> list:
    """``/\\ GF move_W`` conjuncts restricting to fair runs."""
    from ..fo.formulas import Atom
    from ..fo.schema import move_name
    return [
        lglobally(lfinally(latom(Atom(move_name(p.name), ()))))
        for p in composition.peers
    ]


def check_one_valuation(composition: Composition,
                        sentence: LTLFOSentence,
                        valuation: Mapping[Var, Value],
                        domain: VerificationDomain,
                        cache: TransitionCache | None,
                        fair_scheduling: bool = False,
                        should_stop=None,
                        engine: SharedExploration | None = None
                        ) -> ValuationOutcome:
    """Translate + search one valuation of the closure variables.

    The per-valuation unit of work of :func:`repro.verifier.verify`:
    instantiate the sentence, negate, conjoin the ``Dom(rho)``
    ``F occurs(v)`` restrictions (and fairness terms if requested),
    translate to a Büchi automaton, and search the on-the-fly product
    for an accepting lasso.

    With ``engine`` (a :class:`~repro.verifier.graph.SharedExploration`)
    the product runs over interned state ids and the exploration's
    shared snapshot/letter caches; lasso nodes are mapped back to
    snapshots before returning, so the outcome is indistinguishable
    from the seed path.
    """
    body = sentence.instantiate(valuation)
    negated = lnot(body)
    # Dom(rho) restriction: fresh valuation values must occur.  Sorted
    # so the conjunct order (hence the GPVW translation) is identical
    # across processes regardless of hash randomization.
    occurs_terms = [
        lfinally(latom(OccursAtom(v)))
        for v in sorted(set(valuation.values()), key=value_sort_key)
        if v not in domain.constants
    ]
    extra = fairness_terms(composition) if fair_scheduling else []
    nba = ltl_to_buchi(land(negated, *occurs_terms, *extra))
    if engine is not None:
        evaluator = InternedSnapshotEvaluator(
            composition, domain.values, nba.aps, engine.shared
        )
        product = InternedProduct(engine, nba, evaluator)
    else:
        assert cache is not None
        evaluator = SnapshotEvaluator(composition, domain.values, nba.aps)
        product = ProductSystem(cache, nba, evaluator)
    lasso_nodes, search_stats = find_accepting_lasso(
        product, should_stop=should_stop
    )
    if lasso_nodes is None:
        return ValuationOutcome(None, None, nba.num_states(),
                                search_stats.blue_visited,
                                search_stats.red_visited)
    if engine is not None:
        state_of = engine.interner.state_of
        prefix = tuple(state_of(n[0]) for n in lasso_nodes.prefix)
        cycle = tuple(state_of(n[0]) for n in lasso_nodes.cycle)
    else:
        prefix = tuple(n[0] for n in lasso_nodes.prefix)
        cycle = tuple(n[0] for n in lasso_nodes.cycle)
    return ValuationOutcome(prefix, cycle, nba.num_states(),
                            search_stats.blue_visited,
                            search_stats.red_visited)


# ---------------------------------------------------------------------------
# payload serialization


def payload_to_bytes(payload: SweepPayload, workers: int = 1) -> bytes:
    """Pickle the worker payload (``HIGHEST_PROTOCOL``, graph-aware).

    On the zero-copy path the embedded ``frozen_graph`` is stripped --
    workers attach via ``graph_handle`` instead -- and
    ``graph.shm_bytes_shipped`` stays untouched (0 graph bytes cross
    the process boundary).  On the fallback path the counter records
    the graph bytes each of the *workers* workers will deserialize.
    """
    shipped = payload
    if payload.graph_handle is not None and payload.frozen_graph is not None:
        shipped = replace(payload, frozen_graph=None)
    data = pickle.dumps(shipped, protocol=pickle.HIGHEST_PROTOCOL)
    if shipped.frozen_graph is not None and workers > 1:
        without_graph = pickle.dumps(
            replace(shipped, frozen_graph=None),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        counter("graph.shm_bytes_shipped").inc(
            max(0, len(data) - len(without_graph)) * workers
        )
    gauge("sweep.payload_bytes").set(len(data))
    return data


# ---------------------------------------------------------------------------
# worker side

_WORKER: dict = {}


def _init_worker(payload_bytes: bytes, cancel,
                 bootstrap: dict | None = None) -> None:
    clear_rule_cache()
    reset_for_worker()
    # join the driver's run ledger (and, under spawn, re-attach the
    # trace sink) so this worker's spans carry run/worker/shard stamps
    # and land in the same stitched trace as the driver's
    ledger.adopt_worker(bootstrap)
    _WORKER["payload"] = pickle.loads(payload_bytes)
    _WORKER["cancel"] = cancel
    _WORKER["caches"] = {}


def _context_transition_cache(payload: SweepPayload,
                              ctx_idx: int) -> TransitionCache:
    ctx = payload.contexts[ctx_idx]
    return TransitionCache(
        payload.composition, dict(ctx.databases), ctx.domain.values,
        payload.semantics,
        include_environment=payload.include_environment,
        budget=payload.budget,
        env_value_domain=payload.env_value_domain,
        env_one_action_per_move=payload.env_one_action_per_move,
    )


def _context_cache(payload: SweepPayload, ctx_idx: int, caches: dict
                   ) -> tuple[TransitionCache | None,
                              SharedExploration | None]:
    """The ``(transition cache, shared engine)`` pair for one context.

    Priority for context 0 of a prepared payload: attach the
    shared-memory graph (zero-copy), else serve the embedded frozen
    graph (the executor never expands anything either way).  Otherwise
    a private cache is built, wrapped in a :class:`SharedExploration`
    under the shared engine; the second task that lands on the same
    context freezes the engine, so batched valuations walk the CSR
    graph instead of re-querying the cache.
    """
    entry = caches.get(ctx_idx)
    if entry is not None:
        cache, engine = entry
        if engine is not None and engine.frozen is None:
            engine.complete(strict=False)
        return entry
    # keep at most one context's exploration in memory per worker:
    # contexts partition the state space, so old entries cannot be
    # reused and only pin memory
    caches.clear()
    if payload.graph_handle is not None and ctx_idx == 0:
        graph, segment = attach_graph(payload.graph_handle)
        engine = SharedExploration.from_graph(graph, payload.composition)
        # the mapping must outlive the graph's memoryview casts
        engine.shm_mapping = segment
        entry = (None, engine)
    elif payload.frozen_graph is not None and ctx_idx == 0:
        entry = (None, SharedExploration.from_graph(
            payload.frozen_graph, payload.composition
        ))
    else:
        cache = _context_transition_cache(payload, ctx_idx)
        engine = (SharedExploration(cache)
                  if payload.engine == "shared" else None)
        entry = (cache, engine)
    caches[ctx_idx] = entry
    return entry


def _worker_id() -> str:
    return f"pid-{os.getpid()}"


def _execute_task(payload: SweepPayload, task: SweepTask,
                  cache: TransitionCache | None,
                  engine: SharedExploration | None,
                  should_stop) -> TaskOutcome:
    cache_before = rule_cache_info()
    seconds_before = phase_seconds()
    counts_before = phase_counts()
    counters_before = counters_snapshot()
    t0 = time.perf_counter()
    try:
        outcome = check_one_valuation(
            payload.composition, payload.sentences[task.sentence],
            dict(task.valuation), payload.contexts[task.ctx].domain,
            cache, fair_scheduling=payload.fair_scheduling,
            should_stop=should_stop, engine=engine,
        )
    except SearchCancelled:
        outcome = None
    wall = time.perf_counter() - t0
    obs_fields = dict(
        worker=_worker_id(),
        phase_seconds=diff_numeric(phase_seconds(), seconds_before),
        phase_counts=diff_numeric(phase_counts(), counts_before),
        rule_cache=rule_cache_delta(cache_before),
        counters=diff_numeric(counters_snapshot(), counters_before),
    )
    instant("task-done", group=task.group, order=task.order,
            cancelled=outcome is None, wall_seconds=wall)
    expanded = (engine.states_expanded if engine is not None
                else cache.states_expanded)
    if outcome is None:
        return TaskOutcome(
            group=task.group, order=task.order, ctx=task.ctx,
            valuation=task.valuation, cancelled=True,
            lasso_prefix=None, lasso_cycle=None, nba_states=0,
            blue_visited=0, red_visited=0, states_expanded=0,
            wall_seconds=wall, **obs_fields,
        )
    return TaskOutcome(
        group=task.group, order=task.order, ctx=task.ctx,
        valuation=task.valuation, cancelled=False,
        lasso_prefix=outcome.lasso_prefix, lasso_cycle=outcome.lasso_cycle,
        nba_states=outcome.nba_states, blue_visited=outcome.blue_visited,
        red_visited=outcome.red_visited,
        states_expanded=expanded,
        wall_seconds=wall, **obs_fields,
    )


def _run_one_task(payload: SweepPayload, task: SweepTask, cancel,
                  caches: dict) -> TaskOutcome:
    """Execute one task against the shared cancel array (worker side)."""

    def should_stop() -> bool:
        return cancel is not None and cancel[task.group] < task.order

    # test hook: die exactly where a real crash would hurt most --
    # mid-sweep, after claiming work (crash-robustness suite)
    kill_order = os.environ.get("REPRO_TEST_KILL_TASK", "")
    if kill_order and int(kill_order) == task.order:
        os._exit(17)

    if should_stop():
        return _cancelled_outcome(task)
    cache, engine = _context_cache(payload, task.ctx, caches)
    outcome = _execute_task(payload, task, cache, engine, should_stop)
    if outcome.lasso_cycle is not None and cancel is not None:
        with cancel.get_lock():
            if task.order < cancel[task.group]:
                cancel[task.group] = task.order
    return outcome


def _cancelled_outcome(task: SweepTask) -> TaskOutcome:
    return TaskOutcome(
        group=task.group, order=task.order, ctx=task.ctx,
        valuation=task.valuation, cancelled=True,
        lasso_prefix=None, lasso_cycle=None, nba_states=0,
        blue_visited=0, red_visited=0, states_expanded=0,
        wall_seconds=0.0, worker=_worker_id(),
    )


# ---------------------------------------------------------------------------
# work-stealing scheduler


def plan_batches(ordered: Sequence[SweepTask],
                 workers: int,
                 cost_hints: dict[tuple[int, int], float] | None = None,
                 ) -> list[tuple[SweepTask, ...]]:
    """Chunk the ordered task grid into steal units.

    Batches never span a (group, ctx) boundary -- a batch is a
    contiguous run of valuations of one property over one database
    context, so executing it reuses one exploration and its letter
    caches.  The chunk size targets ``STEAL_BATCHES_PER_WORKER``
    batches per worker: coarse enough to amortize queue traffic, fine
    enough that stealing can rebalance a skewed grid.

    *cost_hints* (from :func:`repro.analysis.cost.sweep_cost_hints`)
    optionally weight the size per ``(group, ctx)`` cell: cells with
    above-mean static cost get proportionally smaller batches (finer
    stealing where tasks run long), cheaper cells bigger ones.  Hints
    only rescale the deterministic base size -- batch boundaries remain
    a pure function of the ordered grid, so results stay bit-for-bit
    identical with and without hints.
    """
    if not ordered:
        return []
    size = max(1, -(-len(ordered) // (workers * STEAL_BATCHES_PER_WORKER)))
    sizes: dict[tuple[int, int], int] = {}
    if cost_hints:
        weights = {k: w for k, w in cost_hints.items() if w > 0}
        if weights:
            mean = sum(weights.values()) / len(weights)
            for key, weight in weights.items():
                sizes[key] = max(1, min(
                    len(ordered), round(size * mean / weight)))
    batches: list[tuple[SweepTask, ...]] = []
    run: list[SweepTask] = []
    run_key = None
    for task in ordered:
        key = (task.group, task.ctx)
        if run and (key != run_key or len(run) >= sizes.get(key, size)):
            batches.append(tuple(run))
            run = []
        run_key = key
        run.append(task)
    if run:
        batches.append(tuple(run))
    return batches


def _claim_batch(worker_idx: int, n_workers: int, cap: int,
                 slots, heads, tails, locks) -> tuple[int, bool] | None:
    """Pop the next batch id: own deque front, else steal a victim's back.

    Returns ``(batch_id, stolen)`` or None when every deque is empty
    (all batches are claimed; in-flight ones belong to their claimers).
    Owners consume from the front -- lowest global order first, which
    reaches decisive violations sooner -- while thieves take from the
    back, the tasks the owner would reach last.
    """
    with locks[worker_idx]:
        if heads[worker_idx] < tails[worker_idx]:
            batch = slots[worker_idx * cap + heads[worker_idx]]
            heads[worker_idx] += 1
            return int(batch), False
    for offset in range(1, n_workers):
        victim = (worker_idx + offset) % n_workers
        with locks[victim]:
            if heads[victim] < tails[victim]:
                tails[victim] -= 1
                return int(slots[victim * cap + tails[victim]]), True
    return None


def _put(results, message) -> None:
    """Ship one result message (explicitly protocol-5 pickled)."""
    results.put(pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL))


def _worker_main(worker_idx: int, n_workers: int, cap: int,
                 payload_bytes: bytes, batches_bytes: bytes,
                 cancel, slots, heads, tails, locks, results,
                 bootstrap: dict | None = None) -> None:
    """Pool worker: claim batches (own deque, then steals) until dry.

    Ships one ``("outcome", ...)`` message per task and a final
    ``("done", ...)`` message carrying the observability residual --
    registry movement not attributable to any task window (payload
    deserialization, graph attach, steal bookkeeping) -- so driver-side
    metrics stay truthful under any schedule.
    """
    try:
        _init_worker(payload_bytes, cancel, bootstrap)
        instant("worker-start", n_workers=n_workers)
        payload: SweepPayload = _WORKER["payload"]
        caches: dict = _WORKER["caches"]
        batches: list[tuple[SweepTask, ...]] = pickle.loads(batches_bytes)
        steals = counter("sweep.steals")
        stolen_tasks = counter("sweep.tasks_stolen")
        executed = counter("sweep.tasks_executed")
        shipped_counters: dict = {}
        shipped_seconds: dict = {}
        shipped_counts: dict = {}
        while True:
            claim = _claim_batch(worker_idx, n_workers, cap, slots,
                                 heads, tails, locks)
            if claim is None:
                break
            batch_id, stolen = claim
            batch = batches[batch_id]
            if stolen:
                steals.inc()
                stolen_tasks.inc(len(batch))
            for task in batch:
                outcome = _run_one_task(payload, task, cancel, caches)
                executed.inc()
                merge_numeric(shipped_counters, outcome.counters)
                merge_numeric(shipped_seconds, outcome.phase_seconds)
                merge_numeric(shipped_counts, outcome.phase_counts)
                _put(results, ("outcome", outcome))
        residual = {
            "counters": diff_numeric(counters_snapshot(), shipped_counters),
            "phase_seconds": diff_numeric(phase_seconds(), shipped_seconds),
            "phase_counts": diff_numeric(phase_counts(), shipped_counts),
        }
        instant("worker-done")
        _put(results, ("done", worker_idx, residual))
    except BaseException as exc:  # ship the failure, then die loudly
        try:
            try:
                _put(results, ("error", worker_idx, exc))
            except Exception:
                _put(results, ("error", worker_idx,
                               RuntimeError(f"{type(exc).__name__}: {exc}")))
        except Exception:  # pragma: no cover - queue already broken
            pass
        raise


# ---------------------------------------------------------------------------
# driver


def _run_sweep_sequential(payload: SweepPayload,
                          tasks: Sequence[SweepTask],
                          progress=NULL_PROGRESS) -> list[TaskOutcome]:
    """In-process reference sweep: deterministic order, per-group early stop."""
    outcomes: list[TaskOutcome] = []
    caches: dict = {}
    decided: dict[int, int] = {}
    for task in sorted(tasks, key=lambda t: (t.group, t.order)):
        if decided.get(task.group, _UNDECIDED) < task.order:
            outcomes.append(_cancelled_outcome(task))
            progress.advance(1, cancelled=1)
            continue
        cache, engine = _context_cache(payload, task.ctx, caches)
        outcome = _execute_task(payload, task, cache, engine, None)
        outcomes.append(outcome)
        progress.advance(
            1, violated=int(outcome.lasso_cycle is not None),
            product_nodes=outcome.blue_visited + outcome.red_visited,
        )
        if outcome.lasso_cycle is not None:
            decided[task.group] = min(
                decided.get(task.group, _UNDECIDED), task.order
            )
    return outcomes


def _mp_context():
    import multiprocessing
    methods = multiprocessing.get_all_start_methods()
    preferred = os.environ.get("REPRO_START_METHOD", "").strip()
    if preferred and preferred in methods:
        return multiprocessing.get_context(preferred)
    method = "fork" if "fork" in methods else methods[0]
    return multiprocessing.get_context(method)


def run_sweep(payload: SweepPayload, tasks: Sequence[SweepTask],
              workers: int) -> tuple[list[TaskOutcome], bool]:
    """Execute the task grid; returns ``(outcomes, ran_in_parallel)``.

    Falls back to the sequential in-process sweep when parallelism
    cannot help (``workers<=1``, fewer than two tasks) or cannot be used
    safely (payload fails to pickle, worker pool breaks).  A payload
    prepared for shared memory keeps its driver-side ``frozen_graph``,
    so even the post-crash sequential rerun never re-expands the state
    space.
    """
    with phase(PHASE_SWEEP):
        progress = sweep_progress(len(tasks))
        progress.set_info(
            workers=workers,
            groups=len({t.group for t in tasks}),
            graph_states=(payload.frozen_graph.num_states
                          if payload.frozen_graph is not None else None),
        )
        instant("sweep-start", tasks=len(tasks), workers=workers)
        try:
            if workers <= 1 or len(tasks) <= 1:
                return _run_sweep_sequential(payload, tasks,
                                             progress), False
            try:
                payload_bytes = payload_to_bytes(payload, workers)
            except Exception:
                return _run_sweep_sequential(payload, tasks,
                                             progress), False
            try:
                return _run_sweep_pool(payload, payload_bytes, tasks,
                                       workers, progress), True
            except BrokenProcessPool:
                counter("sweep.pool_broken").inc()
                # start the progress story over: the sequential rerun
                # re-executes the full grid from scratch
                progress.reset()
                return _run_sweep_sequential(payload, tasks,
                                             progress), False
        finally:
            progress.finish()
            instant("sweep-done", tasks=len(tasks))


def _check_liveness(procs, pending: int) -> None:
    """Raise :class:`BrokenProcessPool` if the pool can no longer finish."""
    if any(p.exitcode not in (None, 0) for p in procs):
        dead = [p.exitcode for p in procs if p.exitcode not in (None, 0)]
        raise BrokenProcessPool(
            f"sweep worker died with exit code(s) {dead}"
        )
    if pending > 0 and all(p.exitcode is not None for p in procs):
        raise BrokenProcessPool(
            f"all sweep workers exited with {pending} tasks unaccounted"
        )


def _run_sweep_pool(payload: SweepPayload, payload_bytes: bytes,
                    tasks: Sequence[SweepTask],
                    workers: int,
                    progress=NULL_PROGRESS) -> list[TaskOutcome]:
    """The work-stealing pool: deal batches, collect outcomes, stay live.

    The driver is purely a collector -- all scheduling decisions happen
    in the workers via the shared deque arrays, and all cancellation
    happens via the shared cancel array -- so a hot grid never
    serializes on the driver loop.
    """
    ordered = sorted(tasks, key=lambda t: (t.group, t.order))
    try:
        from ..analysis.cost import sweep_cost_hints
        cost_hints = sweep_cost_hints(payload)
    except Exception:
        cost_hints = None  # hints are advisory; never fail the sweep
    batches = plan_batches(ordered, workers, cost_hints)
    n_workers = min(workers, len(batches))
    n_groups = max(t.group for t in ordered) + 1
    ctx = _mp_context()
    cancel = ctx.Array("q", [_UNDECIDED] * n_groups)
    cap = -(-len(batches) // n_workers)
    slots = ctx.Array("q", [-1] * (n_workers * cap), lock=False)
    heads = ctx.Array("q", [0] * n_workers, lock=False)
    tails = ctx.Array("q", [0] * n_workers, lock=False)
    locks = [ctx.Lock() for _ in range(n_workers)]
    # round-robin deal: worker w's deque holds batches w, w+N, w+2N...
    # front-to-back, so owners consume in ascending global order
    for batch_idx in range(len(batches)):
        w = batch_idx % n_workers
        slots[w * cap + tails[w]] = batch_idx
        tails[w] += 1
    batches_bytes = pickle.dumps(batches, protocol=pickle.HIGHEST_PROTOCOL)
    gauge("sweep.batches").set(len(batches))
    results = ctx.Queue()
    procs = [
        ctx.Process(
            target=_worker_main,
            args=(w, n_workers, cap, payload_bytes, batches_bytes,
                  cancel, slots, heads, tails, locks, results,
                  ledger.worker_bootstrap(w)),
            daemon=True,
        )
        for w in range(n_workers)
    ]
    outcomes: list[TaskOutcome] = []
    pending = len(ordered)
    try:
        for proc in procs:
            proc.start()
        while pending > 0:
            try:
                raw = results.get(timeout=_POLL_SECONDS)
            except queue_mod.Empty:
                _check_liveness(procs, pending)
                progress.tick()
                continue
            message = pickle.loads(raw)
            kind = message[0]
            if kind == "outcome":
                outcome = message[1]
                outcomes.append(outcome)
                pending -= 1
                progress.advance(
                    1,
                    violated=int(outcome.lasso_cycle is not None),
                    cancelled=int(outcome.cancelled),
                    product_nodes=(outcome.blue_visited
                                   + outcome.red_visited),
                )
            elif kind == "done":
                residual = message[2]
                merge_counters(residual["counters"])
                merge_numeric(REGISTRY.phase_seconds,
                              residual["phase_seconds"])
                merge_numeric(REGISTRY.phase_counts,
                              residual["phase_counts"])
            elif kind == "error":
                raise message[2]
        for proc in procs:
            proc.join(timeout=10.0)
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=5.0)
        results.close()
        results.join_thread()
    return outcomes


# ---------------------------------------------------------------------------
# aggregation


def _aggregate_group(group: int, outcomes: Sequence[TaskOutcome],
                     stats: VerifierStats,
                     merge_worker_counters: bool = False
                     ) -> TaskOutcome | None:
    """Fold one group's outcomes into *stats*; return the decisive task.

    Only tasks at or before the decisive (lowest violated) order count
    toward the headline stats -- exactly the tasks the sequential sweep
    would have run -- so ``product_nodes_visited`` matches ``workers=1``.
    Cancelled/extra tasks still appear in ``per_task`` for profiling.

    The observability deltas (phase seconds, rule-cache counters) are
    merged from *every* outcome, counted or not: they measure compute
    that actually happened, including partial work of cancelled tasks,
    so hit rates and phase breakdowns reflect the true cost of the run.
    """
    mine = sorted(
        (o for o in outcomes if o.group == group), key=lambda o: o.order
    )
    violated = [o for o in mine if not o.cancelled and o.lasso_cycle]
    decisive = min(violated, key=lambda o: o.order, default=None)
    cutoff = decisive.order if decisive is not None else _UNDECIDED
    for outcome in mine:
        counted = not outcome.cancelled and outcome.order <= cutoff
        stats.record_task(TaskStats(
            group=outcome.group, order=outcome.order,
            wall_seconds=outcome.wall_seconds,
            nba_states=outcome.nba_states,
            product_nodes=outcome.blue_visited + outcome.red_visited,
            system_states=outcome.states_expanded,
            cancelled=not counted,
            worker=outcome.worker,
        ))
        stats.merge_phases(outcome.phase_seconds, outcome.phase_counts)
        stats.merge_rule_cache(outcome.rule_cache)
        if merge_worker_counters:
            # fold pool-worker registry movement (graph.reuse_hits,
            # fo.index_builds, ...) into the driver's registry so
            # --metrics-json reports fleet-wide totals; in-process
            # sweeps already incremented this registry directly
            merge_counters(outcome.counters)
        if outcome.worker and (outcome.wall_seconds
                               or outcome.phase_seconds
                               or outcome.rule_cache):
            stats.merge_worker(outcome.worker, outcome.wall_seconds,
                               outcome.phase_seconds, outcome.rule_cache)
        if counted:
            stats.valuations_checked += 1
            stats.nba_states_total += outcome.nba_states
            stats.merge_search(outcome.blue_visited, outcome.red_visited)
            stats.system_states = max(stats.system_states,
                                      outcome.states_expanded)
    return decisive


def _result_for_group(group: int, outcomes: Sequence[TaskOutcome],
                      payload: SweepPayload, sentence: LTLFOSentence,
                      workers: int, used_parallel: bool,
                      wall_seconds: float) -> VerificationResult:
    stats = VerifierStats(workers=workers if used_parallel else 1)
    decisive = _aggregate_group(group, outcomes, stats,
                                merge_worker_counters=used_parallel)
    stats.wall_seconds = wall_seconds
    if payload.frozen_graph is not None:
        # workers served the driver's pre-expanded graph and report 0
        # expansions; the graph size is the true system-state count
        stats.system_states = max(stats.system_states,
                                  payload.frozen_graph.num_states)
    counterexample = None
    domain = payload.contexts[-1].domain
    if decisive is not None:
        stats.decisive_order = decisive.order
        domain = payload.contexts[decisive.ctx].domain
        counterexample = Counterexample(
            valuation={
                var.name: value for var, value in decisive.valuation
            },
            lasso=Lasso(decisive.lasso_prefix, decisive.lasso_cycle),
            property_text=str(sentence),
        )
    return VerificationResult(
        satisfied=decisive is None,
        property_text=str(sentence),
        counterexample=counterexample,
        stats=stats,
        domain_description=domain.describe(),
        semantics_description=payload.semantics.describe(),
    )


# ---------------------------------------------------------------------------
# entry points used by repro.verifier.ltlfo_verifier


def _prepare_payload(payload: SweepPayload, workers: int
                     ) -> tuple[SweepPayload, GraphSegment | None]:
    """Pre-expand single-context shared payloads in the driver.

    The reachable snapshot graph is valuation-independent, so the
    driver expands it exactly once.  With a pool ahead and shared
    memory available the CSR graph goes into a shared segment (workers
    attach; zero copies shipped); otherwise it rides along pickled in
    the payload.  The returned payload always keeps ``frozen_graph``
    for driver-local use; the segment lease (or None) is the caller's
    to unlink in a ``finally``.  Multi-context grids (database
    enumeration) skip all of this: contexts partition across workers,
    so each worker's lazily shared exploration is built at most once
    per context anyway.
    """
    if payload.engine != "shared" or len(payload.contexts) != 1:
        return payload, None
    engine = SharedExploration(_context_transition_cache(payload, 0))
    graph = engine.complete(strict=False)
    if graph is None:
        return payload, None
    payload = replace(payload, frozen_graph=graph)
    if workers > 1 and shm_available():
        try:
            segment = GraphSegment.create(graph)
        except Exception:
            counter("graph.shm_fallbacks").inc()
            return payload, None
        return replace(payload, graph_handle=segment.handle), segment
    return payload, None


class _DriverObs:
    """Capture driver-side phase/rule-cache movement around a sweep.

    With frozen-graph publication the expansion and rule firing happen
    in the *driver* (during :func:`_prepare_payload`), not in workers;
    without this capture those seconds would vanish from
    ``VerifierStats`` under ``--workers > 1``.
    """

    def __enter__(self) -> "_DriverObs":
        self._rule_before = rule_cache_info()
        self._seconds_before = phase_seconds()
        self._counts_before = phase_counts()
        return self

    def __exit__(self, *exc) -> None:
        self.phase_seconds = diff_numeric(phase_seconds(),
                                          self._seconds_before)
        self.phase_counts = diff_numeric(phase_counts(),
                                         self._counts_before)
        self.rule_cache = rule_cache_delta(self._rule_before)

    def merge_into(self, stats: VerifierStats) -> None:
        stats.merge_phases(self.phase_seconds, self.phase_counts)
        stats.merge_rule_cache(self.rule_cache)


def parallel_verify(composition: Composition,
                    sentence: LTLFOSentence,
                    databases: Mapping[str, Instance],
                    semantics: ChannelSemantics,
                    domain: VerificationDomain,
                    valuations: Sequence[Mapping[Var, Value]],
                    workers: int,
                    budget: SearchBudget | None = None,
                    include_environment: bool = True,
                    env_value_domain: Sequence[Value] | None = None,
                    env_one_action_per_move: bool = True,
                    fair_scheduling: bool = False,
                    engine: str = "shared",
                    shard: tuple[int, int] | None = None
                    ) -> VerificationResult:
    """One property, one database set, valuations fanned out."""
    payload = SweepPayload(
        composition=composition,
        contexts=(SweepContext(tuple(sorted(databases.items())), domain),),
        sentences=(sentence,),
        semantics=semantics,
        include_environment=include_environment,
        env_value_domain=(tuple(env_value_domain)
                          if env_value_domain is not None else None),
        env_one_action_per_move=env_one_action_per_move,
        fair_scheduling=fair_scheduling,
        budget=budget,
        engine=resolve_engine(engine),
    )
    tasks = shard_filter(
        [
            SweepTask(group=0, order=i, ctx=0, sentence=0,
                      valuation=freeze_valuation(v))
            for i, v in enumerate(valuations)
        ],
        shard,
    )
    t0 = time.perf_counter()
    with _DriverObs() as driver_obs:
        payload, segment = _prepare_payload(payload, workers)
    try:
        outcomes, used_parallel = run_sweep(payload, tasks, workers)
    finally:
        if segment is not None:
            segment.unlink()
    result = _result_for_group(
        0, outcomes, payload, sentence, workers, used_parallel,
        time.perf_counter() - t0,
    )
    driver_obs.merge_into(result.stats)
    return result


def parallel_verify_all(composition: Composition,
                        sentences: Sequence[LTLFOSentence],
                        databases: Mapping[str, Instance],
                        semantics: ChannelSemantics,
                        domain: VerificationDomain,
                        valuations_per_sentence: Sequence[
                            Sequence[Mapping[Var, Value]]],
                        workers: int,
                        budget: SearchBudget | None = None,
                        engine: str = "shared",
                        shard: tuple[int, int] | None = None,
                        ) -> list[VerificationResult]:
    """Several properties over one database set, one group per property."""
    payload = SweepPayload(
        composition=composition,
        contexts=(SweepContext(tuple(sorted(databases.items())), domain),),
        sentences=tuple(sentences),
        semantics=semantics,
        budget=budget,
        engine=resolve_engine(engine),
    )
    tasks = shard_filter(
        [
            SweepTask(group=s_idx, order=i, ctx=0, sentence=s_idx,
                      valuation=freeze_valuation(v))
            for s_idx, valuations in enumerate(valuations_per_sentence)
            for i, v in enumerate(valuations)
        ],
        shard,
    )
    t0 = time.perf_counter()
    with _DriverObs() as driver_obs:
        payload, segment = _prepare_payload(payload, workers)
    try:
        outcomes, used_parallel = run_sweep(payload, tasks, workers)
    finally:
        if segment is not None:
            segment.unlink()
    wall = time.perf_counter() - t0
    results = [
        _result_for_group(s_idx, outcomes, payload, sentence, workers,
                          used_parallel, wall)
        for s_idx, sentence in enumerate(sentences)
    ]
    if results:
        # the one-off pre-expansion is attributed to the first group
        driver_obs.merge_into(results[0].stats)
    return results


def parallel_verify_over_databases(
        composition: Composition,
        sentence: LTLFOSentence,
        database_combos: Sequence[Mapping[str, Instance]],
        semantics: ChannelSemantics,
        domains: Sequence[VerificationDomain],
        valuations_per_combo: Sequence[Sequence[Mapping[Var, Value]]],
        workers: int,
        budget: SearchBudget | None = None,
        engine: str = "shared",
        shard: tuple[int, int] | None = None) -> VerificationResult:
    """One property swept over every enumerated database combination.

    The full (database, valuation) grid is one deterministic order: the
    first violated cell (in combo-major order) decides, matching the
    sequential enumeration.  Workers share one exploration per context
    (and freeze it after the first valuation they batch on it); the
    driver does not pre-expand, since contexts partition the grid.
    """
    contexts = tuple(
        SweepContext(tuple(sorted(dbs.items())), dom)
        for dbs, dom in zip(database_combos, domains)
    )
    payload = SweepPayload(
        composition=composition,
        contexts=contexts,
        sentences=(sentence,),
        semantics=semantics,
        budget=budget,
        engine=resolve_engine(engine),
    )
    counter_iter = itertools.count()
    tasks = shard_filter(
        [
            SweepTask(group=0, order=next(counter_iter), ctx=ctx_idx,
                      sentence=0, valuation=freeze_valuation(v))
            for ctx_idx, valuations in enumerate(valuations_per_combo)
            for v in valuations
        ],
        shard,
    )
    t0 = time.perf_counter()
    outcomes, used_parallel = run_sweep(payload, tasks, workers)
    return _result_for_group(
        0, outcomes, payload, sentence, workers, used_parallel,
        time.perf_counter() - t0,
    )
