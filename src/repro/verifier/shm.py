"""Zero-copy shared-memory plane for the frozen exploration graph.

The parallel sweep's dominant seeding cost used to be *shipping*: the
driver pickled the frozen :class:`~repro.verifier.graph.ExploredGraph`
into every worker's initializer arguments, so an ``N``-worker pool paid
``N`` serializations plus ``N`` private deserialized copies of the same
immutable CSR arrays.  This module removes both:

* :meth:`GraphSegment.create` writes the graph **once** into a
  ``multiprocessing.shared_memory`` segment -- a fixed binary header,
  the raw ``offsets``/``targets`` CSR buffers, and a pickled blob for
  the snapshot tuple (Python objects cannot be shared structurally);
* :func:`attach_graph` maps the segment into a worker and rebuilds an
  :class:`ExploredGraph` whose CSR arrays are **memoryview casts over
  the mapping** -- no bytes are copied for the adjacency structure, and
  the OS shares the physical pages across every attached process.  Only
  the snapshot blob is unpickled per worker (it has to become process-
  local Python objects), and it is read straight out of the mapping
  rather than a pipe.

Lifecycle: the *driver* owns the segment.  :class:`GraphSegment` is a
refcount-one lease -- ``unlink()`` is idempotent, every entry point
calls it from a ``finally`` (normal exit, cancellation, and the
``BrokenProcessPool`` fallback all pass through it), and a module
``atexit`` guard unlinks anything still registered if the process dies
between those points.  Workers attach without registering with the
``resource_tracker`` (the driver's registration is the only one), so
no tracker warnings and no double-unlink races occur; worker mappings
die with the worker process.

When shared memory is unavailable (no ``/dev/shm``, ``REPRO_SHM=0``,
or segment creation fails) callers fall back to the PR 5 behaviour of
embedding the pickled graph in the worker payload; the
``graph.shm_bytes_shipped`` counter then records the per-worker bytes
that shared memory would have saved (it stays 0 on the attach path --
the E15 benchmark asserts exactly that).
"""

from __future__ import annotations

import atexit
import os
import pickle
import struct
from array import array
from dataclasses import dataclass

from ..obs import counter, gauge
from .graph import ExploredGraph

#: Every segment name starts with this prefix, so tests can scan
#: ``/dev/shm`` for leaks without false positives from other software.
SEGMENT_PREFIX = "repro_graph_"

#: Header layout: magic, version, n_states, n_offsets, n_targets, blob_len.
_HEADER = struct.Struct("<6Q")
_MAGIC = 0x5250524F53484D01  # "RPROSHM" + format version 1


def shm_available() -> bool:
    """Whether the zero-copy plane may be used in this environment.

    ``REPRO_SHM=0`` (or ``off``/``false``) force-disables it -- the
    documented escape hatch for containers with a tiny or read-only
    ``/dev/shm`` -- and platforms without POSIX shared memory simply
    fail the import probe.
    """
    raw = os.environ.get("REPRO_SHM", "").strip().lower()
    if raw in ("0", "off", "false", "no"):
        return False
    try:
        import multiprocessing.shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - platform-dependent
        return False
    return True


@dataclass(frozen=True)
class ShmGraphHandle:
    """A picklable descriptor of one graph segment (name + layout).

    This is what travels in the worker payload instead of the graph:
    a few dozen bytes regardless of graph size.
    """

    name: str
    n_states: int
    n_offsets: int
    n_targets: int
    blob_len: int


def _new_segment(size: int):
    from multiprocessing import shared_memory

    name = f"{SEGMENT_PREFIX}{os.getpid()}_{os.urandom(4).hex()}"
    return shared_memory.SharedMemory(name=name, create=True, size=size)


#: Driver-side leases not yet unlinked; the atexit guard sweeps these.
_ACTIVE: set["GraphSegment"] = set()


class GraphSegment:
    """The driver's lease on one shared-memory graph segment."""

    def __init__(self, shm, handle: ShmGraphHandle) -> None:
        self._shm = shm
        self.handle = handle
        _ACTIVE.add(self)

    @classmethod
    def create(cls, graph: ExploredGraph) -> "GraphSegment":
        """Serialize *graph* once into a fresh segment.

        Raises whatever the platform raises when shared memory cannot
        be provisioned (``OSError`` typically); callers treat any
        failure as "fall back to the pickle path".
        """
        offsets = memoryview(graph.offsets).cast("B")
        targets = memoryview(graph.targets).cast("B")
        blob = pickle.dumps(
            (graph.states, tuple(graph.initial_ids), graph.budget),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        size = (_HEADER.size + len(offsets) + len(targets) + len(blob))
        shm = _new_segment(size)
        try:
            buf = shm.buf
            _HEADER.pack_into(
                buf, 0, _MAGIC, graph.num_states, len(graph.offsets),
                len(graph.targets), len(blob), 0,
            )
            pos = _HEADER.size
            buf[pos:pos + len(offsets)] = offsets
            pos += len(offsets)
            buf[pos:pos + len(targets)] = targets
            pos += len(targets)
            buf[pos:pos + len(blob)] = blob
            del buf
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        counter("graph.shm_segments").inc()
        gauge("graph.shm_bytes").set(size)
        gauge("shm.segments_active").set(len(_ACTIVE) + 1)
        handle = ShmGraphHandle(
            name=shm.name, n_states=graph.num_states,
            n_offsets=len(graph.offsets), n_targets=len(graph.targets),
            blob_len=len(blob),
        )
        return cls(shm, handle)

    def unlink(self) -> None:
        """Release and remove the segment (idempotent).

        Safe to call while workers still hold mappings: POSIX keeps the
        pages alive until the last mapping goes away; unlinking only
        removes the name so nothing can leak past the sweep.
        """
        shm = self._shm
        if shm is None:
            return
        self._shm = None
        _ACTIVE.discard(self)
        try:
            shm.close()
            shm.unlink()
            counter("graph.shm_unlinks").inc()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        gauge("shm.segments_active").set(len(_ACTIVE))

    def __enter__(self) -> "GraphSegment":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()


@atexit.register
def _unlink_leftovers() -> None:  # pragma: no cover - crash path
    for segment in list(_ACTIVE):
        segment.unlink()


def _attach_segment(name: str):
    """Map an existing segment without resource-tracker registration.

    Attaching normally registers the name with this process tree's
    ``resource_tracker``, which would warn about (and try to re-unlink)
    the segment at interpreter exit even though the driver already owns
    cleanup.  Python 3.13 grew ``track=False`` for exactly this; on
    older versions the registration is suppressed instead of reverted
    -- register-then-unregister races when sibling workers attach the
    same name concurrently (the tracker's cache is a set, so the second
    register is absorbed and the second unregister KeyErrors).
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shm(name_, rtype):
            if rtype != "shared_memory":
                original(name_, rtype)

        resource_tracker.register = _skip_shm
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def attach_graph(handle: ShmGraphHandle) -> tuple[ExploredGraph, object]:
    """Rebuild an :class:`ExploredGraph` over an attached segment.

    The returned graph's ``offsets``/``targets`` are memoryview casts
    into the shared mapping -- zero bytes copied, pages shared with the
    driver and every sibling worker.  The second return value is the
    ``SharedMemory`` mapping itself: the caller must keep it referenced
    for as long as the graph is in use (the views borrow its buffer).
    """
    shm = _attach_segment(handle.name)
    buf = shm.buf
    magic, n_states, n_offsets, n_targets, blob_len, _ = (
        _HEADER.unpack_from(buf, 0)
    )
    if magic != _MAGIC or (n_states, n_offsets, n_targets, blob_len) != (
            handle.n_states, handle.n_offsets, handle.n_targets,
            handle.blob_len):
        shm.close()
        raise ValueError(
            f"shared-memory segment {handle.name!r} does not match its "
            "handle (stale or corrupted segment)"
        )
    pos = _HEADER.size
    itemsize = array("q").itemsize
    offsets = buf[pos:pos + n_offsets * itemsize].cast("q")
    pos += n_offsets * itemsize
    targets = buf[pos:pos + n_targets * itemsize].cast("q")
    pos += n_targets * itemsize
    states, initial_ids, budget = pickle.loads(buf[pos:pos + blob_len])
    counter("graph.shm_attaches").inc()
    gauge("shm.segments_active").add(1)
    graph = ExploredGraph(states, initial_ids, offsets, targets, budget)
    return graph, shm


def detach_graph(graph: ExploredGraph, shm: object) -> None:
    """Release an attached graph's views and close its mapping.

    The graph is unusable afterwards (its CSR views point at a closed
    buffer).  Workers normally skip this -- their mapping dies with the
    process -- but same-process attachers (tests, diagnostics) must
    release the exported views before the mapping can close.
    """
    for view in (graph.offsets, graph.targets):
        if isinstance(view, memoryview):
            view.release()
    shm.close()
    gauge("shm.segments_active").add(-1)


def leaked_segments() -> list[str]:
    """Names of repro graph segments currently present in ``/dev/shm``.

    Test helper: after any sweep (including crashed ones) this must be
    empty.  Returns ``[]`` on platforms without a ``/dev/shm``.
    """
    try:
        return sorted(
            name for name in os.listdir("/dev/shm")
            if name.startswith(SEGMENT_PREFIX)
        )
    except OSError:  # pragma: no cover - non-Linux
        return []


def clean_segments(names: list[str] | None = None) -> list[str]:
    """Unlink stale repro graph segments (``repro doctor --clean``).

    *names* defaults to everything :func:`leaked_segments` reports --
    segments left behind by crashed drivers, which no live process owns
    (the atexit guard covers normal interpreter death but not SIGKILL).
    Returns the names actually removed; segments that vanish or resist
    between the scan and the unlink are skipped, not fatal.
    """
    removed: list[str] = []
    for name in (leaked_segments() if names is None else names):
        try:
            shm = _attach_segment(name)
            shm.close()
            shm.unlink()
        except FileNotFoundError:
            continue
        except OSError:  # pragma: no cover - permissions, odd platforms
            try:
                os.unlink(os.path.join("/dev/shm", name))
            except OSError:
                continue
        removed.append(name)
    if removed:
        counter("shm.segments_cleaned").inc(len(removed))
        gauge("shm.segments_active").set(len(leaked_segments()))
    return removed
