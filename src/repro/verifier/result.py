"""Verification results, counterexamples, and statistics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

from ..fo.terms import Value
from ..runtime.run import Lasso
from ..spec.composition import Composition


@dataclass(frozen=True)
class TaskStats:
    """Timing and node counters of one (valuation, database) sweep task."""

    group: int
    order: int
    wall_seconds: float
    nba_states: int
    product_nodes: int
    system_states: int
    cancelled: bool = False
    worker: str = ""


@dataclass
class VerifierStats:
    """Aggregate counters across a whole verification call.

    ``workers``/``tasks_*``/``task_seconds``/``per_task`` are filled by
    the parallel sweep engine; a sequential run leaves them at their
    defaults (``workers=1``, no per-task records).  ``task_seconds`` is
    the *sum* of per-task wall times (total compute), while
    ``wall_seconds`` is elapsed time -- their ratio is the effective
    parallelism.  Cancelled tasks' partial compute is kept separately
    in ``cancelled_task_seconds`` (it is real work spent, but must not
    inflate the deterministic headline counters).

    ``phase_seconds``/``phase_counts`` hold the per-phase self-time
    breakdown (see :mod:`repro.obs.phases`) and ``rule_cache`` the
    rule-firing memo deltas (hits/misses/evictions), aggregated across
    worker processes for parallel runs; ``per_worker`` breaks both down
    by worker id for the ``repro profile`` per-worker rows.
    """

    valuations_checked: int = 0
    system_states: int = 0
    product_nodes_visited: int = 0
    nba_states_total: int = 0
    wall_seconds: float = 0.0
    workers: int = 1
    #: Global sweep order of the violated task that decided the verdict
    #: (None when satisfied).  Orders are global even under ``--shard``,
    #: so ``repro merge-shards`` picks the overall decisive task as the
    #: minimum across fragments -- the lowest-order-wins rule.
    decisive_order: int | None = None
    tasks_run: int = 0
    tasks_cancelled: int = 0
    task_seconds: float = 0.0
    cancelled_task_seconds: float = 0.0
    per_task: list[TaskStats] = field(default_factory=list)
    phase_seconds: dict[str, float] = field(default_factory=dict)
    phase_counts: dict[str, int] = field(default_factory=dict)
    rule_cache: dict[str, int] = field(default_factory=dict)
    per_worker: dict[str, dict] = field(default_factory=dict)

    def merge_search(self, blue: int, red: int) -> None:
        self.product_nodes_visited += blue + red

    def record_task(self, task: TaskStats) -> None:
        self.per_task.append(task)
        if task.cancelled:
            self.tasks_cancelled += 1
            self.cancelled_task_seconds += task.wall_seconds
            return
        self.tasks_run += 1
        self.task_seconds += task.wall_seconds

    def merge_phases(self, seconds: Mapping[str, float],
                     counts: Mapping[str, int]) -> None:
        for name, value in seconds.items():
            self.phase_seconds[name] = (
                self.phase_seconds.get(name, 0.0) + value
            )
        for name, value in counts.items():
            self.phase_counts[name] = self.phase_counts.get(name, 0) + value

    def merge_rule_cache(self, delta: Mapping[str, int]) -> None:
        for key, value in delta.items():
            self.rule_cache[key] = self.rule_cache.get(key, 0) + value

    def merge_worker(self, worker: str, wall_seconds: float,
                     phase_seconds: Mapping[str, float],
                     rule_cache: Mapping[str, int]) -> None:
        slot = self.per_worker.get(worker)
        if slot is None:
            slot = self.per_worker[worker] = {
                "tasks": 0, "task_seconds": 0.0,
                "phase_seconds": {}, "rule_cache": {},
            }
        slot["tasks"] += 1
        slot["task_seconds"] += wall_seconds
        for name, value in phase_seconds.items():
            slot["phase_seconds"][name] = (
                slot["phase_seconds"].get(name, 0.0) + value
            )
        for key, value in rule_cache.items():
            slot["rule_cache"][key] = slot["rule_cache"].get(key, 0) + value

    @property
    def rule_cache_hit_rate(self) -> float | None:
        """Aggregate hit rate of the rule-firing memo, if recorded."""
        hits = self.rule_cache.get("hits", 0)
        misses = self.rule_cache.get("misses", 0)
        if hits + misses == 0:
            return None
        return hits / (hits + misses)

    def to_dict(self) -> dict:
        """JSON-able form for ``--metrics-json`` / benchmark snapshots."""
        return {
            "valuations_checked": self.valuations_checked,
            "system_states": self.system_states,
            "product_nodes_visited": self.product_nodes_visited,
            "nba_states_total": self.nba_states_total,
            "wall_seconds": self.wall_seconds,
            "workers": self.workers,
            "decisive_order": self.decisive_order,
            "tasks_run": self.tasks_run,
            "tasks_cancelled": self.tasks_cancelled,
            "task_seconds": self.task_seconds,
            "cancelled_task_seconds": self.cancelled_task_seconds,
            "phase_seconds": dict(self.phase_seconds),
            "phase_counts": dict(self.phase_counts),
            "rule_cache": dict(self.rule_cache),
            "per_worker": {
                worker: {
                    "tasks": slot["tasks"],
                    "task_seconds": slot["task_seconds"],
                    "phase_seconds": dict(slot["phase_seconds"]),
                    "rule_cache": dict(slot["rule_cache"]),
                }
                for worker, slot in sorted(self.per_worker.items())
            },
            "per_task": [
                {
                    "group": t.group, "order": t.order,
                    "wall_seconds": t.wall_seconds,
                    "nba_states": t.nba_states,
                    "product_nodes": t.product_nodes,
                    "system_states": t.system_states,
                    "cancelled": t.cancelled,
                    "worker": t.worker,
                }
                for t in self.per_task
            ],
        }


@dataclass(frozen=True)
class Counterexample:
    """A violating run: the valuation of the closure variables plus the
    lasso of snapshots witnessing the negated property."""

    valuation: Mapping[str, Value]
    lasso: Lasso
    property_text: str

    def describe(self, composition: Composition,
                 relations=None, max_rows: int = 6) -> str:
        header = [f"counterexample to: {self.property_text}"]
        if self.valuation:
            header.append(f"closure valuation: {dict(self.valuation)}")
        header.append(
            f"lasso: {len(self.lasso.prefix)} prefix + "
            f"{len(self.lasso.cycle)} cycle snapshots"
        )
        body = self.lasso.describe(composition, relations=relations,
                                   max_rows=max_rows)
        return "\n".join(header) + "\n" + body


@dataclass(frozen=True)
class VerificationResult:
    """The outcome of one verification call.

    Truthy iff the property holds.  ``counterexample`` is set exactly when
    the property fails.
    """

    satisfied: bool
    property_text: str
    counterexample: Counterexample | None
    stats: VerifierStats
    domain_description: str
    semantics_description: str

    def __bool__(self) -> bool:
        return self.satisfied

    @property
    def verdict(self) -> str:
        return "SATISFIED" if self.satisfied else "VIOLATED"

    def summary(self) -> str:
        lines = (
            f"{self.verdict}: {self.property_text}\n"
            f"  domain: {self.domain_description}; "
            f"semantics: {self.semantics_description}\n"
            f"  valuations: {self.stats.valuations_checked}, "
            f"system states: {self.stats.system_states}, "
            f"product nodes: {self.stats.product_nodes_visited}, "
            f"time: {self.stats.wall_seconds:.3f}s"
        )
        if self.stats.workers > 1:
            lines += (
                f"\n  workers: {self.stats.workers}, "
                f"tasks: {self.stats.tasks_run} run + "
                f"{self.stats.tasks_cancelled} cancelled, "
                f"compute: {self.stats.task_seconds:.3f}s"
            )
            if self.stats.cancelled_task_seconds:
                lines += (
                    f" (+{self.stats.cancelled_task_seconds:.3f}s "
                    "cancelled)"
                )
        hit_rate = self.stats.rule_cache_hit_rate
        if hit_rate is not None:
            cache = self.stats.rule_cache
            lines += (
                f"\n  rule cache: {cache.get('hits', 0)} hits / "
                f"{cache.get('misses', 0)} misses "
                f"({100 * hit_rate:.1f}% hit rate)"
            )
        return lines


class Stopwatch:
    """Tiny context manager accumulating wall time into VerifierStats."""

    def __init__(self, stats: VerifierStats) -> None:
        self.stats = stats

    def __enter__(self) -> "Stopwatch":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.stats.wall_seconds += time.perf_counter() - self._t0
