"""Verification results, counterexamples, and statistics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

from ..fo.terms import Value
from ..runtime.run import Lasso
from ..spec.composition import Composition


@dataclass(frozen=True)
class TaskStats:
    """Timing and node counters of one (valuation, database) sweep task."""

    group: int
    order: int
    wall_seconds: float
    nba_states: int
    product_nodes: int
    system_states: int
    cancelled: bool = False


@dataclass
class VerifierStats:
    """Aggregate counters across a whole verification call.

    ``workers``/``tasks_*``/``task_seconds``/``per_task`` are filled by
    the parallel sweep engine; a sequential run leaves them at their
    defaults (``workers=1``, no per-task records).  ``task_seconds`` is
    the *sum* of per-task wall times (total compute), while
    ``wall_seconds`` is elapsed time -- their ratio is the effective
    parallelism.
    """

    valuations_checked: int = 0
    system_states: int = 0
    product_nodes_visited: int = 0
    nba_states_total: int = 0
    wall_seconds: float = 0.0
    workers: int = 1
    tasks_run: int = 0
    tasks_cancelled: int = 0
    task_seconds: float = 0.0
    per_task: list = field(default_factory=list)

    def merge_search(self, blue: int, red: int) -> None:
        self.product_nodes_visited += blue + red

    def record_task(self, task: TaskStats) -> None:
        self.per_task.append(task)
        if task.cancelled:
            self.tasks_cancelled += 1
            return
        self.tasks_run += 1
        self.task_seconds += task.wall_seconds


@dataclass(frozen=True)
class Counterexample:
    """A violating run: the valuation of the closure variables plus the
    lasso of snapshots witnessing the negated property."""

    valuation: Mapping[str, Value]
    lasso: Lasso
    property_text: str

    def describe(self, composition: Composition,
                 relations=None, max_rows: int = 6) -> str:
        header = [f"counterexample to: {self.property_text}"]
        if self.valuation:
            header.append(f"closure valuation: {dict(self.valuation)}")
        header.append(
            f"lasso: {len(self.lasso.prefix)} prefix + "
            f"{len(self.lasso.cycle)} cycle snapshots"
        )
        body = self.lasso.describe(composition, relations=relations,
                                   max_rows=max_rows)
        return "\n".join(header) + "\n" + body


@dataclass(frozen=True)
class VerificationResult:
    """The outcome of one verification call.

    Truthy iff the property holds.  ``counterexample`` is set exactly when
    the property fails.
    """

    satisfied: bool
    property_text: str
    counterexample: Counterexample | None
    stats: VerifierStats
    domain_description: str
    semantics_description: str

    def __bool__(self) -> bool:
        return self.satisfied

    @property
    def verdict(self) -> str:
        return "SATISFIED" if self.satisfied else "VIOLATED"

    def summary(self) -> str:
        lines = (
            f"{self.verdict}: {self.property_text}\n"
            f"  domain: {self.domain_description}; "
            f"semantics: {self.semantics_description}\n"
            f"  valuations: {self.stats.valuations_checked}, "
            f"system states: {self.stats.system_states}, "
            f"product nodes: {self.stats.product_nodes_visited}, "
            f"time: {self.stats.wall_seconds:.3f}s"
        )
        if self.stats.workers > 1:
            lines += (
                f"\n  workers: {self.stats.workers}, "
                f"tasks: {self.stats.tasks_run} run + "
                f"{self.stats.tasks_cancelled} cancelled, "
                f"compute: {self.stats.task_seconds:.3f}s"
            )
        return lines


class Stopwatch:
    """Tiny context manager accumulating wall time into VerifierStats."""

    def __init__(self, stats: VerifierStats) -> None:
        self.stats = stats

    def __enter__(self) -> "Stopwatch":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.stats.wall_seconds += time.perf_counter() - self._t0
