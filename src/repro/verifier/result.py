"""Verification results, counterexamples, and statistics."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

from ..fo.terms import Value
from ..runtime.run import Lasso
from ..spec.composition import Composition


@dataclass
class VerifierStats:
    """Aggregate counters across a whole verification call."""

    valuations_checked: int = 0
    system_states: int = 0
    product_nodes_visited: int = 0
    nba_states_total: int = 0
    wall_seconds: float = 0.0

    def merge_search(self, blue: int, red: int) -> None:
        self.product_nodes_visited += blue + red


@dataclass(frozen=True)
class Counterexample:
    """A violating run: the valuation of the closure variables plus the
    lasso of snapshots witnessing the negated property."""

    valuation: Mapping[str, Value]
    lasso: Lasso
    property_text: str

    def describe(self, composition: Composition,
                 relations=None, max_rows: int = 6) -> str:
        header = [f"counterexample to: {self.property_text}"]
        if self.valuation:
            header.append(f"closure valuation: {dict(self.valuation)}")
        header.append(
            f"lasso: {len(self.lasso.prefix)} prefix + "
            f"{len(self.lasso.cycle)} cycle snapshots"
        )
        body = self.lasso.describe(composition, relations=relations,
                                   max_rows=max_rows)
        return "\n".join(header) + "\n" + body


@dataclass(frozen=True)
class VerificationResult:
    """The outcome of one verification call.

    Truthy iff the property holds.  ``counterexample`` is set exactly when
    the property fails.
    """

    satisfied: bool
    property_text: str
    counterexample: Counterexample | None
    stats: VerifierStats
    domain_description: str
    semantics_description: str

    def __bool__(self) -> bool:
        return self.satisfied

    @property
    def verdict(self) -> str:
        return "SATISFIED" if self.satisfied else "VIOLATED"

    def summary(self) -> str:
        return (
            f"{self.verdict}: {self.property_text}\n"
            f"  domain: {self.domain_description}; "
            f"semantics: {self.semantics_description}\n"
            f"  valuations: {self.stats.valuations_checked}, "
            f"system states: {self.stats.system_states}, "
            f"product nodes: {self.stats.product_nodes_visited}, "
            f"time: {self.stats.wall_seconds:.3f}s"
        )


class Stopwatch:
    """Tiny context manager accumulating wall time into VerifierStats."""

    def __init__(self, stats: VerifierStats) -> None:
        self.stats = stats

    def __enter__(self) -> "Stopwatch":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.stats.wall_seconds += time.perf_counter() - self._t0
