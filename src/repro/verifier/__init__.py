"""Decision procedures: LTL-FO verification, protocol compliance,
modular (assume-guarantee) verification."""

from .atoms import (
    InternedSnapshotEvaluator, OccursAtom, SharedSnapshotContext,
    SnapshotEvaluator,
)
from .domain import (
    VerificationDomain, canonical_valuations, canonicalize_valuation,
    enumerate_databases, fresh_values, verification_domain,
)
from .graph import (
    ExploredGraph, InternedProduct, SharedExploration, StateInterner,
    resolve_engine,
)
from .parallel import (
    SweepContext, SweepPayload, SweepTask, check_one_valuation,
    default_workers, resolve_workers, run_sweep,
)
from .product import ProductSystem, SearchBudget, TransitionCache
from .result import (
    Counterexample, TaskStats, VerificationResult, VerifierStats,
)
from .search import (
    LassoNodes, SearchCancelled, SearchStats, find_accepting_lasso,
)
from .ltlfo_verifier import (
    preflight, verify, verify_all, verify_over_databases,
)
from .modular import (
    environment_schema, observer_translate, parse_env_spec,
    translate_env_spec, verify_modular,
)

__all__ = [
    "Counterexample", "ExploredGraph", "InternedProduct",
    "InternedSnapshotEvaluator", "LassoNodes", "OccursAtom",
    "ProductSystem",
    "SearchBudget", "SearchCancelled", "SearchStats",
    "SharedExploration", "SharedSnapshotContext", "SnapshotEvaluator",
    "StateInterner",
    "SweepContext", "SweepPayload", "SweepTask", "TaskStats",
    "TransitionCache", "VerificationDomain", "VerificationResult",
    "VerifierStats", "canonical_valuations", "canonicalize_valuation",
    "check_one_valuation", "default_workers", "enumerate_databases",
    "environment_schema", "find_accepting_lasso", "fresh_values",
    "observer_translate", "parse_env_spec", "preflight",
    "resolve_engine", "resolve_workers",
    "run_sweep", "translate_env_spec", "verification_domain", "verify",
    "verify_all", "verify_modular", "verify_over_databases",
]
