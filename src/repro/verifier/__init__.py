"""Decision procedures: LTL-FO verification, protocol compliance,
modular (assume-guarantee) verification."""

from .atoms import (
    InternedSnapshotEvaluator, OccursAtom, SharedSnapshotContext,
    SnapshotEvaluator,
)
from .domain import (
    VerificationDomain, canonical_valuations, canonicalize_valuation,
    enumerate_databases, fresh_values, verification_domain,
)
from .graph import (
    ExploredGraph, InternedProduct, SharedExploration, StateInterner,
    resolve_engine,
)
from .parallel import (
    SweepContext, SweepPayload, SweepTask, check_one_valuation,
    default_workers, resolve_shard, resolve_workers, run_sweep,
    shard_filter,
)
from .shards import (
    MERGED_SCHEMA, SHARD_SCHEMA, merge_fragments,
    merge_metrics_snapshots, result_from_merged, shard_fragment,
    spec_sha,
)
from .shm import (
    GraphSegment, ShmGraphHandle, attach_graph, detach_graph,
    leaked_segments, shm_available,
)
from .product import ProductSystem, SearchBudget, TransitionCache
from .result import (
    Counterexample, TaskStats, VerificationResult, VerifierStats,
)
from .search import (
    LassoNodes, SearchCancelled, SearchStats, find_accepting_lasso,
)
from .ltlfo_verifier import (
    preflight, verify, verify_all, verify_over_databases,
)
from .modular import (
    environment_schema, observer_translate, parse_env_spec,
    translate_env_spec, verify_modular,
)

__all__ = [
    "Counterexample", "ExploredGraph", "GraphSegment",
    "InternedProduct",
    "InternedSnapshotEvaluator", "LassoNodes", "MERGED_SCHEMA",
    "OccursAtom",
    "ProductSystem",
    "SHARD_SCHEMA", "SearchBudget", "SearchCancelled", "SearchStats",
    "SharedExploration", "SharedSnapshotContext", "ShmGraphHandle",
    "SnapshotEvaluator",
    "StateInterner",
    "SweepContext", "SweepPayload", "SweepTask", "TaskStats",
    "TransitionCache", "VerificationDomain", "VerificationResult",
    "VerifierStats", "attach_graph", "canonical_valuations",
    "detach_graph",
    "canonicalize_valuation",
    "check_one_valuation", "default_workers", "enumerate_databases",
    "environment_schema", "find_accepting_lasso", "fresh_values",
    "leaked_segments", "merge_fragments", "merge_metrics_snapshots",
    "observer_translate", "parse_env_spec", "preflight",
    "resolve_engine", "resolve_shard", "resolve_workers",
    "result_from_merged",
    "run_sweep", "shard_filter", "shard_fragment", "shm_available",
    "spec_sha",
    "translate_env_spec", "verification_domain", "verify",
    "verify_all", "verify_modular", "verify_over_databases",
]
