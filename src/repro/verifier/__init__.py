"""Decision procedures: LTL-FO verification, protocol compliance,
modular (assume-guarantee) verification."""

from .atoms import OccursAtom, SnapshotEvaluator
from .domain import (
    VerificationDomain, canonical_valuations, enumerate_databases,
    fresh_values, verification_domain,
)
from .product import ProductSystem, SearchBudget, TransitionCache
from .result import Counterexample, VerificationResult, VerifierStats
from .search import LassoNodes, SearchStats, find_accepting_lasso
from .ltlfo_verifier import verify, verify_all, verify_over_databases
from .modular import (
    environment_schema, observer_translate, parse_env_spec,
    translate_env_spec, verify_modular,
)

__all__ = [
    "Counterexample", "LassoNodes", "OccursAtom", "ProductSystem",
    "SearchBudget", "SearchStats", "SnapshotEvaluator", "TransitionCache",
    "VerificationDomain", "VerificationResult", "VerifierStats",
    "canonical_valuations", "enumerate_databases", "environment_schema",
    "find_accepting_lasso", "fresh_values", "observer_translate",
    "parse_env_spec", "translate_env_spec", "verification_domain",
    "verify", "verify_all", "verify_modular", "verify_over_databases",
]
