"""The LTL-FO verifier (the decision procedure behind Theorem 3.4).

``verify(composition, property, databases, ...)`` decides whether every
run of the composition over the given databases satisfies the LTL-FO
sentence, by exhaustive search over the bounded verification domain:

1. The property's universal closure is expanded into finitely many
   valuations over the verification domain (canonicalized up to
   fresh-value symmetry).
2. For each valuation, the negated instantiated body -- conjoined with
   ``F occurs(v)`` for each fresh value used, implementing the ``Dom(rho)``
   restriction of the closure semantics -- is translated to a Büchi
   automaton (GPVW).
3. The on-the-fly product with the composition's snapshot graph is
   searched for an accepting lasso (nested DFS).  A lasso is a genuine
   infinite counterexample run; none anywhere means the property holds
   over the explored domain.

Completeness beyond the fixed databases follows the bounded-domain
principle: callers either supply the databases of interest or enumerate
small databases via :func:`repro.verifier.domain.enumerate_databases`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..fo.instance import Instance
from ..fo.terms import Value
from ..ib.checker import check_composition, check_sentence
from ..errors import InputBoundednessError
from ..ltl.formulas import land, latom, lfinally, lnot
from ..ltl.translate import ltl_to_buchi
from ..ltlfo.formulas import LTLFOSentence
from ..ltlfo.parser import parse_ltlfo
from ..runtime.run import Lasso
from ..spec.channels import ChannelSemantics, DECIDABLE_DEFAULT
from ..spec.composition import Composition
from .atoms import OccursAtom, SnapshotEvaluator
from .domain import (
    VerificationDomain, canonical_valuations, verification_domain,
)
from .product import ProductSystem, SearchBudget, TransitionCache
from .result import (
    Counterexample, Stopwatch, VerificationResult, VerifierStats,
)
from .search import find_accepting_lasso


def _as_sentence(prop: LTLFOSentence | str,
                 composition: Composition) -> LTLFOSentence:
    if isinstance(prop, str):
        return parse_ltlfo(prop, composition.schema)
    return prop


def _check_restrictions(composition: Composition,
                        sentence: LTLFOSentence,
                        enforce: bool) -> None:
    if not enforce:
        return
    violations = check_composition(composition)
    violations += check_sentence(sentence, composition.schema)
    if violations:
        lines = "\n".join(str(v) for v in violations)
        raise InputBoundednessError(
            "verification requires input-bounded specifications "
            f"(Theorem 3.4); violations:\n{lines}\n"
            "Pass check_input_bounded=False to search anyway "
            "(sound for bug finding over the bounded domain).",
            tuple(violations),
        )


def verify(composition: Composition,
           prop: LTLFOSentence | str,
           databases: Mapping[str, Instance],
           semantics: ChannelSemantics = DECIDABLE_DEFAULT,
           domain: VerificationDomain | None = None,
           check_input_bounded: bool = True,
           budget: SearchBudget | None = None,
           include_environment: bool = True,
           transition_cache: TransitionCache | None = None,
           valuation_candidates: Mapping[str, Sequence[Value]] | None = None,
           env_value_domain: Sequence[Value] | None = None,
           env_one_action_per_move: bool = True,
           fair_scheduling: bool = False,
           ) -> VerificationResult:
    """Decide ``composition |= prop`` over the given databases.

    Arguments
    ---------
    composition:
        A (normally closed) composition.  Open compositions are verified
        against an unconstrained environment (every environment behaviour
        over the domain is explored) unless ``include_environment=False``.
    prop:
        An :class:`LTLFOSentence` or its textual form.
    databases:
        Per-peer database instances (peer name -> :class:`Instance` over
        the peer's database schema).
    semantics:
        Channel semantics; must have bounded queues.
    domain:
        Verification domain override; defaults to the computed
        bounded-domain estimate.
    check_input_bounded:
        Enforce the Theorem 3.4 restrictions before searching.
    transition_cache:
        Share one :class:`TransitionCache` across several properties of
        the same composition/databases/semantics (a large saving when
        checking property batches).
    valuation_candidates:
        Optional per-closure-variable value restriction (variable name ->
        values).  Restricting a variable makes the check complete only
        for valuations within the candidates -- use it when a variable's
        role (e.g. "a customer id") makes other values irrelevant.
    fair_scheduling:
        Restrict counterexamples to *fair* runs, in which every peer
        moves infinitely often (``/\\ GF move_W``).  The paper's
        serialized-run semantics allows a peer to idle forever, which
        trivially defeats most liveness properties; fairness is the
        standard remedy (a library extension -- the paper does not
        discuss fairness).
    """
    sentence = _as_sentence(prop, composition)
    _check_restrictions(composition, sentence, check_input_bounded)

    if domain is None:
        domain = verification_domain(
            composition, [sentence], databases
        )

    stats = VerifierStats()
    cache = transition_cache or TransitionCache(
        composition, databases, domain.values, semantics,
        include_environment=include_environment, budget=budget,
        env_value_domain=env_value_domain,
        env_one_action_per_move=env_one_action_per_move,
    )

    valuations = canonical_valuations(sentence.variables, domain)
    if valuation_candidates:
        valuations = [
            v for v in valuations
            if all(
                var.name not in valuation_candidates
                or v[var] in valuation_candidates[var.name]
                for var in sentence.variables
            )
        ]
    result_counterexample: Counterexample | None = None

    fairness_terms = []
    if fair_scheduling:
        from ..fo.formulas import Atom
        from ..fo.schema import move_name
        from ..ltl.formulas import lglobally
        fairness_terms = [
            lglobally(lfinally(latom(Atom(move_name(p.name), ()))))
            for p in composition.peers
        ]

    with Stopwatch(stats):
        for valuation in valuations:
            stats.valuations_checked += 1
            body = sentence.instantiate(valuation)
            negated = lnot(body)
            # Dom(rho) restriction: fresh valuation values must occur
            occurs_terms = [
                lfinally(latom(OccursAtom(v)))
                for v in set(valuation.values())
                if v not in domain.constants
            ]
            nba = ltl_to_buchi(
                land(negated, *occurs_terms, *fairness_terms)
            )
            stats.nba_states_total += nba.num_states()
            evaluator = SnapshotEvaluator(
                composition, domain.values, nba.aps
            )
            product = ProductSystem(cache, nba, evaluator)
            lasso_nodes, search_stats = find_accepting_lasso(product)
            stats.merge_search(search_stats.blue_visited,
                               search_stats.red_visited)
            if lasso_nodes is not None:
                prefix = tuple(n[0] for n in lasso_nodes.prefix)
                cycle = tuple(n[0] for n in lasso_nodes.cycle)
                result_counterexample = Counterexample(
                    valuation={
                        var.name: value
                        for var, value in valuation.items()
                    },
                    lasso=Lasso(prefix, cycle),
                    property_text=str(sentence),
                )
                break
        stats.system_states = cache.states_expanded

    return VerificationResult(
        satisfied=result_counterexample is None,
        property_text=str(sentence),
        counterexample=result_counterexample,
        stats=stats,
        domain_description=domain.describe(),
        semantics_description=semantics.describe(),
    )


def verify_over_databases(composition: Composition,
                          prop: LTLFOSentence | str,
                          relation_arities_by_peer: Mapping[str, Mapping[str, int]],
                          domain_values: Sequence[Value],
                          max_rows: int = 1,
                          semantics: ChannelSemantics = DECIDABLE_DEFAULT,
                          **kwargs) -> VerificationResult:
    """Decide the property over *every* database within the given bounds.

    The completeness companion to :func:`verify`: enumerates all database
    combinations over ``domain_values`` with at most ``max_rows`` rows per
    relation (exponential -- tiny schemas only) and returns the first
    counterexample found, or SATISFIED if none exists anywhere.

    ``relation_arities_by_peer`` maps each peer name to the relation
    arities of the databases to enumerate, e.g.
    ``{"S": {"items": 1}}``.
    """
    from .domain import enumerate_databases
    import itertools

    per_peer: list[list[tuple[str, Instance]]] = []
    for peer_name in sorted(relation_arities_by_peer):
        arities = relation_arities_by_peer[peer_name]
        instances = enumerate_databases(arities, domain_values,
                                        max_rows=max_rows)
        per_peer.append([(peer_name, inst) for inst in instances])

    last: VerificationResult | None = None
    combos = itertools.product(*per_peer) if per_peer else [()]
    for combo in combos:
        databases = dict(combo)
        result = verify(composition, prop, databases,
                        semantics=semantics, **kwargs)
        if not result.satisfied:
            return result
        last = result
    assert last is not None, "no database combination enumerated"
    return last


def verify_all(composition: Composition,
               props: Sequence[LTLFOSentence | str],
               databases: Mapping[str, Instance],
               semantics: ChannelSemantics = DECIDABLE_DEFAULT,
               domain: VerificationDomain | None = None,
               check_input_bounded: bool = True,
               budget: SearchBudget | None = None,
               ) -> list[VerificationResult]:
    """Verify several properties sharing one transition-system exploration."""
    sentences = [_as_sentence(p, composition) for p in props]
    if domain is None:
        domain = verification_domain(composition, sentences, databases)
    cache = TransitionCache(
        composition, databases, domain.values, semantics, budget=budget,
    )
    return [
        verify(composition, s, databases, semantics=semantics,
               domain=domain, check_input_bounded=check_input_bounded,
               budget=budget, transition_cache=cache)
        for s in sentences
    ]
