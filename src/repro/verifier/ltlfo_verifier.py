"""The LTL-FO verifier (the decision procedure behind Theorem 3.4).

``verify(composition, property, databases, ...)`` decides whether every
run of the composition over the given databases satisfies the LTL-FO
sentence, by exhaustive search over the bounded verification domain:

1. The property's universal closure is expanded into finitely many
   valuations over the verification domain (canonicalized up to
   fresh-value symmetry).
2. For each valuation, the negated instantiated body -- conjoined with
   ``F occurs(v)`` for each fresh value used, implementing the ``Dom(rho)``
   restriction of the closure semantics -- is translated to a Büchi
   automaton (GPVW).
3. The on-the-fly product with the composition's snapshot graph is
   searched for an accepting lasso (nested DFS).  A lasso is a genuine
   infinite counterexample run; none anywhere means the property holds
   over the explored domain.

Completeness beyond the fixed databases follows the bounded-domain
principle: callers either supply the databases of interest or enumerate
small databases via :func:`repro.verifier.domain.enumerate_databases`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..fo.instance import Instance
from ..fo.terms import Value
from ..ib.checker import check_composition, check_sentence
from ..errors import InputBoundednessError
from ..ltlfo.formulas import LTLFOSentence
from ..ltlfo.parser import parse_ltlfo
from ..obs import diff_numeric, phase_counts, phase_seconds
from ..runtime.run import Lasso
from ..runtime.step import rule_cache_delta, rule_cache_info
from ..spec.channels import ChannelSemantics, DECIDABLE_DEFAULT
from ..spec.composition import Composition
from .domain import (
    VerificationDomain, canonical_valuations, verification_domain,
)
from .graph import SharedExploration, resolve_engine
from .parallel import (
    check_one_valuation, parallel_verify, parallel_verify_all,
    parallel_verify_over_databases, resolve_shard, resolve_workers,
)
from .product import SearchBudget, TransitionCache
from .result import (
    Counterexample, Stopwatch, VerificationResult, VerifierStats,
)


def _as_sentence(prop: LTLFOSentence | str,
                 composition: Composition) -> LTLFOSentence:
    if isinstance(prop, str):
        return parse_ltlfo(prop, composition.schema)
    return prop


def _check_restrictions(composition: Composition,
                        sentence: LTLFOSentence,
                        enforce: bool) -> None:
    if not enforce:
        return
    violations = check_composition(composition)
    violations += check_sentence(sentence, composition.schema)
    if violations:
        lines = "\n".join(str(v) for v in violations)
        raise InputBoundednessError(
            "verification requires input-bounded specifications "
            f"(Theorem 3.4); violations:\n{lines}\n"
            "Pass check_input_bounded=False to search anyway "
            "(sound for bug finding over the bounded domain).",
            tuple(violations),
        )


def preflight(composition: Composition,
              props: Sequence[LTLFOSentence | str] = (),
              semantics: ChannelSemantics = DECIDABLE_DEFAULT):
    """Classify the configuration before searching (``repro lint`` pass 5).

    Returns a :class:`repro.analysis.decidability.Classification` naming
    the paper theorem that applies: decidable rows carry the complexity
    class, undecidable rows the violated restriction.  ``verify`` itself
    stays unchanged -- the search is sound for bug finding either way --
    but callers (the CLI does this) can warn or refuse up front.
    """
    from ..analysis.decidability import classify

    sentences = [_as_sentence(p, composition) for p in props]
    return classify(composition, sentences, semantics)


def verify(composition: Composition,
           prop: LTLFOSentence | str,
           databases: Mapping[str, Instance],
           semantics: ChannelSemantics = DECIDABLE_DEFAULT,
           domain: VerificationDomain | None = None,
           check_input_bounded: bool = True,
           budget: SearchBudget | None = None,
           include_environment: bool = True,
           transition_cache: TransitionCache | None = None,
           valuation_candidates: Mapping[str, Sequence[Value]] | None = None,
           env_value_domain: Sequence[Value] | None = None,
           env_one_action_per_move: bool = True,
           fair_scheduling: bool = False,
           workers: int | None = None,
           engine: str | SharedExploration | None = None,
           shard: tuple[int, int] | None = None,
           ) -> VerificationResult:
    """Decide ``composition |= prop`` over the given databases.

    Arguments
    ---------
    composition:
        A (normally closed) composition.  Open compositions are verified
        against an unconstrained environment (every environment behaviour
        over the domain is explored) unless ``include_environment=False``.
    prop:
        An :class:`LTLFOSentence` or its textual form.
    databases:
        Per-peer database instances (peer name -> :class:`Instance` over
        the peer's database schema).
    semantics:
        Channel semantics; must have bounded queues.
    domain:
        Verification domain override; defaults to the computed
        bounded-domain estimate.
    check_input_bounded:
        Enforce the Theorem 3.4 restrictions before searching.
    transition_cache:
        Share one :class:`TransitionCache` across several properties of
        the same composition/databases/semantics (a large saving when
        checking property batches).
    valuation_candidates:
        Optional per-closure-variable value restriction (variable name ->
        values).  Restricting a variable makes the check complete only
        for valuations within the candidates -- use it when a variable's
        role (e.g. "a customer id") makes other values irrelevant.
    fair_scheduling:
        Restrict counterexamples to *fair* runs, in which every peer
        moves infinitely often (``/\\ GF move_W``).  The paper's
        serialized-run semantics allows a peer to idle forever, which
        trivially defeats most liveness properties; fairness is the
        standard remedy (a library extension -- the paper does not
        discuss fairness).
    workers:
        Fan the valuation sweep out across this many worker processes
        (``None``: the ``REPRO_WORKERS`` environment default, normally
        1; ``0``: all cores).  Verdicts and counterexamples are
        identical to the sequential sweep (see
        :mod:`repro.verifier.parallel`).  Ignored when a shared
        ``transition_cache`` is supplied, since worker processes cannot
        populate the caller's in-process cache.
    engine:
        ``"shared"`` (default; overridable via ``REPRO_ENGINE``) runs
        the search over a hash-consed exploration shared across
        valuations -- the reachable graph is frozen into CSR form after
        the first valuation and later valuations are pure graph walks
        (see :mod:`repro.verifier.graph`).  ``"seed"`` is the original
        per-valuation engine.  A :class:`SharedExploration` instance
        reuses that exploration directly (``verify_all`` does this to
        share one frozen graph across a property batch).  Verdicts,
        counterexamples, and search node counts are identical either
        way (Theorem 3.4's graph is valuation-independent).
    shard:
        ``(index, count)`` restricts the sweep to the valuations whose
        global order falls in this shard's residue class
        (``order % count == index``), for splitting one sweep across
        machines.  Each shard emits a fragment; ``repro merge-shards``
        reassembles the global verdict (see
        :mod:`repro.verifier.shards`).  Sharding always routes through
        the task-grid engine -- it cannot combine with a caller-supplied
        ``transition_cache`` or :class:`SharedExploration` instance.
    """
    sentence = _as_sentence(prop, composition)
    _check_restrictions(composition, sentence, check_input_bounded)

    if domain is None:
        domain = verification_domain(
            composition, [sentence], databases
        )

    valuations = canonical_valuations(sentence.variables, domain)
    if valuation_candidates:
        valuations = [
            v for v in valuations
            if all(
                var.name not in valuation_candidates
                or v[var] in valuation_candidates[var.name]
                for var in sentence.variables
            )
        ]

    n_workers = resolve_workers(workers)
    shard = resolve_shard(shard)
    if shard is not None and (transition_cache is not None
                              or isinstance(engine, SharedExploration)):
        raise ValueError(
            "shard= cannot combine with transition_cache= or a "
            "SharedExploration engine instance"
        )
    if ((n_workers > 1 or shard is not None)
            and transition_cache is None
            and (len(valuations) > 1 or shard is not None)
            and not isinstance(engine, SharedExploration)):
        return parallel_verify(
            composition, sentence, databases, semantics, domain,
            valuations, n_workers, budget=budget,
            include_environment=include_environment,
            env_value_domain=env_value_domain,
            env_one_action_per_move=env_one_action_per_move,
            fair_scheduling=fair_scheduling,
            engine=resolve_engine(engine),
            shard=shard,
        )

    stats = VerifierStats()
    if isinstance(engine, SharedExploration):
        shared_engine: SharedExploration | None = engine
        cache = engine.cache
    else:
        cache = transition_cache or TransitionCache(
            composition, databases, domain.values, semantics,
            include_environment=include_environment, budget=budget,
            env_value_domain=env_value_domain,
            env_one_action_per_move=env_one_action_per_move,
        )
        shared_engine = (SharedExploration(cache)
                         if resolve_engine(engine) == "shared" else None)
    result_counterexample: Counterexample | None = None
    cache_before = rule_cache_info()
    seconds_before = phase_seconds()
    counts_before = phase_counts()

    with Stopwatch(stats):
        for index, valuation in enumerate(valuations):
            if shared_engine is not None and index == 1:
                # the first valuation explored lazily (it may decide the
                # verdict without the full graph); from the second on,
                # freeze so remaining valuations are pure graph walks
                shared_engine.complete(strict=False)
            stats.valuations_checked += 1
            outcome = check_one_valuation(
                composition, sentence, valuation, domain, cache,
                fair_scheduling=fair_scheduling, engine=shared_engine,
            )
            stats.nba_states_total += outcome.nba_states
            stats.merge_search(outcome.blue_visited, outcome.red_visited)
            if outcome.violated:
                stats.decisive_order = index
                result_counterexample = Counterexample(
                    valuation={
                        var.name: value
                        for var, value in valuation.items()
                    },
                    lasso=Lasso(outcome.lasso_prefix, outcome.lasso_cycle),
                    property_text=str(sentence),
                )
                break
        stats.system_states = (
            cache.states_expanded if cache is not None
            else len(shared_engine.interner)
        )

    stats.merge_phases(diff_numeric(phase_seconds(), seconds_before),
                       diff_numeric(phase_counts(), counts_before))
    stats.merge_rule_cache(rule_cache_delta(cache_before))

    return VerificationResult(
        satisfied=result_counterexample is None,
        property_text=str(sentence),
        counterexample=result_counterexample,
        stats=stats,
        domain_description=domain.describe(),
        semantics_description=semantics.describe(),
    )


def verify_over_databases(composition: Composition,
                          prop: LTLFOSentence | str,
                          relation_arities_by_peer: Mapping[str, Mapping[str, int]],
                          domain_values: Sequence[Value],
                          max_rows: int = 1,
                          semantics: ChannelSemantics = DECIDABLE_DEFAULT,
                          workers: int | None = None,
                          engine: str | None = None,
                          **kwargs) -> VerificationResult:
    """Decide the property over *every* database within the given bounds.

    The completeness companion to :func:`verify`: enumerates all database
    combinations over ``domain_values`` with at most ``max_rows`` rows per
    relation (exponential -- tiny schemas only) and returns the first
    counterexample found, or SATISFIED if none exists anywhere.

    ``relation_arities_by_peer`` maps each peer name to the relation
    arities of the databases to enumerate, e.g.
    ``{"S": {"items": 1}}``.

    With ``workers > 1`` the full (database, valuation) grid is fanned
    out across worker processes; the first violated cell in enumeration
    order decides, so the verdict and counterexample match the
    sequential enumeration.  Keyword arguments beyond
    ``check_input_bounded``/``budget``/``domain`` force the sequential
    path (they configure per-call machinery the grid does not ship).
    """
    from .domain import enumerate_databases
    import itertools

    per_peer: list[list[tuple[str, Instance]]] = []
    for peer_name in sorted(relation_arities_by_peer):
        arities = relation_arities_by_peer[peer_name]
        instances = enumerate_databases(arities, domain_values,
                                        max_rows=max_rows)
        per_peer.append([(peer_name, inst) for inst in instances])

    combos = (
        [dict(c) for c in itertools.product(*per_peer)] if per_peer
        else [{}]
    )

    n_workers = resolve_workers(workers)
    parallel_ok = not (set(kwargs) - {"check_input_bounded", "budget",
                                      "domain"})
    if n_workers > 1 and len(combos) > 1 and parallel_ok:
        sentence = _as_sentence(prop, composition)
        _check_restrictions(composition, sentence,
                            kwargs.get("check_input_bounded", True))
        fixed_domain = kwargs.get("domain")
        domains = [
            fixed_domain or verification_domain(composition, [sentence],
                                                dbs)
            for dbs in combos
        ]
        valuations_per_combo = [
            canonical_valuations(sentence.variables, dom)
            for dom in domains
        ]
        return parallel_verify_over_databases(
            composition, sentence, combos, semantics, domains,
            valuations_per_combo, n_workers,
            budget=kwargs.get("budget"),
            engine=resolve_engine(engine),
        )

    last: VerificationResult | None = None
    for databases in combos:
        result = verify(composition, prop, databases,
                        semantics=semantics, workers=n_workers,
                        engine=engine, **kwargs)
        if not result.satisfied:
            return result
        last = result
    assert last is not None, "no database combination enumerated"
    return last


def verify_all(composition: Composition,
               props: Sequence[LTLFOSentence | str],
               databases: Mapping[str, Instance],
               semantics: ChannelSemantics = DECIDABLE_DEFAULT,
               domain: VerificationDomain | None = None,
               check_input_bounded: bool = True,
               budget: SearchBudget | None = None,
               workers: int | None = None,
               engine: str | None = None,
               shard: tuple[int, int] | None = None,
               ) -> list[VerificationResult]:
    """Verify several properties sharing one transition-system exploration.

    With ``workers > 1`` every (property, valuation) pair becomes one
    task of the parallel sweep; under the shared engine the driver
    pre-expands the reachable graph once and ships it to every worker.
    Sequentially, one :class:`SharedExploration` (interner, frozen
    graph, snapshot/letter caches) serves the whole batch.  Verdicts
    and counterexamples are identical to the sequential seed batch.
    """
    sentences = [_as_sentence(p, composition) for p in props]
    if domain is None:
        domain = verification_domain(composition, sentences, databases)

    engine_mode = resolve_engine(engine)
    n_workers = resolve_workers(workers)
    shard = resolve_shard(shard)
    if (n_workers > 1 or shard is not None) and sentences:
        for sentence in sentences:
            _check_restrictions(composition, sentence, check_input_bounded)
        valuations_per_sentence = [
            canonical_valuations(s.variables, domain) for s in sentences
        ]
        return parallel_verify_all(
            composition, sentences, databases, semantics, domain,
            valuations_per_sentence, n_workers, budget=budget,
            engine=engine_mode, shard=shard,
        )

    cache = TransitionCache(
        composition, databases, domain.values, semantics, budget=budget,
    )
    shared: str | SharedExploration = engine_mode
    if engine_mode == "shared":
        shared = SharedExploration(cache)
    return [
        verify(composition, s, databases, semantics=semantics,
               domain=domain, check_input_bounded=check_input_bounded,
               budget=budget, transition_cache=cache, engine=shared)
        for s in sentences
    ]
