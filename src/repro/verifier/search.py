"""Nested depth-first search for accepting lassos (Büchi emptiness).

The classic Courcoubetis-Vardi-Wolper-Yannakakis algorithm, iterative (no
recursion limits), with counterexample extraction: the blue DFS explores
the product graph; when an accepting node is finished, a red DFS looks for
a cycle back to the blue stack.  Red marks persist across seeds, keeping
the whole search linear in the product size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from ..errors import VerificationError
from ..obs import PHASE_SEARCH, counter, phase
from .product import ProductNode, ProductSystem

#: How many loop iterations pass between ``should_stop`` polls.
#:
#: Polling is driven by a per-search iteration counter, NOT by
#: ``stats.nodes_visited``: node counts stall during postorder/pop
#: stretches (every iteration would re-poll at a multiple and never
#: poll between multiples), so a monotonic tick is the only way to
#: bound cancellation latency.
_STOP_POLL_INTERVAL = 128


class SearchCancelled(Exception):
    """Raised when a cooperative ``should_stop`` callback aborts a search.

    Used by the parallel sweep engine to cancel in-flight emptiness
    searches once another task has already decided the verdict.
    """


@dataclass
class SearchStats:
    """Counters reported by one emptiness search."""

    blue_visited: int = 0
    red_visited: int = 0

    @property
    def nodes_visited(self) -> int:
        return self.blue_visited + self.red_visited


@dataclass
class LassoNodes:
    """An accepting lasso in the product: prefix then cycle (non-empty)."""

    prefix: tuple[ProductNode, ...]
    cycle: tuple[ProductNode, ...]


def _red_search(seed: ProductNode,
                successors: Callable[[ProductNode], Iterator[ProductNode]],
                cyan: set, red: set,
                stats: SearchStats,
                should_stop: Callable[[], bool] | None = None
                ) -> list[ProductNode] | None:
    """DFS from *seed*; returns a path ``seed -> ... -> t`` with t cyan."""
    parents: dict[ProductNode, ProductNode] = {}
    stack = [seed]
    local_seen = {seed}
    tick = 0
    while stack:
        node = stack.pop()
        if (should_stop is not None
                and tick % _STOP_POLL_INTERVAL == 0
                and should_stop()):
            raise SearchCancelled
        tick += 1
        for succ in successors(node):
            if succ in cyan:
                # found the closing edge; rebuild the red path
                path = [succ]
                cur = node
                while cur != seed:
                    path.append(cur)
                    cur = parents[cur]
                path.append(seed)
                path.reverse()
                return path  # seed, ..., node, t(cyan)
            if succ not in red and succ not in local_seen:
                local_seen.add(succ)
                parents[succ] = node
                stack.append(succ)
                stats.red_visited += 1
    red.update(local_seen)
    return None


def find_accepting_lasso(product: ProductSystem,
                         max_nodes: int | None = None,
                         should_stop: Callable[[], bool] | None = None
                         ) -> tuple[LassoNodes | None, SearchStats]:
    """Search the product for a reachable accepting cycle.

    Returns ``(lasso, stats)``; ``lasso`` is None iff no run of the system
    satisfies the automaton's (negated-property) language -- i.e. the
    property holds.

    ``should_stop`` is polled every few node visits; when it returns
    True the search raises :class:`SearchCancelled` (cooperative
    cancellation for the parallel sweep engine).
    """
    stats = SearchStats()
    try:
        with phase(PHASE_SEARCH):
            return _blue_dfs(product, stats, max_nodes, should_stop)
    finally:
        counter("search.blue_visited").inc(stats.blue_visited)
        counter("search.red_visited").inc(stats.red_visited)
        counter("search.runs").inc()


def _blue_dfs(product: ProductSystem,
              stats: SearchStats,
              max_nodes: int | None = None,
              should_stop: Callable[[], bool] | None = None
              ) -> tuple[LassoNodes | None, SearchStats]:
    limit = max_nodes or product.cache.budget.max_product_nodes
    cyan: set = set()
    blue: set = set()
    red: set = set()
    path: list[ProductNode] = []

    for root in product.initial_nodes():
        if root in blue:
            continue
        # iterative blue DFS from this root
        stack: list[tuple[ProductNode, Iterator[ProductNode]]] = []
        cyan.add(root)
        path.append(root)
        stack.append((root, product.successors(root)))
        stats.blue_visited += 1
        tick = 0
        while stack:
            node, it = stack[-1]
            if (should_stop is not None
                    and tick % _STOP_POLL_INTERVAL == 0
                    and should_stop()):
                raise SearchCancelled
            tick += 1
            advanced = False
            for succ in it:
                if succ in cyan or succ in blue:
                    continue
                if stats.nodes_visited >= limit:
                    raise VerificationError(
                        f"product-node budget ({limit}) exceeded"
                    )
                cyan.add(succ)
                path.append(succ)
                stack.append((succ, product.successors(succ)))
                stats.blue_visited += 1
                advanced = True
                break
            if advanced:
                continue
            # postorder: node finished
            stack.pop()
            if product.is_accepting(node):
                red_path = _red_search(node, product.successors, cyan,
                                       red, stats, should_stop)
                if red_path is not None:
                    target = red_path[-1]  # the cyan node closing the cycle
                    anchor = path.index(target)
                    prefix = tuple(path[:anchor])
                    cycle = tuple(path[anchor:]) + tuple(red_path[1:-1])
                    counter("search.lassos_found").inc()
                    return LassoNodes(prefix, cycle), stats
            cyan.discard(node)
            blue.add(node)
            path.pop()
    return None, stats
