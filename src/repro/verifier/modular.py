"""Modular (assume-guarantee) verification (Section 5, Theorem 5.4).

``verify_modular(C, phi, psi, ...)`` checks ``C |=_psi phi``: every run of
the open composition ``C`` -- with nondeterministic environment
transitions interleaved -- that satisfies the environment specification
``psi`` also satisfies ``phi``.

The environment spec undergoes the paper's two translations, in order:

1. **Move relativization** (Definition 5.3): the spec describes the
   environment's own steps, so its temporal operators become ``X_alpha`` /
   ``U_alpha`` with ``alpha = move_ENV``.
2. **Observer-at-recipient translation**: an atom ``Q(x̄)`` for an
   environment *output* queue means "the environment sends ``Q(x̄)``";
   with lossy bounded channels the recipient can only observe
   ``X(received_Q -> Q(x̄))`` -- if a message arrives next step, it is
   that one.

The second translation inserts a plain ``X`` *inside* the scope of the
spec's FO quantifiers (see the paper's Example 5.2), which leaves the
LTL-over-FO-payload representation.  We recover it with a standard
one-step-history construction: since quantifiers commute with ``X`` (the
data domain is time-invariant),

    forall x̄ (A(x̄) -> X B(x̄))   ==   X forall x̄ (prev.A(x̄) -> B(x̄))

so each affected payload is rewritten into an FO formula over the *pair*
(previous snapshot, current snapshot) and prefixed with one outer ``X``.
The product system tracks the previous snapshot, and ``prev.R`` atoms read
it.  The violation search then looks for a run satisfying
``psi_translated & ~phi(nu)``.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from ..errors import VerificationError
from ..fo import formulas as fo
from ..fo.evaluator import evaluate
from ..fo.instance import Instance
from ..fo.schema import (
    ENVIRONMENT_NAME, RelationKind, RelationSymbol, Schema, move_name,
    received_name,
)
from ..ib.checker import check_sentence
from ..ltl.buchi import BuchiAutomaton
from ..ltl.formulas import LAtom, LTLFormula, land, latom, lfinally, lnot
from ..ltl.translate import ltl_to_buchi
from ..ltlfo.formulas import LTLFOSentence, map_payloads, relativize
from ..ltlfo.parser import parse_ltlfo
from ..runtime.run import Lasso
from ..runtime.state import GlobalState, snapshot_view
from ..spec.channels import ChannelSemantics, DECIDABLE_DEFAULT
from ..spec.composition import Composition
from ..spec.rules import rename_formula_relations
from .atoms import OccursAtom
from .domain import (
    VerificationDomain, canonical_valuations, verification_domain,
)
from .ltlfo_verifier import _as_sentence
from .product import SearchBudget, TransitionCache
from .result import (
    Counterexample, Stopwatch, VerificationResult, VerifierStats,
)
from .search import find_accepting_lasso

PREV_MARK = "@prev."


# -- environment-spec parsing ---------------------------------------------------


def environment_schema(composition: Composition) -> Schema:
    """The vocabulary of environment specs: the env channels, unqualified.

    ``?Q`` refers to queues the environment consumes (``E.Qin``), ``!Q``
    to queues it feeds (``E.Qout``), exactly as the paper's Example 5.1
    writes them from the credit agency's perspective.
    """
    symbols = []
    for chan in composition.env_in_channels():
        symbols.append(RelationSymbol(
            chan.name, chan.arity, RelationKind.IN_QUEUE,
            nested=chan.nested,
        ))
    for chan in composition.env_out_channels():
        symbols.append(RelationSymbol(
            chan.name, chan.arity, RelationKind.OUT_QUEUE,
            nested=chan.nested,
        ))
    return Schema(symbols)


def parse_env_spec(text: str, composition: Composition) -> LTLFOSentence:
    """Parse an environment spec against the environment schema.

    Payload relations are renamed to their ``ENV.Q`` composition-schema
    names.
    """
    if composition.is_closed:
        raise VerificationError(
            "environment specs only apply to open compositions"
        )
    schema = environment_schema(composition)
    parsed = parse_ltlfo(text, schema)
    mapping = {
        sym.name: f"{ENVIRONMENT_NAME}.{sym.name}" for sym in schema
    }
    body = map_payloads(
        parsed.body, lambda p: rename_formula_relations(p, mapping)
    )
    return LTLFOSentence(parsed.variables, body)


# -- the two translations -----------------------------------------------------


def _env_out_names(composition: Composition) -> dict[str, str]:
    """ENV.Q payload names of env-output channels -> received_Q names."""
    out: dict[str, str] = {}
    for chan in composition.env_out_channels():
        assert chan.receiver is not None
        out[f"{ENVIRONMENT_NAME}.{chan.name}"] = (
            f"{chan.receiver}.{received_name(chan.name)}"
        )
    return out


def _observer_translate_payload(payload: fo.Formula,
                                env_out: dict[str, str]
                                ) -> tuple[fo.Formula, bool]:
    """Rewrite env-output atoms to ``received_Q -> Q(x̄)`` (current step)
    and everything else to ``prev.``-marked atoms (previous step).

    Returns the rewritten formula and whether any env-output atom was
    found (if not, the payload needs no ``X`` shift at all).
    """
    found = False

    def rewrite(f: fo.Formula) -> fo.Formula:
        nonlocal found
        if isinstance(f, fo.Atom):
            target = env_out.get(f.rel)
            if target is not None:
                found = True
                return fo.implies(fo.Atom(target, ()), f)
            return fo.Atom(PREV_MARK + f.rel, f.terms)
        if isinstance(f, (fo.TrueF, fo.FalseF, fo.Eq)):
            return f
        if isinstance(f, fo.Not):
            return fo.Not(rewrite(f.body))
        if isinstance(f, fo.And):
            return fo.And(tuple(rewrite(c) for c in f.children))
        if isinstance(f, fo.Or):
            return fo.Or(tuple(rewrite(c) for c in f.children))
        if isinstance(f, fo.Implies):
            return fo.Implies(rewrite(f.antecedent), rewrite(f.consequent))
        if isinstance(f, (fo.Exists, fo.Forall)):
            cls = type(f)
            return cls(f.variables, rewrite(f.body))
        raise VerificationError(f"cannot translate payload node {f!r}")

    rewritten = rewrite(payload)
    return rewritten, found


def observer_translate(body: LTLFormula, composition: Composition
                       ) -> LTLFormula:
    """The observer-at-recipient translation, as a payload transformation.

    Payloads containing env-output atoms become ``X`` of a pair-snapshot
    FO formula (see module docstring); others are left untouched.
    """
    env_out = _env_out_names(composition)

    def transform(payload: fo.Formula) -> LTLFormula:
        rels = fo.relations(payload)
        if not (rels & set(env_out)):
            return LAtom(payload)
        rewritten, _found = _observer_translate_payload(payload, env_out)
        from ..ltl.formulas import lnext
        return lnext(LAtom(rewritten))

    # map_payloads wraps results in LAtom, so inline the traversal
    from ..ltl.formulas import (
        LAnd, LFalse, LNext, LNot, LOr, LRelease, LTrue, LUntil,
    )

    def walk(f: LTLFormula) -> LTLFormula:
        if isinstance(f, (LTrue, LFalse)):
            return f
        if isinstance(f, LAtom):
            return transform(f.ap)
        if isinstance(f, LNot):
            return LNot(walk(f.body))
        if isinstance(f, LNext):
            return LNext(walk(f.body))
        if isinstance(f, (LAnd, LOr, LUntil, LRelease)):
            cls = type(f)
            return cls(walk(f.left), walk(f.right))
        raise VerificationError(f"not an LTL formula: {f!r}")

    return walk(body)


def source_translate(body: LTLFormula, composition: Composition
                     ) -> LTLFormula:
    """Source-observed environment atoms (a library extension).

    The paper's observer-at-recipient translation (Definition 5.3) only
    constrains messages that *arrive immediately after a step where the
    spec's trigger held*; in particular a spec of the Example 5.1 shape
    cannot forbid unsolicited environment messages.  Because this
    library's environment model never loses its own sends (a send into a
    full queue is replaced by not sending, which produces the same run
    set), the environment's output is directly observable at the moment
    of enqueue: ``Q(x̄)`` holds at a snapshot iff a message arrived in
    ``Q`` at that step and it is ``x̄``.  This translation rewrites each
    env-output atom to ``received_Q & Q(x̄)``, giving specs that constrain
    *every* environment send.
    """
    env_out = _env_out_names(composition)

    def rewrite(f: fo.Formula) -> fo.Formula:
        if isinstance(f, fo.Atom):
            target = env_out.get(f.rel)
            if target is not None:
                return fo.conj(fo.Atom(target, ()), f)
            return f
        if isinstance(f, (fo.TrueF, fo.FalseF, fo.Eq)):
            return f
        if isinstance(f, fo.Not):
            return fo.Not(rewrite(f.body))
        if isinstance(f, fo.And):
            return fo.And(tuple(rewrite(c) for c in f.children))
        if isinstance(f, fo.Or):
            return fo.Or(tuple(rewrite(c) for c in f.children))
        if isinstance(f, fo.Implies):
            return fo.Implies(rewrite(f.antecedent), rewrite(f.consequent))
        if isinstance(f, (fo.Exists, fo.Forall)):
            cls = type(f)
            return cls(f.variables, rewrite(f.body))
        raise VerificationError(f"cannot translate payload node {f!r}")

    return map_payloads(body, rewrite)


def translate_env_spec(spec: LTLFOSentence, composition: Composition,
                       observer: str = "recipient") -> LTLFormula:
    """Both translations in the paper's (mandatory) order.

    First move-relativization (``X -> X_alpha``, ``U -> U_alpha`` with
    ``alpha = move_ENV``), then the observer rewrite -- the paper's
    recipient translation (whose inserted ``X`` operators must remain
    plain), or the library's source-observed extension
    (:func:`source_translate`).
    """
    if observer not in ("recipient", "source"):
        raise VerificationError(
            f"observer must be 'recipient' or 'source', got {observer!r}"
        )
    alpha = fo.Atom(move_name(ENVIRONMENT_NAME), ())
    relativized = relativize(spec.body, alpha)
    if observer == "source":
        return source_translate(relativized, composition)
    return observer_translate(relativized, composition)


# -- pair-snapshot product ------------------------------------------------------


class PairCache:
    """Wraps a :class:`TransitionCache`, tracking the previous snapshot.

    States are ``(previous, current)`` pairs; ``prev.R`` atoms of
    translated payloads read the previous snapshot's view (empty relations
    before the first step).
    """

    def __init__(self, inner: TransitionCache) -> None:
        self.inner = inner
        self.budget = inner.budget

    def initial(self) -> tuple:
        return tuple((None, s) for s in self.inner.initial())

    def successors_of(self, pair) -> tuple:
        _prev, cur = pair
        return tuple((cur, nxt) for nxt in self.inner.successors_of(cur))

    @property
    def states_expanded(self) -> int:
        return self.inner.states_expanded


class PairEvaluator:
    """AP valuation over (previous, current) snapshot pairs."""

    def __init__(self, composition: Composition,
                 domain: Sequence, aps: frozenset) -> None:
        self.composition = composition
        self.domain = tuple(domain)
        self.aps = aps
        self._view_cache: dict[GlobalState, Instance] = {}
        self._letter_cache: dict[tuple, frozenset] = {}

    def _view(self, state: GlobalState) -> Instance:
        view = self._view_cache.get(state)
        if view is None:
            view = snapshot_view(state, self.composition)
            self._view_cache[state] = view
        return view

    def _pair_view(self, prev: GlobalState | None,
                   cur: GlobalState) -> Instance:
        view = self._view(cur)
        if prev is not None:
            prev_view = self._view(prev)
            marked = Instance({
                PREV_MARK + name: prev_view[name]
                for name in prev_view.relations()
            })
            view = view.merged(marked)
        return view

    def letter(self, pair) -> frozenset:
        cached = self._letter_cache.get(pair)
        if cached is not None:
            return cached
        prev, cur = pair
        true_aps = set()
        pair_view: Instance | None = None
        for ap in self.aps:
            if isinstance(ap, OccursAtom):
                if ap.value in cur.active_domain():
                    true_aps.add(ap)
                continue
            if pair_view is None:
                pair_view = self._pair_view(prev, cur)
            if evaluate(ap, pair_view, self.domain):
                true_aps.add(ap)
        letter = frozenset(true_aps)
        self._letter_cache[pair] = letter
        return letter


class PairProduct:
    """Product of the pair-state system with an NBA (duck-typed like
    :class:`~repro.verifier.product.ProductSystem`)."""

    def __init__(self, cache: PairCache, nba: BuchiAutomaton,
                 evaluator: PairEvaluator) -> None:
        self.cache = cache
        self.nba = nba
        self.evaluator = evaluator

    def initial_nodes(self) -> list:
        return [
            (pair, q)
            for pair in self.cache.initial()
            for q in self.nba.initial
        ]

    def successors(self, node) -> Iterator:
        pair, q = node
        letter = self.evaluator.letter(pair)
        targets = [
            e.dst for e in self.nba.edges_from(q)
            if e.guard.satisfied(letter)
        ]
        if not targets:
            return
        for nxt in self.cache.successors_of(pair):
            for dst in targets:
                yield (nxt, dst)

    def is_accepting(self, node) -> bool:
        return node[1] in self.nba.accepting


# -- the modular verifier -----------------------------------------------------


def verify_modular(composition: Composition,
                   prop: LTLFOSentence | str,
                   env_spec: LTLFOSentence | str,
                   databases: Mapping[str, Instance],
                   semantics: ChannelSemantics = DECIDABLE_DEFAULT,
                   domain: VerificationDomain | None = None,
                   allow_nonstrict: bool = False,
                   check_input_bounded: bool = True,
                   budget: SearchBudget | None = None,
                   env_max_nested_rows: int = 1,
                   env_one_action_per_move: bool = True,
                   env_value_domain=None,
                   valuation_candidates: Mapping[str, Sequence] | None = None,
                   observer: str = "recipient",
                   ) -> VerificationResult:
    """Decide ``C |=_psi phi`` for an open composition (Theorem 5.4).

    ``env_spec`` must be *strictly* input-bounded (no closure variables);
    with ``allow_nonstrict=True``, a non-strict spec is expanded into the
    finite conjunction of its instantiations over the verification domain
    -- sound and complete *for that domain*, consistent with Theorem 5.5's
    undecidability of the general non-strict problem.
    """
    if composition.is_closed:
        raise VerificationError(
            "modular verification applies to open compositions"
        )
    sentence = _as_sentence(prop, composition)
    spec = (parse_env_spec(env_spec, composition)
            if isinstance(env_spec, str) else env_spec)

    if check_input_bounded:
        from ..errors import InputBoundednessError
        from ..ib.checker import check_composition
        violations = check_composition(composition)
        violations += check_sentence(sentence, composition.schema)
        if violations:
            lines = "\n".join(str(v) for v in violations)
            raise InputBoundednessError(
                f"not input-bounded:\n{lines}", tuple(violations)
            )

    # Theorem 5.4 restricts environment *specs* to flat environment
    # channels; nested environment channels may exist but may not be
    # mentioned by the spec.
    nested_env_names = {
        f"{ENVIRONMENT_NAME}.{chan.name}"
        for chan in composition.environment_channels() if chan.nested
    }
    offending = sorted(spec.relations() & nested_env_names)
    if offending:
        raise VerificationError(
            f"environment spec mentions nested channels {offending}; "
            "Theorem 5.4 restricts specs to flat environment channels"
        )

    if domain is None:
        domain = verification_domain(composition, [sentence], databases)
        extra = tuple(sorted(
            set(spec.constants()) - set(domain.constants), key=str
        ))
        if extra:
            domain = VerificationDomain(
                domain.constants + extra, domain.fresh
            )

    # translate the environment spec
    if spec.is_strict:
        premise = translate_env_spec(spec, composition, observer)
    else:
        if not allow_nonstrict:
            raise VerificationError(
                "the environment spec is not strictly input-bounded "
                "(Theorem 5.5: the non-strict problem is undecidable); "
                "pass allow_nonstrict=True for the bounded-domain "
                "expansion"
            )
        conjuncts = []
        for val in canonical_valuations(spec.variables, domain):
            inst_body = spec.instantiate(val)
            translated = translate_env_spec(
                LTLFOSentence((), inst_body), composition, observer
            )
            occurs = [
                lfinally(latom(OccursAtom(v)))
                for v in set(val.values()) if v not in domain.constants
            ]
            # Dom(rho)-restricted universal premise: valuations whose
            # fresh values never occur impose nothing
            from ..ltl.formulas import limplies
            conjuncts.append(limplies(land(*occurs), translated)
                             if occurs else translated)
        premise = land(*conjuncts)

    stats = VerifierStats()
    inner_cache = TransitionCache(
        composition, databases, domain.values, semantics,
        include_environment=True, budget=budget,
        env_max_nested_rows=env_max_nested_rows,
        env_one_action_per_move=env_one_action_per_move,
        env_value_domain=env_value_domain,
    )
    cache = PairCache(inner_cache)

    counterexample: Counterexample | None = None
    text = f"{sentence}  under env spec  {spec}"
    valuations = canonical_valuations(sentence.variables, domain)
    if valuation_candidates:
        valuations = [
            v for v in valuations
            if all(
                var.name not in valuation_candidates
                or v[var] in valuation_candidates[var.name]
                for var in sentence.variables
            )
        ]
    with Stopwatch(stats):
        for valuation in valuations:
            stats.valuations_checked += 1
            negated = lnot(sentence.instantiate(valuation))
            occurs = [
                lfinally(latom(OccursAtom(v)))
                for v in set(valuation.values())
                if v not in domain.constants
            ]
            nba = ltl_to_buchi(land(premise, negated, *occurs))
            stats.nba_states_total += nba.num_states()
            evaluator = PairEvaluator(composition, domain.values, nba.aps)
            product = PairProduct(cache, nba, evaluator)
            lasso_nodes, search_stats = find_accepting_lasso(product)
            stats.merge_search(search_stats.blue_visited,
                               search_stats.red_visited)
            if lasso_nodes is not None:
                prefix = tuple(n[0][1] for n in lasso_nodes.prefix)
                cycle = tuple(n[0][1] for n in lasso_nodes.cycle)
                counterexample = Counterexample(
                    valuation={
                        var.name: value
                        for var, value in valuation.items()
                    },
                    lasso=Lasso(prefix, cycle),
                    property_text=text,
                )
                break
        stats.system_states = cache.states_expanded

    return VerificationResult(
        satisfied=counterexample is None,
        property_text=text,
        counterexample=counterexample,
        stats=stats,
        domain_description=domain.describe(),
        semantics_description=semantics.describe(),
    )
