"""Shard fragments and their merge: one sweep split across machines.

The shard plane of the distributed sweep
(:mod:`repro.verifier.parallel`): ``repro verify --shard i/N`` runs the
i-th residue class of the valuation grid (``order % N == i``) and
writes a JSON *fragment* -- verdict, decisive order, per-task stats,
counterexample, and a full ``repro.metrics/1`` registry snapshot.
``repro merge-shards`` reads all N fragments and reassembles the exact
global result.

The merge is deterministic and provably equal to the unsharded sweep:

* **Verdict.**  A property is violated iff any shard found a
  violation; the decisive task is the one with the *lowest global
  order* across fragments -- the same lowest-order-wins rule the
  in-process scheduler applies, so the merged decisive valuation and
  lasso are bit-for-bit the unsharded ones.
* **Headline stats.**  Each fragment ships its per-task rows with
  global order numbers.  The merge recomputes ``valuations_checked`` /
  ``product_nodes_visited`` / ``nba_states_total`` from the union of
  rows at or before the *global* decisive order.  Every such row exists
  and is uncancelled in exactly one fragment (a shard only cancels
  orders past its own decisive order, which is >= the global one), so
  the recount equals the sequential sweep's.
* **Metrics.**  Registry snapshots merge by kind: counters and phase
  accumulators add, gauges take the maximum, histograms add bucket-wise
  (:func:`merge_metrics_snapshots`).  Wall time is the max across
  shards (they run concurrently); compute seconds add.
"""

from __future__ import annotations

import base64
import hashlib
import pickle
from typing import Mapping, Sequence

from ..obs import ledger
from ..obs.metrics import COMPAT_SCHEMAS as METRICS_COMPAT
from ..obs.metrics import SCHEMA as METRICS_SCHEMA
from ..obs.metrics import REGISTRY, merge_numeric
from ..spec.composition import Composition
from .result import Counterexample, VerificationResult, VerifierStats

#: Version tag stamped on every shard fragment.
SHARD_SCHEMA = "repro.shard/1"

#: Version tag stamped on the merged document.
MERGED_SCHEMA = "repro.shard-merged/1"

_UNDECIDED = 2 ** 62


def spec_sha(composition: Composition) -> str | None:
    """A content hash of the composition's canonical ``.dws`` emission.

    Fragments stamp this hash so :func:`merge_fragments` can reject a
    merge of shards that ran *different* specs -- mixing fragments of
    two compositions that happen to declare the same properties would
    silently produce a meaningless global verdict.  ``None`` when the
    composition cannot be emitted (values the surface syntax cannot
    represent); such fragments skip the check.
    """
    from ..spec.dsl import dump_composition

    try:
        text = dump_composition(composition)
    except Exception:
        return None
    return hashlib.sha256(text.encode()).hexdigest()


def shard_fragment(results: Sequence[VerificationResult],
                   shard: tuple[int, int],
                   composition: Composition | None = None) -> dict:
    """The JSON-able fragment one shard writes for its sweep results.

    The counterexample (if any) travels twice: pre-rendered text for
    human consumption at merge time (rendering needs the composition,
    which the merging machine may not have loaded), and a base64 pickle
    so :func:`result_from_merged` can reconstruct the exact
    :class:`Counterexample` object for differential comparison.
    """
    index, count = shard
    properties = []
    for result in results:
        entry = {
            "property": result.property_text,
            "verdict": result.verdict,
            "satisfied": result.satisfied,
            "decisive_order": result.stats.decisive_order,
            "domain": result.domain_description,
            "semantics": result.semantics_description,
            "stats": result.stats.to_dict(),
            "counterexample": None,
        }
        if result.counterexample is not None:
            cex = result.counterexample
            entry["counterexample"] = {
                "pickle": base64.b64encode(
                    pickle.dumps(cex, protocol=pickle.HIGHEST_PROTOCOL)
                ).decode("ascii"),
                "text": (cex.describe(composition)
                         if composition is not None
                         else f"counterexample to: {cex.property_text}"),
            }
        properties.append(entry)
    return {
        "schema": SHARD_SCHEMA,
        "shard": {"index": index, "count": count},
        "run_id": ledger.current_run_id(),
        "spec_sha": (spec_sha(composition)
                     if composition is not None else None),
        "metrics": REGISTRY.snapshot(),
        "properties": properties,
    }


def merge_metrics_snapshots(snapshots: Sequence[Mapping]) -> dict:
    """Combine ``repro.metrics/1`` snapshots without touching a registry.

    Counters and phases add, gauges take the max (high-water marks),
    histograms add bucket-wise when boundaries agree (and keep the
    first shard's data otherwise -- mismatched boundaries cannot be
    combined losslessly).
    """
    counters: dict = {}
    gauges: dict = {}
    histograms: dict = {}
    phase_seconds: dict = {}
    phase_counts: dict = {}
    for snap in snapshots:
        if snap.get("schema") not in METRICS_COMPAT:
            raise ValueError(
                f"cannot merge metrics snapshot with schema "
                f"{snap.get('schema')!r}; expected one of "
                f"{sorted(METRICS_COMPAT)}"
            )
        merge_numeric(counters, snap.get("counters", {}))
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = max(gauges.get(name, value), value)
        for name, hist in snap.get("histograms", {}).items():
            seen = histograms.get(name)
            if seen is None:
                histograms[name] = {
                    "boundaries": list(hist["boundaries"]),
                    "counts": list(hist["counts"]),
                    "sum": hist["sum"],
                    "count": hist["count"],
                }
            elif seen["boundaries"] == list(hist["boundaries"]):
                seen["counts"] = [
                    a + b for a, b in zip(seen["counts"], hist["counts"])
                ]
                seen["sum"] += hist["sum"]
                seen["count"] += hist["count"]
        for name, entry in snap.get("phases", {}).items():
            merge_numeric(phase_seconds, {name: entry["seconds"]})
            merge_numeric(phase_counts, {name: entry["count"]})
    return {
        "schema": METRICS_SCHEMA,
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
        "phases": {
            name: {"seconds": phase_seconds[name],
                   "count": phase_counts.get(name, 0)}
            for name in sorted(phase_seconds)
        },
    }


def _validate_fragments(fragments: Sequence[Mapping]) -> int:
    if not fragments:
        raise ValueError("no shard fragments to merge")
    for frag in fragments:
        if frag.get("schema") != SHARD_SCHEMA:
            raise ValueError(
                f"fragment schema {frag.get('schema')!r} is not "
                f"{SHARD_SCHEMA!r}"
            )
    shas = {frag.get("spec_sha") for frag in fragments} - {None}
    if len(shas) > 1:
        raise ValueError(
            "fragments come from different specs (spec hashes "
            f"{sorted(s[:12] for s in shas)}); every shard must run "
            "the same composition"
        )
    counts = {frag["shard"]["count"] for frag in fragments}
    if len(counts) != 1:
        raise ValueError(f"fragments disagree on shard count: {counts}")
    count = counts.pop()
    indices = sorted(frag["shard"]["index"] for frag in fragments)
    duplicates = sorted({i for i in indices if indices.count(i) > 1})
    if duplicates:
        raise ValueError(
            f"overlapping shard fragments: index(es) {duplicates} "
            "appear more than once"
        )
    if indices != list(range(count)):
        raise ValueError(
            f"need every shard 0..{count - 1} exactly once, got {indices}"
        )
    texts = {
        tuple(p["property"] for p in frag["properties"])
        for frag in fragments
    }
    if len(texts) != 1:
        raise ValueError("fragments disagree on the property list")
    return count


def _merge_property(entries: Sequence[Mapping]) -> dict:
    """Merge one property's per-shard entries into the global result."""
    violated = [e for e in entries if not e["satisfied"]]
    decisive = min(
        violated, key=lambda e: e["decisive_order"], default=None
    )
    cutoff = (decisive["decisive_order"] if decisive is not None
              else _UNDECIDED)
    valuations = nodes = nba = tasks_run = tasks_cancelled = 0
    task_seconds = cancelled_seconds = 0.0
    system_states = 0
    wall = 0.0
    workers = 1
    for entry in entries:
        stats = entry["stats"]
        wall = max(wall, stats["wall_seconds"])
        workers = max(workers, stats["workers"])
        system_states = max(system_states, stats["system_states"])
        for row in stats["per_task"]:
            counted = not row["cancelled"] and row["order"] <= cutoff
            if counted:
                valuations += 1
                nodes += row["product_nodes"]
                nba += row["nba_states"]
                tasks_run += 1
                task_seconds += row["wall_seconds"]
            else:
                tasks_cancelled += 1
                cancelled_seconds += row["wall_seconds"]
        if not stats["per_task"]:
            # a shard that ran its slice sequentially (workers=1 falls
            # back in-process) has headline numbers but no rows; they
            # are already cutoff-filtered by its own early stop
            valuations += stats["valuations_checked"]
            nodes += stats["product_nodes_visited"]
            nba += stats["nba_states_total"]
    merged = {
        "property": entries[0]["property"],
        "verdict": "VIOLATED" if decisive is not None else "SATISFIED",
        "satisfied": decisive is None,
        "decisive_order": (decisive["decisive_order"]
                           if decisive is not None else None),
        "decisive_shard": (decisive["_shard_index"]
                           if decisive is not None else None),
        "domain": entries[0]["domain"],
        "semantics": entries[0]["semantics"],
        "counterexample": (decisive["counterexample"]
                           if decisive is not None else None),
        "stats": {
            "valuations_checked": valuations,
            "product_nodes_visited": nodes,
            "nba_states_total": nba,
            "system_states": system_states,
            "wall_seconds": wall,
            "workers": workers,
            "tasks_run": tasks_run,
            "tasks_cancelled": tasks_cancelled,
            "task_seconds": task_seconds,
            "cancelled_task_seconds": cancelled_seconds,
        },
    }
    return merged


def merge_fragments(fragments: Sequence[Mapping]) -> dict:
    """Reassemble the global verdict + stats from all N shard fragments.

    Fragments may be passed in any order; every shard ``0..N-1`` must
    appear exactly once and all must list the same properties.
    """
    count = _validate_fragments(fragments)
    ordered = sorted(fragments, key=lambda f: f["shard"]["index"])
    n_properties = len(ordered[0]["properties"])
    properties = []
    for p_idx in range(n_properties):
        entries = []
        for frag in ordered:
            entry = dict(frag["properties"][p_idx])
            entry["_shard_index"] = frag["shard"]["index"]
            entries.append(entry)
        properties.append(_merge_property(entries))
    return {
        "schema": MERGED_SCHEMA,
        "shards": count,
        "run_ids": sorted(
            {frag.get("run_id") for frag in ordered} - {None}
        ),
        "metrics": merge_metrics_snapshots(
            [frag["metrics"] for frag in ordered]
        ),
        "properties": properties,
    }


def result_from_merged(entry: Mapping) -> VerificationResult:
    """Reconstruct a :class:`VerificationResult` from one merged entry.

    The counterexample is unpickled from the decisive shard's fragment,
    so differential tests can compare the merged lasso bit-for-bit
    against an unsharded run.
    """
    stats_in = entry["stats"]
    stats = VerifierStats(
        valuations_checked=stats_in["valuations_checked"],
        system_states=stats_in["system_states"],
        product_nodes_visited=stats_in["product_nodes_visited"],
        nba_states_total=stats_in["nba_states_total"],
        wall_seconds=stats_in["wall_seconds"],
        workers=stats_in["workers"],
        decisive_order=entry["decisive_order"],
        tasks_run=stats_in["tasks_run"],
        tasks_cancelled=stats_in["tasks_cancelled"],
        task_seconds=stats_in["task_seconds"],
        cancelled_task_seconds=stats_in["cancelled_task_seconds"],
    )
    counterexample: Counterexample | None = None
    if entry["counterexample"] is not None:
        counterexample = pickle.loads(
            base64.b64decode(entry["counterexample"]["pickle"])
        )
    return VerificationResult(
        satisfied=entry["satisfied"],
        property_text=entry["property"],
        counterexample=counterexample,
        stats=stats,
        domain_description=entry["domain"],
        semantics_description=entry["semantics"],
    )
