"""Atomic propositions evaluated on run snapshots.

During model checking, the Büchi automaton for (the negation of) an
instantiated LTL-FO property reads letters that are valuations of its
atomic propositions.  Two kinds of APs arise:

* closed FO sentences (the instantiated maximal FO subformulas), evaluated
  over the snapshot view per Section 3's semantics; and
* :class:`OccursAtom` markers used to implement the ``Dom(rho)``
  restriction of the universal closure: the paper quantifies closure
  variables over the *active domain of the run*, so a counterexample
  valuation may only use values that actually occur in the run.  For each
  fresh value ``v`` in the valuation, the verifier conjoins
  ``F occurs(v)`` to the negated property; ``occurs(v)`` holds at a
  snapshot iff ``v`` appears in some relation or queued message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from ..fo.evaluator import evaluate
from ..fo.formulas import Formula
from ..fo.instance import Instance
from ..obs import counter
from ..fo.terms import Value
from ..spec.composition import Composition
from ..runtime.state import GlobalState, snapshot_view


@dataclass(frozen=True, slots=True)
class OccursAtom:
    """AP: the value occurs in the current snapshot (relations or queues)."""

    value: Value

    def __str__(self) -> str:
        return f"occurs({self.value!r})"


class SnapshotEvaluator:
    """Evaluates AP valuations over snapshots, with caching.

    The snapshot *view* (queue readings, move flags, ...) is cached per
    state and shared across property valuations; the letter (the set of
    true APs) is cached per (state) for this evaluator's fixed AP set.
    """

    def __init__(self, composition: Composition, domain: Iterable[Value],
                 aps: frozenset) -> None:
        self.composition = composition
        self.domain = tuple(domain)
        self.aps = aps
        self._view_cache: dict[GlobalState, Instance] = {}
        self._letter_cache: dict[GlobalState, frozenset] = {}
        # projection cache: the truth of an FO sentence depends only on
        # the extensions of the relations it mentions, which repeat
        # heavily across snapshots
        from ..fo.formulas import Formula, relations
        self._relevant: dict = {
            ap: tuple(sorted(relations(ap)))
            for ap in aps if not isinstance(ap, OccursAtom)
        }
        self._truth_cache: dict = {}

    def view(self, state: GlobalState) -> Instance:
        cached = self._view_cache.get(state)
        if cached is None:
            cached = snapshot_view(state, self.composition)
            self._view_cache[state] = cached
        return cached

    def letter(self, state: GlobalState) -> frozenset:
        cached = self._letter_cache.get(state)
        if cached is not None:
            return cached
        true_aps: set[Hashable] = set()
        occurs_needed = [
            ap for ap in self.aps if isinstance(ap, OccursAtom)
        ]
        snapshot_domain: frozenset[Value] | None = None
        if occurs_needed:
            snapshot_domain = state.active_domain()
        view = None
        for ap in self.aps:
            if isinstance(ap, OccursAtom):
                assert snapshot_domain is not None
                if ap.value in snapshot_domain:
                    true_aps.add(ap)
            else:
                if view is None:
                    view = self.view(state)
                key = (ap, tuple(
                    view[rel] for rel in self._relevant[ap]
                ))
                truth = self._truth_cache.get(key)
                if truth is None:
                    truth = evaluate(ap, view, self.domain)
                    self._truth_cache[key] = truth
                if truth:
                    true_aps.add(ap)
        letter = frozenset(true_aps)
        self._letter_cache[state] = letter
        return letter


class SharedSnapshotContext:
    """Per-exploration caches keyed on interned state ids.

    Owned by a :class:`~repro.verifier.graph.SharedExploration` and
    shared by every valuation's :class:`InternedSnapshotEvaluator`:
    snapshot views and active domains are computed once per state for
    the whole sweep (the seed engine recomputes them once per state
    *per valuation*), FO truths are shared across valuations whose APs
    coincide (occurs-atoms and closure-variable-free subformulas), and
    whole letters are memoized per (AP set, state).
    """

    def __init__(self, composition: Composition, interner) -> None:
        self.composition = composition
        self.interner = interner
        self._views: dict[int, Instance] = {}
        self._domains: dict[int, frozenset] = {}
        self._truths: dict = {}
        self._letters: dict = {}

    def view(self, sid: int) -> Instance:
        cached = self._views.get(sid)
        if cached is None:
            cached = snapshot_view(self.interner.state_of(sid),
                                   self.composition)
            self._views[sid] = cached
        return cached

    def active_domain(self, sid: int) -> frozenset:
        cached = self._domains.get(sid)
        if cached is None:
            cached = self.interner.state_of(sid).active_domain()
            self._domains[sid] = cached
        return cached


class InternedSnapshotEvaluator:
    """Letter evaluation over interned state ids, with shared caches.

    The interned twin of :class:`SnapshotEvaluator`: same AP semantics,
    but ``letter`` takes a dense state id and every cache outlives this
    evaluator (they belong to the exploration's
    :class:`SharedSnapshotContext`), so valuations 2..N of a sweep
    mostly re-read memoized truths instead of re-evaluating formulas.
    """

    def __init__(self, composition: Composition, domain: Iterable[Value],
                 aps: frozenset, shared: SharedSnapshotContext) -> None:
        self.composition = composition
        self.domain = tuple(domain)
        self.aps = aps
        self.shared = shared
        from ..fo.formulas import relations
        self._relevant: dict = {
            ap: tuple(sorted(relations(ap)))
            for ap in aps if not isinstance(ap, OccursAtom)
        }
        self._memo_hits = counter("atoms.letters_memoized")

    def letter(self, sid: int) -> frozenset:
        shared = self.shared
        key = (self.aps, sid)
        cached = shared._letters.get(key)
        if cached is not None:
            self._memo_hits.inc()
            return cached
        true_aps: set[Hashable] = set()
        view = None
        for ap in self.aps:
            if isinstance(ap, OccursAtom):
                if ap.value in shared.active_domain(sid):
                    true_aps.add(ap)
            else:
                if view is None:
                    view = shared.view(sid)
                truth_key = (ap, tuple(
                    view[rel] for rel in self._relevant[ap]
                ))
                truth = shared._truths.get(truth_key)
                if truth is None:
                    truth = evaluate(ap, view, self.domain)
                    shared._truths[truth_key] = truth
                if truth:
                    true_aps.add(ap)
        letter = frozenset(true_aps)
        shared._letters[key] = letter
        return letter


def evaluate_sentence_on_snapshot(formula: Formula, state: GlobalState,
                                  composition: Composition,
                                  domain: Iterable[Value]) -> bool:
    """Convenience: truth of a closed FO sentence at one snapshot."""
    return evaluate(formula, snapshot_view(state, composition),
                    tuple(domain))
