"""Conversation protocols (Section 4): data-agnostic and data-aware."""

from .base import (
    AgnosticProtocol, DataAwareProtocol, Observer, guards_from_formula,
    protocol_automaton,
)
from .verify import CallbackEvaluator, trace_of, verify_agnostic, verify_aware

__all__ = [
    "AgnosticProtocol", "CallbackEvaluator", "DataAwareProtocol",
    "Observer", "guards_from_formula", "protocol_automaton", "trace_of",
    "verify_agnostic", "verify_aware",
]
