"""Conversation protocols (Section 4).

*Data-agnostic* protocols observe only the sequence of message names: the
alphabet is a set of channel names, and a snapshot satisfies the
proposition ``q`` iff a message was placed into channel ``q`` by the
transition producing that snapshot (observer-at-recipient) or a send into
``q`` fired (observer-at-source, Theorem 4.3's undecidable flavour).

*Data-aware* protocols (Definition 4.4) attach to each alphabet symbol an
FO formula over the out-queue schema (``C.Qout``), interpreted over the
message last enqueued into each queue; the Büchi automaton's transitions
are guarded by Boolean combinations of the symbols.

Protocols may be given either as a Büchi automaton over the alphabet or as
an LTL formula (strictly less expressive, per [28], but negation-friendly:
automaton-given protocols require Büchi complementation to verify).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Mapping

from ..errors import FormulaError, SpecificationError
from ..fo import formulas as fo
from ..ltl.buchi import BuchiAutomaton, Edge, Guard
from ..ltl.formulas import LTLFormula, atom_payloads, lnot
from ..ltl.complement import complement
from ..ltl.translate import ltl_to_buchi
from ..ltlfo.parser import parse_ltlfo
from ..runtime.state import GlobalState


class Observer(enum.Enum):
    """Where the message observer sits (Section 4)."""

    RECIPIENT = "recipient"   # only actually-enqueued messages observed
    SOURCE = "source"         # all send attempts observed (Theorem 4.3)


def _ltl_over_names(formula_text: str) -> LTLFormula:
    """Parse an LTL formula whose atoms are bare (0-ary) message names.

    The LTL-FO parser is reused; payloads must be propositional atoms,
    which are then collapsed to their names.
    """
    sentence = parse_ltlfo(formula_text, schema=None)
    if sentence.variables:
        raise FormulaError(
            "protocol LTL formulas are propositional over message names; "
            f"found variables {[v.name for v in sentence.variables]}"
        )
    return _propositionalize(sentence.body)


def _payload_to_ltl(payload: fo.Formula) -> LTLFormula:
    """A Boolean FO payload over 0-ary atoms, as an LTL formula over names."""
    from ..ltl import formulas as ltl
    if isinstance(payload, fo.TrueF):
        return ltl.LTRUE
    if isinstance(payload, fo.FalseF):
        return ltl.LFALSE
    if isinstance(payload, fo.Atom):
        if payload.terms:
            raise FormulaError(
                f"protocol atoms must be bare message names, got {payload}"
            )
        return ltl.latom(payload.rel)
    if isinstance(payload, fo.Not):
        return ltl.lnot(_payload_to_ltl(payload.body))
    if isinstance(payload, fo.And):
        return ltl.land(*[_payload_to_ltl(c) for c in payload.children])
    if isinstance(payload, fo.Or):
        return ltl.lor(*[_payload_to_ltl(c) for c in payload.children])
    if isinstance(payload, fo.Implies):
        return ltl.limplies(_payload_to_ltl(payload.antecedent),
                            _payload_to_ltl(payload.consequent))
    raise FormulaError(
        f"protocol atoms must be Boolean over message names, got {payload}"
    )


def _propositionalize(formula: LTLFormula) -> LTLFormula:
    """Replace FO payloads by LTL structure over bare message names."""
    from ..ltl.formulas import (
        LAnd, LAtom, LFalse, LNext, LNot, LOr, LRelease, LTrue, LUntil,
    )
    if isinstance(formula, (LTrue, LFalse)):
        return formula
    if isinstance(formula, LAtom):
        return _payload_to_ltl(formula.ap)
    if isinstance(formula, LNot):
        return LNot(_propositionalize(formula.body))
    if isinstance(formula, LNext):
        return LNext(_propositionalize(formula.body))
    if isinstance(formula, (LAnd, LOr, LUntil, LRelease)):
        cls = type(formula)
        return cls(_propositionalize(formula.left),
                   _propositionalize(formula.right))
    raise FormulaError(f"not an LTL formula: {formula!r}")


@dataclass(frozen=True)
class AgnosticProtocol:
    """A data-agnostic conversation protocol ``(Sigma, B)``.

    Exactly one of ``automaton``/``ltl`` is set.  ``ltl`` atoms and the
    automaton's APs are channel names.
    """

    alphabet: frozenset[str]
    automaton: BuchiAutomaton | None = None
    ltl: LTLFormula | None = None
    observer: Observer = Observer.RECIPIENT

    def __post_init__(self) -> None:
        if (self.automaton is None) == (self.ltl is None):
            raise SpecificationError(
                "provide exactly one of automaton= or ltl="
            )
        used = (
            self.automaton.aps if self.automaton is not None
            else atom_payloads(self.ltl)
        )
        extra = set(used) - set(self.alphabet)
        if extra:
            raise SpecificationError(
                f"protocol mentions names outside its alphabet: "
                f"{sorted(extra)}"
            )

    @classmethod
    def from_ltl(cls, formula: str | LTLFormula,
                 alphabet: frozenset[str] | None = None,
                 observer: Observer = Observer.RECIPIENT
                 ) -> "AgnosticProtocol":
        ltl = _ltl_over_names(formula) if isinstance(formula, str) else formula
        names = frozenset(alphabet or atom_payloads(ltl))
        return cls(alphabet=names, ltl=ltl, observer=observer)

    @classmethod
    def from_buchi(cls, automaton: BuchiAutomaton,
                   observer: Observer = Observer.RECIPIENT
                   ) -> "AgnosticProtocol":
        return cls(alphabet=frozenset(automaton.aps), automaton=automaton,
                   observer=observer)

    def violation_automaton(self) -> BuchiAutomaton:
        """An NBA accepting exactly the traces that *violate* the protocol."""
        if self.ltl is not None:
            return ltl_to_buchi(lnot(self.ltl))
        assert self.automaton is not None
        return complement(self.automaton)

    def letter_of(self, state: GlobalState) -> frozenset:
        events = (
            state.enqueued if self.observer is Observer.RECIPIENT
            else state.sent
        )
        return frozenset(events & self.alphabet)


@dataclass(frozen=True)
class DataAwareProtocol:
    """A data-aware protocol ``(Sigma, B, {phi_sigma})`` (Definition 4.4).

    ``symbols`` maps each alphabet symbol to an FO formula over the
    composition's out-queue schema.  Formulas may share free variables;
    the protocol holds iff it holds for every valuation of those variables
    over the run's active domain.  Only observer-at-recipient semantics is
    supported (Theorem 4.3 shows the source flavour undecidable; out-queue
    atoms read the message last enqueued).
    """

    symbols: Mapping[str, fo.Formula]
    automaton: BuchiAutomaton | None = None
    ltl: LTLFormula | None = None

    def __post_init__(self) -> None:
        if (self.automaton is None) == (self.ltl is None):
            raise SpecificationError(
                "provide exactly one of automaton= or ltl="
            )
        used = (
            self.automaton.aps if self.automaton is not None
            else atom_payloads(self.ltl)
        )
        extra = set(used) - set(self.symbols)
        if extra:
            raise SpecificationError(
                f"protocol mentions undeclared symbols: {sorted(extra)}"
            )

    def free_variables(self) -> tuple:
        out: set = set()
        for formula in self.symbols.values():
            out |= fo.free_vars(formula)
        return tuple(sorted(out, key=lambda v: v.name))

    def constants(self) -> frozenset:
        out: set = set()
        for formula in self.symbols.values():
            out |= fo.constants(formula)
        return frozenset(out)

    def violation_automaton(self) -> BuchiAutomaton:
        if self.ltl is not None:
            return ltl_to_buchi(lnot(self.ltl))
        assert self.automaton is not None
        return complement(self.automaton)


def guards_from_formula(formula: fo.Formula,
                        symbols: frozenset[str]) -> list[Guard]:
    """Expand a Boolean formula over propositional symbols into guards.

    Definition 4.4 guards automaton transitions with Boolean formulas over
    the protocol symbols; our :class:`Guard` representation is a literal
    conjunction, so general formulas are expanded by truth-table over the
    symbols they mention.
    """
    mentioned = sorted(fo.relations(formula) & symbols)
    guards: list[Guard] = []
    for bits in itertools.product((False, True), repeat=len(mentioned)):
        assignment = dict(zip(mentioned, bits))
        from ..fo.instance import Instance
        inst = Instance({
            name: [()] for name, bit in assignment.items() if bit
        })
        from ..fo.evaluator import evaluate
        if evaluate(formula, inst, ()):
            guards.append(Guard(
                pos=frozenset(n for n, b in assignment.items() if b),
                neg=frozenset(n for n, b in assignment.items() if not b),
            ))
    return guards


def protocol_automaton(states, initial, transitions, accepting,
                       alphabet: frozenset[str]) -> BuchiAutomaton:
    """Build a protocol Büchi automaton from guarded transitions.

    ``transitions`` is a list of ``(src, guard, dst)`` where ``guard`` is a
    :class:`Guard`, a Boolean formula string over the alphabet symbols, or
    an :class:`~repro.fo.formulas.Formula`.
    """
    from ..fo.parser import parse_fo
    edges: list[Edge] = []
    for src, guard, dst in transitions:
        if isinstance(guard, Guard):
            edges.append(Edge(src, guard, dst))
            continue
        formula = parse_fo(guard) if isinstance(guard, str) else guard
        for g in guards_from_formula(formula, alphabet):
            edges.append(Edge(src, g, dst))
    return BuchiAutomaton(states, initial, edges, accepting, alphabet)
