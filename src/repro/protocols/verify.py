"""Protocol-compliance checking (Theorems 4.2 and 4.5).

A composition satisfies a conversation protocol iff every run's trace is
accepted by the protocol automaton.  Verification searches the product of
the composition's snapshot graph with an automaton for the *complement*
of the protocol language (negated LTL, or rank/DBA complementation for
automaton-given protocols) for an accepting lasso.
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping

from ..errors import VerificationError
from ..fo import formulas as fo
from ..fo.evaluator import evaluate
from ..fo.instance import Instance
from ..ltl.buchi import BuchiAutomaton
from ..ltl.formulas import land, latom, lfinally
from ..ltl.translate import ltl_to_buchi
from ..obs import diff_numeric, phase_counts, phase_seconds
from ..runtime.run import Lasso
from ..runtime.step import rule_cache_delta, rule_cache_info
from ..runtime.state import GlobalState, snapshot_view
from ..spec.channels import ChannelSemantics, DECIDABLE_DEFAULT
from ..spec.composition import Composition
from ..verifier.atoms import OccursAtom
from ..verifier.domain import (
    VerificationDomain, canonical_valuations, verification_domain,
)
from ..verifier.product import ProductSystem, SearchBudget, TransitionCache
from ..verifier.result import (
    Counterexample, Stopwatch, VerificationResult, VerifierStats,
)
from ..verifier.search import find_accepting_lasso
from .base import AgnosticProtocol, DataAwareProtocol, Observer


class CallbackEvaluator:
    """Per-state AP valuation driven by a callback, with caching.

    Duck-type compatible with
    :class:`~repro.verifier.atoms.SnapshotEvaluator` as used by
    :class:`~repro.verifier.product.ProductSystem`.
    """

    def __init__(self, aps: frozenset,
                 truth: Callable[[Hashable, GlobalState], bool]) -> None:
        self.aps = aps
        self._truth = truth
        self._cache: dict[GlobalState, frozenset] = {}

    def letter(self, state: GlobalState) -> frozenset:
        cached = self._cache.get(state)
        if cached is None:
            cached = frozenset(
                ap for ap in self.aps if self._truth(ap, state)
            )
            self._cache[state] = cached
        return cached


def _search(composition: Composition, cache: TransitionCache,
            nba: BuchiAutomaton, evaluator, stats: VerifierStats,
            valuation: Mapping[str, object], text: str
            ) -> Counterexample | None:
    product = ProductSystem(cache, nba, evaluator)
    lasso_nodes, search_stats = find_accepting_lasso(product)
    stats.merge_search(search_stats.blue_visited, search_stats.red_visited)
    stats.nba_states_total += nba.num_states()
    if lasso_nodes is None:
        return None
    return Counterexample(
        valuation=dict(valuation),
        lasso=Lasso(
            tuple(n[0] for n in lasso_nodes.prefix),
            tuple(n[0] for n in lasso_nodes.cycle),
        ),
        property_text=text,
    )


def verify_agnostic(composition: Composition,
                    protocol: AgnosticProtocol,
                    databases: Mapping[str, Instance],
                    semantics: ChannelSemantics = DECIDABLE_DEFAULT,
                    domain: VerificationDomain | None = None,
                    budget: SearchBudget | None = None,
                    transition_cache: TransitionCache | None = None,
                    ) -> VerificationResult:
    """Check compliance with a data-agnostic protocol (Theorem 4.2).

    Observer-at-source protocols are checked with the same product
    machinery (letters become send events).  For a fixed database and
    domain the check is exact; Theorem 4.3's undecidability concerns the
    unrestricted problem.
    """
    unknown = set(protocol.alphabet) - {
        c.name for c in composition.channels
    }
    if unknown:
        raise VerificationError(
            f"protocol alphabet mentions unknown channels {sorted(unknown)}"
        )
    if domain is None:
        domain = verification_domain(composition, [], databases)
    stats = VerifierStats()
    cache = transition_cache or TransitionCache(
        composition, databases, domain.values, semantics, budget=budget,
    )
    text = (f"agnostic protocol over {sorted(protocol.alphabet)} "
            f"({protocol.observer.value})")
    cache_before = rule_cache_info()
    seconds_before = phase_seconds()
    counts_before = phase_counts()
    with Stopwatch(stats):
        stats.valuations_checked = 1
        nba = protocol.violation_automaton()
        evaluator = CallbackEvaluator(
            frozenset(nba.aps),
            lambda ap, state: ap in protocol.letter_of(state),
        )
        counterexample = _search(composition, cache, nba, evaluator,
                                 stats, {}, text)
        stats.system_states = cache.states_expanded
    stats.merge_phases(diff_numeric(phase_seconds(), seconds_before),
                       diff_numeric(phase_counts(), counts_before))
    stats.merge_rule_cache(rule_cache_delta(cache_before))
    return VerificationResult(
        satisfied=counterexample is None,
        property_text=text,
        counterexample=counterexample,
        stats=stats,
        domain_description=domain.describe(),
        semantics_description=semantics.describe(),
    )


def verify_aware(composition: Composition,
                 protocol: DataAwareProtocol,
                 databases: Mapping[str, Instance],
                 semantics: ChannelSemantics = DECIDABLE_DEFAULT,
                 domain: VerificationDomain | None = None,
                 budget: SearchBudget | None = None,
                 transition_cache: TransitionCache | None = None,
                 ) -> VerificationResult:
    """Check compliance with a data-aware protocol (Theorem 4.5).

    The protocol's free variables are universally quantified over the
    run's active domain: each canonical valuation is checked separately,
    with ``F occurs(v)`` constraints forcing fresh valuation values to
    appear in the counterexample run (mirroring the LTL-FO verifier).
    """
    variables = protocol.free_variables()
    if domain is None:
        domain = verification_domain(composition, [], databases)
        if protocol.constants() - set(domain.constants):
            extra = tuple(sorted(
                set(protocol.constants()) - set(domain.constants),
                key=str,
            ))
            domain = VerificationDomain(
                domain.constants + extra, domain.fresh
            )
    stats = VerifierStats()
    cache = transition_cache or TransitionCache(
        composition, databases, domain.values, semantics, budget=budget,
    )
    text = f"data-aware protocol over {sorted(protocol.symbols)}"
    violation = protocol.violation_automaton()

    counterexample: Counterexample | None = None
    cache_before = rule_cache_info()
    seconds_before = phase_seconds()
    counts_before = phase_counts()
    with Stopwatch(stats):
        for valuation in canonical_valuations(variables, domain):
            stats.valuations_checked += 1
            instantiated = {
                name: fo.instantiate(formula, valuation)
                for name, formula in protocol.symbols.items()
            }
            occurs_values = [
                v for v in set(valuation.values())
                if v not in domain.constants
            ]
            nba = violation
            if occurs_values:
                occurs_nba = ltl_to_buchi(land(*[
                    lfinally(latom(OccursAtom(v))) for v in occurs_values
                ]))
                nba = violation.intersection(occurs_nba)

            view_cache: dict[GlobalState, Instance] = {}

            def truth(ap, state, _inst=instantiated, _vc=view_cache):
                if isinstance(ap, OccursAtom):
                    return ap.value in state.active_domain()
                view = _vc.get(state)
                if view is None:
                    view = snapshot_view(state, composition)
                    _vc[state] = view
                return evaluate(_inst[ap], view, domain.values)

            evaluator = CallbackEvaluator(frozenset(nba.aps), truth)
            counterexample = _search(
                composition, cache, nba, evaluator, stats,
                {v.name: val for v, val in valuation.items()}, text,
            )
            if counterexample is not None:
                break
        stats.system_states = cache.states_expanded

    stats.merge_phases(diff_numeric(phase_seconds(), seconds_before),
                       diff_numeric(phase_counts(), counts_before))
    stats.merge_rule_cache(rule_cache_delta(cache_before))

    return VerificationResult(
        satisfied=counterexample is None,
        property_text=text,
        counterexample=counterexample,
        stats=stats,
        domain_description=domain.describe(),
        semantics_description=semantics.describe(),
    )


def trace_of(lasso: Lasso, protocol: AgnosticProtocol
             ) -> tuple[list[frozenset], list[frozenset]]:
    """The protocol-alphabet trace (prefix, cycle) of a lasso run."""
    prefix = [protocol.letter_of(s) for s in lasso.prefix]
    cycle = [protocol.letter_of(s) for s in lasso.cycle]
    return prefix, cycle
