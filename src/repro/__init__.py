"""dataweb-verify: verification of communicating data-driven web services.

A faithful, executable reproduction of *"Verification of Communicating
Data-Driven Web Services"* (Deutsch, Sui, Vianu, Zhou -- PODS 2006): a
sound-and-complete verifier for compositions of database-driven web
service peers that communicate asynchronously over bounded queues.

Quick tour
----------

Build peers with :class:`~repro.spec.PeerBuilder`, wire them into a
:class:`~repro.spec.Composition`, and verify LTL-FO properties::

    from repro import Composition, Instance, PeerBuilder, verify

    sender = (
        PeerBuilder("S")
        .database("items", 1)
        .input("pick", 1)
        .flat_out_queue("msg", 1)
        .input_rule("pick", ["x"], "items(x)")
        .send_rule("msg", ["x"], "pick(x)")
        .build()
    )
    receiver = (
        PeerBuilder("R")
        .state("got", 1)
        .flat_in_queue("msg", 1)
        .insert_rule("got", ["x"], "?msg(x)")
        .build()
    )
    composition = Composition([sender, receiver])
    result = verify(
        composition,
        "forall x: G( R.got(x) -> S.items(x) )",
        {"S": Instance({"items": [("a",)]})},
    )
    assert result.satisfied

Sub-packages
------------

==================  =====================================================
``repro.fo``        first-order logic substrate (terms, schemas,
                    instances, evaluation, parsing)
``repro.ltl``       propositional LTL, Büchi automata, GPVW translation,
                    complementation
``repro.ltlfo``     LTL-FO sentences (Definition 3.1)
``repro.spec``      peers, rules, compositions, channel semantics
``repro.ib``        the input-boundedness checker (Section 3.1)
``repro.runtime``   operational semantics: snapshots, transitions, runs,
                    environments
``repro.verifier``  the decision procedures (Theorems 3.4, 5.4)
``repro.protocols`` conversation protocols (Section 4)
``repro.reductions`` the undecidability frontier, executable
``repro.library``   ready-made compositions (the paper's loan example,
                    e-commerce, travel, synthetic families)
==================  =====================================================
"""

from .errors import (
    FormulaError, InputBoundednessError, ParseError, ReproError,
    SchemaError, SemanticsError, SimulationError, SpecificationError,
    VerificationError,
)
from .fo import Instance, parse_fo
from .ltlfo import parse_ltlfo
from .spec import (
    ChannelSemantics, Composition, DECIDABLE_DEFAULT, PERFECT_BOUNDED,
    PeerBuilder,
)
from .protocols import (
    AgnosticProtocol, DataAwareProtocol, Observer, verify_agnostic,
    verify_aware,
)
from .verifier import (
    VerificationResult, verification_domain, verify, verify_all,
    verify_modular,
)
from .runtime import reachable_states, simulate

__version__ = "1.0.0"

__all__ = [
    "AgnosticProtocol", "ChannelSemantics", "Composition",
    "DECIDABLE_DEFAULT", "DataAwareProtocol", "FormulaError",
    "InputBoundednessError", "Instance", "Observer", "PERFECT_BOUNDED",
    "ParseError", "PeerBuilder", "ReproError", "SchemaError",
    "SemanticsError", "SimulationError", "SpecificationError",
    "VerificationError", "VerificationResult", "__version__", "parse_fo",
    "parse_ltlfo", "reachable_states", "simulate", "verification_domain",
    "verify", "verify_agnostic", "verify_all", "verify_aware",
    "verify_modular",
]
