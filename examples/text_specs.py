#!/usr/bin/env python3
"""Loading compositions from textual specifications (.dws files).

The paper's introduction motivates verification by high-level web-service
specification tools: the specification itself is the verified artifact.
This example loads the sealed-bid auction composition from
``examples/specs/auction.dws`` and verifies it:

* sold verdicts only for lots meeting the house's reserve (holds);
* the seller's recorded outcome matches the house's verdict (holds);
* a seeded edit of the spec text (the house ignoring the reserve) is
  caught by the verifier.

Run:  python examples/text_specs.py
"""

from pathlib import Path

from repro.ib import check_composition, summarize
from repro.spec import load
from repro.verifier import verify

SPEC_PATH = Path(__file__).parent / "specs" / "auction.dws"


def main() -> None:
    text = SPEC_PATH.read_text()
    composition, databases = load(text)
    print("loaded:", composition)
    print("input-boundedness:",
          summarize(check_composition(composition)))

    print("\n--- sold only at the bid actually placed meeting the reserve ---")
    policy = (
        'forall x, b: G( House.!verdict(x, b, "sold") '
        "-> House.reserve(x, b) )"
    )
    result = verify(composition, policy, databases)
    print(result.summary())

    print("\n--- seller's record carries a definite result ---")
    result = verify(
        composition,
        'forall x, b, v: G( Seller.outcome(x, b, v) '
        '-> v = "sold" | v = "passed" )',
        databases,
    )
    print(result.summary())

    print("\n--- seeded spec bug: the house ignores its reserve ---")
    import re
    buggy_text = re.sub(
        r"send verdict\(x, b, v\) <-.*?\)\s*\)",
        'send verdict(x, b, v) <- ?sealed(x, b) & v = "sold"',
        text, flags=re.DOTALL,
    )
    # a low-budget bidder below the reserve makes the bug observable
    buggy_text = buggy_text.replace('budget: ("high",)',
                                    'budget: ("low",)')
    composition, databases = load(buggy_text)
    result = verify(composition, policy, databases)
    print(result.verdict,
          "- the edited text spec no longer honours the reserve"
          if not result.satisfied else "(bug not visible?)")


if __name__ == "__main__":
    main()
