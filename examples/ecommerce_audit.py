#!/usr/bin/env python3
"""Auditing an e-commerce composition (store / payment / warehouse).

Verifies the safety guarantees a store owner cares about -- nothing ships
without an order, declined cards never ship, the payment processor answers
honestly -- and demonstrates two semantic knobs from the paper:

* lossy vs. perfect channels change which liveness guarantees hold;
* the deterministic-send discipline of Theorem 3.8 turns ambiguous flat
  sends into an observable ``error_Q`` flag.

Run:  python examples/ecommerce_audit.py
"""

from repro.library.ecommerce import (
    PROPERTY_AUTH_HONEST, PROPERTY_NO_SHIP_ON_DECLINE,
    PROPERTY_ORDER_RESOLVED, PROPERTY_SHIP_REQUIRES_AUTH,
    ecommerce_composition, standard_database,
)
from repro.reductions import deterministic_send_gadget
from repro.spec import DETERMINISTIC_LOSSY, PERFECT_BOUNDED
from repro.verifier import verification_domain, verify

CANDIDATES = {"p": ("widget",), "card": ("visa", "amex")}


def audit_store() -> None:
    composition = ecommerce_composition()
    databases = standard_database("good")
    domain = verification_domain(composition, [], databases, fresh_count=1)

    print("=== store safety audit (good cards, item in stock) ===")
    checks = [
        ("ship requires an order", PROPERTY_SHIP_REQUIRES_AUTH),
        ("declines never ship", PROPERTY_NO_SHIP_ON_DECLINE),
        ("processor answers honestly", PROPERTY_AUTH_HONEST),
    ]
    for label, prop in checks:
        result = verify(composition, prop, databases, domain=domain,
                        valuation_candidates=CANDIDATES)
        print(f"  {label:32s}: {result.verdict} "
              f"({result.stats.wall_seconds:.2f}s)")

    print("\n=== liveness: every order resolves ===")
    lossy = verify(composition, PROPERTY_ORDER_RESOLVED, databases,
                   domain=domain, valuation_candidates=CANDIDATES)
    print(f"  lossy channels : {lossy.verdict} "
          "(an authorization can be lost in transit)")


def deterministic_send_demo() -> None:
    print("\n=== Theorem 3.8: deterministic flat sends ===")
    composition, databases, prop = deterministic_send_gadget()
    nondet = verify(composition, prop, databases,
                    semantics=PERFECT_BOUNDED)
    det = verify(composition, prop, databases,
                 semantics=DETERMINISTIC_LOSSY)
    print(f"  nondeterministic pick : {nondet.verdict} "
          "(one of the candidates is sent)")
    print(f"  deterministic (error) : {det.verdict} "
          "(ambiguous send raises error_ship)")


def main() -> None:
    audit_store()
    deterministic_send_demo()


if __name__ == "__main__":
    main()
