#!/usr/bin/env python3
"""The paper's running example: verifying the bank-loan composition.

Reproduces the full Example 1.1/2.2 workflow: applicant A applies, officer
O consults credit agency CR, escalates middling ratings to manager M, and
writes notification letters.  The script

1. simulates one random run and prints the message flow;
2. verifies the bank policy (approvals only on excellent rating or
   manager clearance) across all credit categories;
3. seeds the officer with a bug (poor -> approved) and shows the verifier
   produce a counterexample;
4. checks the Example 4.1 conversation protocol G(getRating -> F rating),
   whose failure under lossy channels is itself instructive.

Run:  python examples/loan_workflow.py
"""

from repro.library.loan import (
    CREDIT_CATEGORIES, PROPERTY_BANK_POLICY_POINTWISE, STANDARD_CANDIDATES,
    loan_composition, standard_database,
)
from repro.protocols import AgnosticProtocol, verify_agnostic
from repro.runtime import simulate, snapshot_view
from repro.verifier import verification_domain, verify


def simulate_once() -> None:
    print("=== one random run (credit category: fair) ===")
    composition = loan_composition(gated=False)
    databases = standard_database("fair")
    domain = verification_domain(composition, [], databases, fresh_count=1)
    trace = simulate(composition, databases, domain.values, steps=40,
                     seed=2026)
    events = []
    for state in trace:
        if state.enqueued:
            events.append(f"{state.mover} -> {sorted(state.enqueued)}")
        view = snapshot_view(state, composition)
        for letter in sorted(view["O.letter"]):
            events.append(f"LETTER {letter}")
    for event in events[:20]:
        print(" ", event)


def verify_policy() -> None:
    print("\n=== bank policy across credit categories ===")
    for category in CREDIT_CATEGORIES:
        composition = loan_composition()
        databases = standard_database(category)
        domain = verification_domain(composition, [], databases,
                                     fresh_count=1)
        result = verify(
            composition, PROPERTY_BANK_POLICY_POINTWISE, databases,
            domain=domain, valuation_candidates=STANDARD_CANDIDATES,
        )
        print(f"  {category:10s}: {result.verdict}  "
              f"({result.stats.system_states} states, "
              f"{result.stats.wall_seconds:.2f}s)")


def catch_the_bug() -> None:
    print("\n=== seeded bug: poor-rated applicants approved ===")
    composition = loan_composition(buggy_officer=True)
    databases = standard_database("poor")
    domain = verification_domain(composition, [], databases, fresh_count=1)
    result = verify(
        composition, PROPERTY_BANK_POLICY_POINTWISE, databases,
        domain=domain, valuation_candidates=STANDARD_CANDIDATES,
    )
    print(" ", result.verdict)
    if result.counterexample:
        print("  counterexample (letters and triggering messages only):")
        text = result.counterexample.describe(
            composition,
            relations=["O.letter", "O.rating", "O.application"],
        )
        for line in text.splitlines()[:16]:
            print("   ", line)


def check_protocol() -> None:
    print("\n=== Example 4.1 protocol: G(getRating -> F rating) ===")
    composition = loan_composition()
    databases = standard_database("fair")
    domain = verification_domain(composition, [], databases, fresh_count=1)
    protocol = AgnosticProtocol.from_ltl("G( getRating -> F rating )")
    result = verify_agnostic(composition, protocol, databases,
                             domain=domain)
    print(" ", result.verdict,
          "(lossy channels may drop the request: the paper's motivation "
          "for modular specs)")


def main() -> None:
    simulate_once()
    verify_policy()
    catch_the_bug()
    check_protocol()


if __name__ == "__main__":
    main()
