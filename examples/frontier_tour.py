#!/usr/bin/env python3
"""A tour of the decidability frontier (Sections 3.2, 4, 5).

Each stop demonstrates one of the paper's boundary results executably:

* Theorem 3.4 (decidable): an input-bounded composition with bounded
  lossy queues verifies exactly.
* Corollary 3.6 (unbounded queues): the verifier refuses; a simulation
  shows queues growing without bound.
* Theorem 3.7 (perfect bounded queues): a two-counter machine compiled
  into the fragment; the verifier, used as a semi-decision procedure,
  finds the halting computation of a halting machine as a property
  violation, and exhausts the bounded domain for a diverging one.
* Theorems 3.9/3.10: the input-boundedness checker pinpoints emptiness
  tests on nested messages and non-ground nested atoms.

Run:  python examples/frontier_tour.py
"""

from repro.errors import VerificationError
from repro.ib import check_peer, check_sentence, summarize
from repro.ltlfo import parse_ltlfo
from repro.reductions import (
    count_up_down, diverging_machine, emptiness_test_gadget,
    halting_search_property, machine_composition, machine_databases,
    nonground_nested_peer, run_machine,
)
from repro.fo import Instance
from repro.spec import (
    ChannelSemantics, Composition, PERFECT_BOUNDED, PeerBuilder,
)
from repro.verifier import verification_domain, verify


def stop_decidable() -> None:
    print("=== Theorem 3.4: the decidable fragment ===")
    from repro.library.synthetic import (
        chain_databases, chain_safety_property, relay_chain,
    )
    comp = relay_chain(1)
    result = verify(comp, chain_safety_property(1), chain_databases(1))
    print(" ", result.summary().splitlines()[0])


def stop_unbounded_queues() -> None:
    print("\n=== Corollary 3.6: unbounded queues are off-limits ===")
    from repro.library.synthetic import chain_databases, relay_chain
    comp = relay_chain(0)
    try:
        verify(comp, "G true", chain_databases(0),
               semantics=ChannelSemantics(queue_bound=None))
    except VerificationError as err:
        print("  verifier refused:", str(err).splitlines()[0])
    # simulation shows why: the queue grows without bound
    from repro.runtime import simulate
    unbounded = ChannelSemantics(lossy=False, queue_bound=None)
    trace = simulate(
        comp, chain_databases(0), ("v0",), steps=40,
        semantics=unbounded,
        # steer: keep the sender's input set and let the queue grow
        choose=lambda options: max(
            options,
            key=lambda s: (s.total_queued_messages(),
                           len(s.data["P0.pick"]),
                           s.mover == "S"),
        ),
    )
    print("  after 40 steps the channel holds",
          trace[-1].total_queued_messages(), "messages and counting")


def stop_halting_reduction() -> None:
    print("\n=== Theorem 3.7: perfect 1-bounded queues simulate counter "
          "machines ===")
    halting = count_up_down(2)
    run = run_machine(halting)
    print(f"  machine counts to {run.max_c1} and back "
          f"({run.steps} steps); interpreter says halted={run.halted}")
    comp = machine_composition(halting)
    prop = halting_search_property(halting)
    dom = verification_domain(comp, [prop], machine_databases(),
                              fresh_count=run.peak_space + 1)
    result = verify(comp, prop, machine_databases(),
                    semantics=PERFECT_BOUNDED, domain=dom,
                    check_input_bounded=False)
    print("  verifier on the compiled gadget:", result.verdict,
          "(violation == faithful halting computation found)")

    diverging = diverging_machine()
    comp = machine_composition(diverging)
    prop = halting_search_property(diverging)
    dom = verification_domain(comp, [prop], machine_databases(),
                              fresh_count=2)
    result = verify(comp, prop, machine_databases(),
                    semantics=PERFECT_BOUNDED, domain=dom,
                    check_input_bounded=False)
    print("  diverging machine, same gadget  :", result.verdict,
          "(bounded domain exhausted, no witness)")


def stop_syntactic_boundaries() -> None:
    print("\n=== Theorems 3.9/3.10: one relaxation breaks the fragment ===")
    comp, _dbs, _ib_prop, emptiness_prop = emptiness_test_gadget()
    sentence = parse_ltlfo(emptiness_prop, comp.schema)
    print("  emptiness test on a nested message:")
    print("   ", summarize(check_sentence(sentence, comp.schema)))
    print("  non-ground nested atom in an input rule:")
    print("   ", summarize(check_peer(nonground_nested_peer())))


def main() -> None:
    stop_decidable()
    stop_unbounded_queues()
    stop_halting_reduction()
    stop_syntactic_boundaries()


if __name__ == "__main__":
    main()
