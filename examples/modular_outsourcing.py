#!/usr/bin/env python3
"""Modular verification: the bank without its credit agency (Section 5).

The officer's credit-check fragment forms an *open* composition; the
credit agency is an unknown environment reachable only through the flat
``getRating``/``rating`` channels.  The script shows the assume-guarantee
workflow:

1. against an *unconstrained* environment, data sanity fails: the agency
   could reply with a rating category the bank has never heard of;
2. under an environment spec constraining every rating reply to the known
   category list (source-observed, a library extension), the property is
   restored;
3. the paper's observer-at-recipient translation (Definition 5.3 /
   Example 5.2) is printed for the Example 5.1 spec -- including its
   structural limitation with unsolicited messages.

Run:  python examples/modular_outsourcing.py
"""

from repro.fo import Instance
from repro.library.loan import (
    ENV_SPEC_RATING_CONTENT, PROPERTY_RECORDED_CATEGORIES_KNOWN,
    credit_check_composition,
)
from repro.verifier import (
    parse_env_spec, translate_env_spec, verification_domain, verify,
    verify_modular,
)
from repro.verifier.domain import VerificationDomain

EX51_SPEC = (
    "G forall ssn: ?getRating(ssn) -> "
    '( !rating(ssn, "poor") | !rating(ssn, "fair") '
    '| !rating(ssn, "good") | !rating(ssn, "excellent") )'
)


def setup():
    composition = credit_check_composition()
    databases = {"O": Instance({"customer": [("c1", "s1", "ann")]})}
    domain = verification_domain(composition, [], databases, fresh_count=1)
    if "fair" not in domain.constants:
        domain = VerificationDomain(domain.constants + ("fair",),
                                    domain.fresh)
    env_values = ("s1", "fair", domain.fresh[0])
    candidates = {"ssn": ("s1",), "r": ("fair", domain.fresh[0])}
    return composition, databases, domain, env_values, candidates


def main() -> None:
    composition, databases, domain, env_values, candidates = setup()
    print("open composition:", composition)
    for channel in composition.environment_channels():
        print("  environment channel:", channel)

    print("\n--- 1. unconstrained environment ---")
    result = verify(composition, PROPERTY_RECORDED_CATEGORIES_KNOWN,
                    databases, domain=domain,
                    valuation_candidates=candidates,
                    env_value_domain=env_values)
    print(result.summary())
    if result.counterexample:
        print("  offending category:",
              result.counterexample.valuation.get("r"))

    print("\n--- 2. under the rating-content spec (source-observed) ---")
    result = verify_modular(
        composition, PROPERTY_RECORDED_CATEGORIES_KNOWN,
        ENV_SPEC_RATING_CONTENT, databases,
        domain=domain, observer="source",
        valuation_candidates=candidates, env_value_domain=env_values,
    )
    print(result.summary())

    print("\n--- 3. the paper's Example 5.1/5.2 translation ---")
    spec = parse_env_spec(EX51_SPEC, composition)
    translated = translate_env_spec(spec, composition, "recipient")
    print("  spec      :", spec)
    print("  translated:", translated)
    result = verify_modular(
        composition, PROPERTY_RECORDED_CATEGORIES_KNOWN, EX51_SPEC,
        databases, domain=domain, observer="recipient",
        valuation_candidates=candidates, env_value_domain=env_values,
    )
    print(" ", result.verdict,
          "- the recipient-observed spec constrains only replies that "
          "arrive right after a pending request; unsolicited messages "
          "remain unconstrained (see EXPERIMENTS.md, E9)")


if __name__ == "__main__":
    main()
