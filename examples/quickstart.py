#!/usr/bin/env python3
"""Quickstart: specify two communicating peers, verify two properties.

Builds the smallest interesting composition -- a sender that lets its user
pick a database value and ships it over a lossy 1-bounded channel to a
receiver that stores it -- then verifies:

1. a safety property (holds): everything stored was in the database;
2. a liveness property (fails under lossy channels): every pick is
   eventually stored -- and prints the message-loss counterexample run.

Run:  python examples/quickstart.py
"""

from repro.fo import Instance
from repro.spec import Composition, PeerBuilder
from repro.verifier import verify


def build_composition() -> Composition:
    sender = (
        PeerBuilder("S")
        .database("items", 1)            # fixed database
        .input("pick", 1)                # user menu (Definition 2.3)
        .flat_out_queue("msg", 1)        # channel to R
        .input_rule("pick", ["x"], "items(x)")
        .send_rule("msg", ["x"], "pick(x)")
        .build()
    )
    receiver = (
        PeerBuilder("R")
        .state("got", 1)
        .flat_in_queue("msg", 1)
        .insert_rule("got", ["x"], "?msg(x)")
        .build()
    )
    return Composition([sender, receiver])


def main() -> None:
    composition = build_composition()
    databases = {"S": Instance({"items": [("a",)]})}

    print("composition:", composition)
    for channel in composition.channels:
        print("  channel:", channel)

    print("\n--- safety: stored values come from the database ---")
    result = verify(
        composition,
        "forall x: G( R.got(x) -> S.items(x) )",
        databases,
    )
    print(result.summary())

    print("\n--- liveness: picked values eventually arrive ---")
    result = verify(
        composition,
        "forall x: G( S.pick(x) -> F R.got(x) )",
        databases,
    )
    print(result.summary())
    if result.counterexample is not None:
        print("\nThe lossy channel may drop the message forever:")
        print(result.counterexample.describe(
            composition,
            relations=["S.pick", "R.got"],
        ))


if __name__ == "__main__":
    main()
