"""E13 (ablation): what it takes for liveness to hold.

The paper's example liveness property (11) is violated under its own
decidable semantics (E1-F1).  This ablation isolates the two causes --
message loss and unfair scheduling -- by toggling them independently on
the minimal relay composition, then replays the story on the loan
composition:

* liveness holds exactly under perfect channels *and* fair scheduling;
* on the loan composition, the fully automatic approval path (excellent
  rating) becomes responsive under perfect+fair, while paths requiring
  human decisions (middling ratings) stay violable -- scheduler fairness
  cannot force users to act.

Fair scheduling is a library extension (``verify(...,
fair_scheduling=True)``): counterexample runs must let every peer move
infinitely often.
"""

import pytest

from repro.library.loan import (
    PROPERTY_RESPONSIVENESS, STANDARD_CANDIDATES, loan_composition,
    standard_database,
)
from repro.library.synthetic import (
    chain_databases, chain_liveness_property, relay_chain,
)
from repro.spec import DECIDABLE_DEFAULT, PERFECT_BOUNDED
from repro.verifier import verification_domain, verify

from harness import record

MATRIX = [
    ("lossy, unfair", DECIDABLE_DEFAULT, False, False),
    ("perfect, unfair", PERFECT_BOUNDED, False, False),
    ("lossy, fair", DECIDABLE_DEFAULT, True, False),
    ("perfect, fair", PERFECT_BOUNDED, True, True),
]


@pytest.mark.parametrize("label,semantics,fair,expected", MATRIX)
def test_liveness_matrix(benchmark, label, semantics, fair, expected):
    composition = relay_chain(0)
    databases = chain_databases(0)

    def run():
        return verify(composition, chain_liveness_property(0), databases,
                      semantics=semantics, fair_scheduling=fair)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record("E13", f"relay liveness: {label}", result, expected)


@pytest.mark.parametrize("category,expected", [
    ("excellent", True),   # fully automatic path: responsive
    ("fair", False),       # needs human decisions: fairness cannot help
])
def test_loan_responsiveness_perfect_fair(benchmark, category, expected):
    composition = loan_composition()
    databases = standard_database(category)
    domain = verification_domain(composition, [], databases,
                                 fresh_count=1)

    def run():
        return verify(composition, PROPERTY_RESPONSIVENESS, databases,
                      domain=domain, semantics=PERFECT_BOUNDED,
                      fair_scheduling=True,
                      valuation_candidates=STANDARD_CANDIDATES)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record("E13", f"loan (11) perfect+fair, category={category}",
           result, expected)
