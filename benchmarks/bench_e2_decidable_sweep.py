"""E2: Theorem 3.4's decidable regime -- verification cost sweeps.

Sweeps the three scale axes over the synthetic relay chain:
number of peers, queue bound k, and domain size.  The safety property
holds in every configuration (the theorem's decidable combination:
input-bounded specs, bounded queues, lossy channels); the interesting
output is how wall time / state count grows.
"""

import pytest

from repro.library.synthetic import (
    chain_databases, chain_safety_property, relay_chain,
)
from repro.spec import ChannelSemantics
from repro.verifier import VerificationDomain, verification_domain, verify

from harness import bench_workers, record, record_speedup


@pytest.mark.parametrize("n_relays", [0, 1, 2, 3])
def test_sweep_peers(benchmark, n_relays):
    composition = relay_chain(n_relays)
    databases = chain_databases(n_relays)

    def run():
        return verify(composition, chain_safety_property(n_relays),
                      databases)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record("E2", f"peers sweep: {n_relays + 2} peers", result, True)


@pytest.mark.parametrize("bound", [1, 2, 3])
def test_sweep_queue_bound(benchmark, bound):
    composition = relay_chain(1)
    databases = chain_databases(1)
    semantics = ChannelSemantics(lossy=True, queue_bound=bound)

    def run():
        return verify(composition, chain_safety_property(1), databases,
                      semantics=semantics)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record("E2", f"queue-bound sweep: k={bound}", result, True)


@pytest.mark.parametrize("fresh", [1, 2, 3, 4])
def test_sweep_domain_size(benchmark, fresh):
    composition = relay_chain(1)
    databases = chain_databases(1)
    domain = verification_domain(composition, [], databases,
                                 fresh_count=fresh)

    def run():
        return verify(composition, chain_safety_property(1), databases,
                      domain=domain)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record("E2", f"domain sweep: {len(domain.values)} values",
           result, True)


def test_parallel_sweep_speedup(benchmark):
    """Sequential vs parallel sweep of the chain safety valuation grid."""
    composition = relay_chain(1)
    databases = chain_databases(1, items=3)
    domain = verification_domain(composition, [], databases,
                                 fresh_count=2)
    prop = chain_safety_property(1)
    workers = bench_workers()

    seq = verify(composition, prop, databases, domain=domain, workers=1)

    def run_parallel():
        return verify(composition, prop, databases, domain=domain,
                      workers=workers)

    par = benchmark.pedantic(run_parallel, rounds=1, iterations=1)
    record_speedup("E2", "parallel sweep: chain safety grid",
                   seq, par, workers)
