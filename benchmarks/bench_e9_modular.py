"""E9: Theorem 5.4 / Examples 5.1-5.2 -- modular verification.

The credit-check composition (an officer fragment with the credit agency
as its environment; all environment channels flat, as Theorem 5.4's
environment specs require):

* unconstrained environment: data sanity fails (any category can arrive);
* with the rating-content spec (source-observed, a library extension):
  restored;
* the paper's Example 5.1 spec under the Definition 5.3 translation
  (recipient-observed): measured, and shown *not* to exclude unsolicited
  messages -- the structural caveat documented in EXPERIMENTS.md;
* the non-strict expansion path (Theorem 5.5's boundary).
"""

import pytest

from repro.fo import Instance
from repro.library.loan import (
    ENV_SPEC_RATING_CONTENT, PROPERTY_RECORDED_CATEGORIES_KNOWN,
    credit_check_composition,
)
from repro.verifier import verification_domain, verify, verify_modular
from repro.verifier.domain import VerificationDomain

from harness import record

EX51_SPEC = (
    "G forall ssn: ?getRating(ssn) -> "
    '( !rating(ssn, "poor") | !rating(ssn, "fair") '
    '| !rating(ssn, "good") | !rating(ssn, "excellent") )'
)


@pytest.fixture(scope="module")
def setup():
    composition = credit_check_composition()
    databases = {"O": Instance({"customer": [("c1", "s1", "ann")]})}
    domain = verification_domain(composition, [], databases,
                                 fresh_count=1)
    if "fair" not in domain.constants:
        domain = VerificationDomain(domain.constants + ("fair",),
                                    domain.fresh)
    env_values = ("s1", "fair", domain.fresh[0])
    candidates = {"ssn": ("s1",), "r": ("fair", domain.fresh[0])}
    return composition, databases, domain, env_values, candidates


def test_unconstrained_environment(benchmark, setup):
    composition, databases, domain, env_values, candidates = setup

    def run():
        return verify(composition, PROPERTY_RECORDED_CATEGORIES_KNOWN,
                      databases, domain=domain,
                      valuation_candidates=candidates,
                      env_value_domain=env_values)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record("E9", "unconstrained environment", result, False)
    assert result.counterexample.valuation["r"] == domain.fresh[0]


def test_source_observed_spec(benchmark, setup):
    composition, databases, domain, env_values, candidates = setup

    def run():
        return verify_modular(
            composition, PROPERTY_RECORDED_CATEGORIES_KNOWN,
            ENV_SPEC_RATING_CONTENT, databases, domain=domain,
            observer="source", valuation_candidates=candidates,
            env_value_domain=env_values,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record("E9", "rating-content spec (source-observed)", result, True)


def test_example_51_recipient_translation(benchmark, setup):
    composition, databases, domain, env_values, candidates = setup

    def run():
        return verify_modular(
            composition, PROPERTY_RECORDED_CATEGORIES_KNOWN, EX51_SPEC,
            databases, domain=domain, observer="recipient",
            valuation_candidates=candidates, env_value_domain=env_values,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    # the Definition 5.3 translation constrains only replies arriving
    # right after a pending request: unsolicited garbage still violates
    record("E9", "Ex 5.1 spec via Def 5.3 translation (caveat)",
           result, False)


def test_nonstrict_expansion(benchmark, setup):
    composition, databases, domain, env_values, candidates = setup
    nonstrict = (
        'forall r: G ( !rating("s1", r) -> '
        '(r = "fair" | r = "good" | r = "poor" | r = "excellent") )'
    )

    def run():
        return verify_modular(
            composition, PROPERTY_RECORDED_CATEGORIES_KNOWN, nonstrict,
            databases, domain=domain, observer="source",
            allow_nonstrict=True, valuation_candidates=candidates,
            env_value_domain=env_values,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record("E9", "non-strict spec, bounded-domain expansion",
           result, True)
