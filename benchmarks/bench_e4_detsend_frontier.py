"""E4: Theorem 3.8 -- deterministic-send lossy flat queues.

Two demonstrations: (a) the same counter-machine gadget finds its halting
witness under the deterministic-send lossy semantics the theorem names;
(b) the ``error_Q`` flag itself is observable and flips a property's
verdict between the two send disciplines.
"""

import pytest

from repro.reductions import (
    count_up_down, deterministic_send_gadget, halting_search_property,
    machine_composition, machine_databases, run_machine,
)
from repro.spec import DETERMINISTIC_LOSSY, PERFECT_BOUNDED
from repro.verifier import verification_domain, verify

from harness import record


def test_halting_witness_under_detsend(benchmark):
    machine = count_up_down(1)
    composition = machine_composition(machine)
    prop = halting_search_property(machine)
    space = run_machine(machine).peak_space
    domain = verification_domain(composition, [prop], machine_databases(),
                                 fresh_count=space + 1)

    def run():
        return verify(composition, prop, machine_databases(),
                      semantics=DETERMINISTIC_LOSSY, domain=domain,
                      check_input_bounded=False)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record("E4", "halting witness, deterministic lossy queues",
           result, False)


def test_error_flag_nondeterministic(benchmark):
    composition, databases, prop = deterministic_send_gadget()

    def run():
        return verify(composition, prop, databases,
                      semantics=PERFECT_BOUNDED)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record("E4", "ambiguous flat send, nondeterministic pick",
           result, True)


def test_error_flag_deterministic(benchmark):
    composition, databases, prop = deterministic_send_gadget()

    def run():
        return verify(composition, prop, databases,
                      semantics=DETERMINISTIC_LOSSY)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record("E4", "ambiguous flat send, deterministic error flag",
           result, False)
