"""E6: Theorem 4.2 -- data-agnostic conversation protocols.

Example 4.1's protocol ``G(getRating -> F rating)`` on the loan
composition (fails under lossy channels -- the request can be lost), plus
ordering protocols that hold, and a Büchi-automaton-given protocol
exercising the complementation path.
"""

import pytest

from repro.library.loan import loan_composition, standard_database
from repro.library.synthetic import chain_databases, relay_chain
from repro.ltl import BuchiAutomaton, Edge, Guard
from repro.protocols import AgnosticProtocol, verify_agnostic
from repro.spec import PERFECT_BOUNDED
from repro.verifier import verification_domain

from harness import record


@pytest.fixture(scope="module")
def loan_setup():
    composition = loan_composition()
    databases = standard_database("fair")
    domain = verification_domain(composition, [], databases, fresh_count=1)
    return composition, databases, domain


def test_example_41_protocol_lossy(benchmark, loan_setup):
    composition, databases, domain = loan_setup
    protocol = AgnosticProtocol.from_ltl("G( getRating -> F rating )")

    def run():
        return verify_agnostic(composition, protocol, databases,
                               domain=domain)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record("E6", "Ex 4.1: G(getRating -> F rating), lossy",
           result, False)


def test_rating_only_after_request(benchmark, loan_setup):
    composition, databases, domain = loan_setup
    protocol = AgnosticProtocol.from_ltl(
        "(~rating U getRating) | G ~rating"
    )

    def run():
        return verify_agnostic(composition, protocol, databases,
                               domain=domain, semantics=PERFECT_BOUNDED)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record("E6", "no rating before a request (perfect)", result, True)


def test_buchi_given_protocol(benchmark):
    composition = relay_chain(0)
    databases = chain_databases(0)
    # deterministic DBA: 'no message ever' -- clearly violated
    automaton = BuchiAutomaton(
        states={0}, initial={0},
        edges=[Edge(0, Guard(neg=frozenset({"q0"})), 0)],
        accepting={0}, aps={"q0"},
    )
    protocol = AgnosticProtocol.from_buchi(automaton)

    def run():
        return verify_agnostic(composition, protocol, databases,
                               semantics=PERFECT_BOUNDED)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record("E6", "automaton-given protocol (DBA complement)",
           result, False)
