"""E16 (PR7): the scenario factory -- new domains + fuzzed frontier.

Two new library domains in the spirit of the paper's cited
application-suite references [11] -- a payments/chargeback flow and a
ride-hailing dispatch flow -- each with two satisfied and two violated
LTL-FO properties (the violated ones are message races the lossy
semantics makes real).  Rows measured here:

* every documented property of both domains verified under the
  ``seed`` engine, the ``shared`` engine, and a 4-worker pool, with
  verdicts, valuation/node counts, and counterexample lassos asserted
  identical across the three configurations (the determinism contract
  on curated, rather than generated, specs);
* a 20-case fuzz batch over theorem rows 3.4/3.7/3.9 run through the
  full oracle stack (classifier, dump/load round-trip, seed-vs-shared
  differential, 2-worker pool, 2-shard merge, lasso replay) -- zero
  oracle violations expected.

All rows land in ``BENCH_PR7.json`` (see harness.snapshot_metrics).
"""

import pytest

from repro.fuzz import fuzz
from repro.library import dispatch, payments
from repro.verifier import verify

from harness import record, repro_seed, snapshot_metrics

EXPERIMENT = "PR7"

DOMAINS = {
    "payments": (
        payments.payments_composition, payments.standard_database,
        payments.STANDARD_CANDIDATES,
        [("capture-cleared", payments.PROPERTY_CAPTURE_CLEARED, True),
         ("dispute-honest", payments.PROPERTY_DISPUTE_HONEST, True),
         ("refund-after-capture",
          payments.PROPERTY_REFUND_AFTER_CAPTURE, False),
         ("payment-captured", payments.PROPERTY_PAYMENT_CAPTURED,
          False)],
    ),
    "dispatch": (
        dispatch.dispatch_composition, dispatch.standard_database,
        dispatch.STANDARD_CANDIDATES,
        [("offers-from-fleet", dispatch.PROPERTY_OFFERS_FROM_FLEET,
          True),
         ("take-needs-offer", dispatch.PROPERTY_TAKE_NEEDS_OFFER, True),
         ("pickup-requested", dispatch.PROPERTY_PICKUP_REQUESTED,
          False),
         ("request-served", dispatch.PROPERTY_REQUEST_SERVED, False)],
    ),
}

CONFIGURATIONS = (
    ("seed x1", dict(engine="seed")),
    ("shared x1", dict(engine="shared")),
    ("shared x4", dict(workers=4)),
)


@pytest.mark.parametrize("domain", sorted(DOMAINS))
def test_domain_configuration_grid(benchmark, domain):
    """Each property: identical results under seed/shared/4 workers."""
    build, databases, candidates, properties = DOMAINS[domain]
    comp, dbs = build(), databases()

    def _grid():
        rows = []
        for prop_name, text, expected in properties:
            results = {}
            for config_name, kwargs in CONFIGURATIONS:
                results[config_name] = verify(
                    comp, text, dbs, valuation_candidates=candidates,
                    **kwargs)
            rows.append((prop_name, expected, results))
        return rows

    rows = benchmark.pedantic(_grid, rounds=1, iterations=1)
    for prop_name, expected, results in rows:
        reference = results["shared x1"]
        for config_name, result in results.items():
            case = f"{domain} {prop_name} [{config_name}]"
            record(EXPERIMENT, case, result, expected)
            assert result.verdict == reference.verdict
            assert (result.stats.valuations_checked
                    == reference.stats.valuations_checked)
            assert (result.stats.product_nodes_visited
                    == reference.stats.product_nodes_visited), (
                f"{case}: node counts diverged"
            )
            if reference.counterexample is not None:
                assert (result.counterexample.valuation
                        == reference.counterexample.valuation)
                assert (result.counterexample.lasso
                        == reference.counterexample.lasso), (
                    f"{case}: lassos diverged"
                )


def test_fuzz_batch(benchmark):
    """20 generated cases, rows 3.4/3.7/3.9: zero oracle violations."""
    report = benchmark.pedantic(
        fuzz,
        kwargs=dict(count=20, seed=repro_seed(),
                    rows=("3.4", "3.7", "3.9")),
        rounds=1, iterations=1,
    )
    assert report.ok, report.summary()
    verified = sum(1 for o in report.outcomes if o.verified)
    # every 3.4/3.7/3.9 case has bounded queues, so all sweep
    assert verified == 20

    # snapshot one aggregate row: campaign size + violation count
    class _Stats:
        def to_dict(self):
            return {"cases": len(report.outcomes),
                    "verified": verified,
                    "violations": len(report.failures)}

    class _Result:
        verdict = "SATISFIED" if report.ok else "VIOLATED"
        stats = _Stats()

    snapshot_metrics(EXPERIMENT, "fuzz batch rows 3.4/3.7/3.9 x20",
                     _Result(),
                     extra={"seed": report.seed,
                            "rows": list(report.rows)})
    print(f"[{EXPERIMENT}] fuzz batch: {len(report.outcomes)} cases, "
          f"{verified} verified, {len(report.failures)} violations "
          f"(seed {report.seed})")


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q", "--benchmark-only"]))
