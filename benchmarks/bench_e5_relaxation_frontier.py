"""E5: Theorems 3.9/3.10 -- syntactic relaxations of input-boundedness.

The boundary is demonstrated three ways:

* the checker rejects emptiness tests on nested messages (3.9) and
  non-ground nested atoms (3.10) -- measured as checker throughput;
* with the check overridden, the bounded-domain search remains a sound
  bug finder and distinguishes the empty-nested-message behaviours that
  power Theorem 3.9's reduction;
* the PCP solver (the classic source problem for these reductions)
  solves/refutes the library instances.
"""

import pytest

from repro.ib import check_peer, check_sentence
from repro.ltlfo import parse_ltlfo
from repro.reductions import (
    SOLVABLE, UNSOLVABLE, emptiness_test_gadget, nonground_nested_peer,
    solve_bounded,
)
from repro.spec import ChannelSemantics, NestedEmptySend
from repro.verifier import verify

from harness import Row, report, record


def test_checker_rejects_emptiness_property(benchmark):
    composition, _dbs, _ib, emptiness_prop = emptiness_test_gadget()
    sentence = parse_ltlfo(emptiness_prop, composition.schema)

    def run():
        return check_sentence(sentence, composition.schema)

    violations = benchmark(run)
    assert violations
    report(Row("E5", "checker rejects nested emptiness test (3.9)",
               "REJECTED", "REJECTED", 0, 0.0))


def test_checker_rejects_nonground_nested(benchmark):
    peer = nonground_nested_peer()
    violations = benchmark(check_peer, peer)
    assert violations
    report(Row("E5", "checker rejects non-ground nested atom (3.10)",
               "REJECTED", "REJECTED", 0, 0.0))


def test_empty_nested_messages_observable(benchmark):
    composition, databases, _ib, emptiness_prop = emptiness_test_gadget()
    faithful = ChannelSemantics(
        lossy=True, queue_bound=1,
        nested_empty_send=NestedEmptySend.ENQUEUE,
    )

    def run():
        return verify(composition, emptiness_prop, databases,
                      semantics=faithful, check_input_bounded=False)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record("E5", "emptiness test distinguishes empty nested msgs",
           result, False)


@pytest.mark.parametrize("name,instance,solvable", [
    ("solvable", SOLVABLE, True),
    ("unsolvable", UNSOLVABLE, False),
])
def test_pcp_solver(benchmark, name, instance, solvable):
    solution = benchmark(solve_bounded, instance, 10)
    assert (solution is not None) == solvable
    report(Row("E5", f"PCP bounded search: {name} instance",
               "FOUND" if solution else "NONE",
               "FOUND" if solvable else "NONE", 0, 0.0))
