"""E15 (PR6): zero-copy distributed sweep -- shm graph + work stealing.

PR 5 froze the valuation-independent reachable graph (Theorem 3.4)
into CSR arrays and reused it across the sweep, but still pickled a
private copy into every pool worker and assigned tasks statically.
PR 6 publishes the frozen graph in a ``multiprocessing.shared_memory``
segment that workers *attach* (zero graph bytes cross the process
boundary) and schedules valuation batches with per-worker deques plus
steal-on-idle.  Rows measured here, all on the 180-valuation E14 loan
sweep:

* an engine/worker grid -- seed@1 as the reference, then the shared
  engine at 1/2/4/8 workers under both shipping modes (``REPRO_SHM=0``
  pickle-per-worker vs shm attach) with verdict and node-count
  equality asserted against the reference on every cell;
* a zero-copy proof row -- on the attach path the
  ``graph.shm_bytes_shipped`` counter must stay exactly 0 while
  ``graph.shm_attaches >= 1``, every created segment must be unlinked,
  and ``/dev/shm`` must hold no ``repro_graph_*`` entries afterwards;
* the shipping-cost row -- with shm disabled the same sweep must
  record ``graph.shm_bytes_shipped > 0`` (the per-worker pickle bytes
  the attach path saves);
* the speedup row -- shm@8 workers vs the pickle path; the >= 1.5x
  wall-clock assertion applies when the box actually has 8 cores
  (``harness.cores_available``) or ``REPRO_BENCH_REQUIRE_DIST=1``
  forces it, since a single-core container cannot demonstrate
  parallel speedup.

All rows land in ``BENCH_PR6.json`` (see harness.snapshot_metrics).
"""

import os

import pytest

from repro.library.loan import (
    PROPERTY_LETTER_NEEDS_APPLICATION, loan_composition,
    standard_database,
)
from repro.obs import counters_snapshot
from repro.verifier import verification_domain, verify
from repro.verifier.shm import leaked_segments

from harness import cores_available, record, snapshot_metrics

EXPERIMENT = "PR6"

#: The E14 wide sweep: 180 canonical valuations of the letter property.
WIDE_CANDIDATES = {
    "id": ("c1", "s1", "ann", "small", "acct1"),
    "name": ("ann", "c1", "small", "high"),
    "loan": ("small", "large", "c1", "fair"),
    "dec": ("approved", "denied", "large", "high"),
}

WORKER_GRID = (1, 2, 4, 8)


def _min_dist_speedup() -> float:
    raw = os.environ.get("REPRO_BENCH_MIN_DIST_SPEEDUP", "").strip()
    return float(raw) if raw else 1.5


def _sweep(engine: str = "shared", workers: int = 1, shm: bool = True):
    """One wide loan sweep under the requested shipping mode."""
    saved = os.environ.get("REPRO_SHM")
    os.environ["REPRO_SHM"] = "1" if shm else "0"
    try:
        composition = loan_composition()
        databases = standard_database("fair")
        domain = verification_domain(composition, [], databases,
                                     fresh_count=1)
        return verify(composition, PROPERTY_LETTER_NEEDS_APPLICATION,
                      databases, domain=domain,
                      valuation_candidates=WIDE_CANDIDATES,
                      workers=workers, engine=engine)
    finally:
        if saved is None:
            os.environ.pop("REPRO_SHM", None)
        else:
            os.environ["REPRO_SHM"] = saved


def test_engine_worker_grid(benchmark):
    """seed vs shared-pickle vs shared-shm at 1/2/4/8 workers."""
    reference = _sweep("seed", workers=1)
    record(EXPERIMENT, "loan letter sweep [seed x1]", reference, True)
    assert reference.stats.valuations_checked >= 8

    def _grid():
        rows = []
        for workers in WORKER_GRID:
            for mode, shm in (("pickle", False), ("shm", True)):
                rows.append((workers, mode,
                             _sweep("shared", workers, shm=shm)))
        return rows

    rows = benchmark.pedantic(_grid, rounds=1, iterations=1)
    for workers, mode, result in rows:
        case = f"loan letter sweep [shared-{mode} x{workers}]"
        record(EXPERIMENT, case, result, True)
        snapshot_metrics(EXPERIMENT, case, result,
                         extra={"workers": workers, "mode": mode,
                                "seconds": result.stats.wall_seconds})
        assert result.verdict == reference.verdict
        assert (result.stats.product_nodes_visited
                == reference.stats.product_nodes_visited), (
            f"{case}: node counts diverged from seed reference"
        )
        assert (result.stats.valuations_checked
                == reference.stats.valuations_checked)
    assert not leaked_segments(), leaked_segments()


def test_shm_zero_copy(benchmark):
    """Attach path: 0 graph bytes shipped, >= 1 attach, no leaks."""
    before = counters_snapshot()
    result = benchmark.pedantic(
        _sweep, kwargs={"workers": 4, "shm": True}, rounds=1,
        iterations=1,
    )
    after = counters_snapshot()
    record(EXPERIMENT, "zero-copy attach x4", result, True)

    def delta(name: str) -> int:
        return after.get(name, 0) - before.get(name, 0)

    shipped = delta("graph.shm_bytes_shipped")
    attaches = delta("graph.shm_attaches")
    segments = delta("graph.shm_segments")
    unlinks = delta("graph.shm_unlinks")
    snapshot_metrics(EXPERIMENT, "zero-copy counters x4", result,
                     extra={"shm_bytes_shipped": shipped,
                            "shm_attaches": attaches,
                            "shm_segments": segments,
                            "shm_unlinks": unlinks})
    assert shipped == 0, (
        f"attach path shipped {shipped} graph bytes; expected 0"
    )
    assert segments >= 1, "no shared-memory segment was created"
    assert attaches >= 1, "no worker attached the shared graph"
    assert unlinks == segments, (
        f"segment leak: {segments} created, {unlinks} unlinked"
    )
    assert not leaked_segments(), leaked_segments()


def test_pickle_path_ships_bytes(benchmark):
    """Fallback path: the graph pickle crosses once per worker."""
    before = counters_snapshot()
    result = benchmark.pedantic(
        _sweep, kwargs={"workers": 4, "shm": False}, rounds=1,
        iterations=1,
    )
    after = counters_snapshot()
    record(EXPERIMENT, "pickle fallback x4", result, True)
    shipped = (after.get("graph.shm_bytes_shipped", 0)
               - before.get("graph.shm_bytes_shipped", 0))
    segments = (after.get("graph.shm_segments", 0)
                - before.get("graph.shm_segments", 0))
    snapshot_metrics(EXPERIMENT, "pickle-fallback counters x4", result,
                     extra={"shm_bytes_shipped": shipped})
    assert segments == 0, "REPRO_SHM=0 still created a segment"
    assert shipped > 0, (
        "pickle path recorded no shipped graph bytes; the "
        "graph.shm_bytes_shipped accounting is broken"
    )
    assert not leaked_segments(), leaked_segments()


def test_distributed_speedup(benchmark):
    """shm@8 vs pickle@8: the acceptance row (gated on real cores)."""
    pickle_result = _sweep("shared", workers=8, shm=False)
    shm_result = benchmark.pedantic(
        _sweep, kwargs={"workers": 8, "shm": True}, rounds=1,
        iterations=1,
    )
    assert shm_result.verdict == pickle_result.verdict
    assert (shm_result.stats.product_nodes_visited
            == pickle_result.stats.product_nodes_visited)
    pickle_s = pickle_result.stats.wall_seconds
    shm_s = shm_result.stats.wall_seconds
    speedup = pickle_s / shm_s if shm_s > 0 else float("inf")
    snapshot_metrics(EXPERIMENT, "shm vs pickle x8", shm_result,
                     extra={"workers": 8, "pickle_seconds": pickle_s,
                            "shm_seconds": shm_s, "speedup": speedup,
                            "cores": cores_available()})
    print(f"[{EXPERIMENT}] shm vs pickle x8: pickle={pickle_s:.3f}s "
          f"shm={shm_s:.3f}s speedup={speedup:.2f} "
          f"(cores={cores_available()})")
    floor = _min_dist_speedup()
    if (cores_available() >= 8
            or os.environ.get("REPRO_BENCH_REQUIRE_DIST") == "1"):
        assert speedup >= floor, (
            f"shm path only {speedup:.2f}x over pickle shipping at 8 "
            f"workers (required {floor:.1f}x)"
        )
    assert not leaked_segments(), leaked_segments()


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q", "--benchmark-only"]))
