"""E10: the complexity shape behind the PSPACE / EXPSPACE split.

Theorem 3.4: PSPACE-complete for schemas with a fixed arity bound,
EXPSPACE otherwise.  The explicit-state realization shows the shape on
two axes:

* fixed arity, growing spec (relay chains): cost grows polynomially with
  the number of peers;
* growing arity (wide peers): the space of rows -- and with it the state
  space -- grows exponentially in the arity.

The printed state counts are the series EXPERIMENTS.md tabulates.
"""

import pytest

from repro.library.synthetic import (
    chain_databases, chain_safety_property, relay_chain, wide_databases,
    wide_peer, wide_safety_property,
)
from repro.verifier import verification_domain, verify

from harness import record


@pytest.mark.parametrize("n_relays", [0, 1, 2, 3, 4])
def test_fixed_arity_growing_spec(benchmark, n_relays):
    composition = relay_chain(n_relays)
    databases = chain_databases(n_relays)
    domain = verification_domain(composition, [], databases,
                                 fresh_count=1)

    def run():
        return verify(composition, chain_safety_property(n_relays),
                      databases, domain=domain)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record("E10", f"fixed arity, {n_relays + 2} peers", result, True)


@pytest.mark.parametrize("arity", [1, 2, 3, 4])
def test_growing_arity(benchmark, arity):
    composition = wide_peer(arity)
    databases = wide_databases(arity, rows=2)
    domain = verification_domain(composition, [], databases,
                                 fresh_count=1)

    def run():
        return verify(composition, wide_safety_property(arity), databases,
                      domain=domain)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record("E10", f"arity sweep: arity={arity}, "
                  f"domain={len(domain.values)}", result, True)
