"""E1: the paper's loan composition under its Example 3.2 properties.

Rows reproduced (EXPERIMENTS.md, E1):

* the pointwise bank policy holds for every credit category;
* the seeded poor->approved bug is caught with a counterexample;
* property (11) (responsiveness, liveness) is VIOLATED under lossy
  channels -- finding E1-F1;
* the literal ``G(... B ...)`` form of property (12) is VIOLATED by
  re-evaluation at the letter snapshot -- finding E1-F2.
"""

import pytest

from repro.library.loan import (
    CREDIT_CATEGORIES, PROPERTY_BANK_POLICY, PROPERTY_BANK_POLICY_POINTWISE,
    PROPERTY_LETTER_NEEDS_APPLICATION, PROPERTY_RESPONSIVENESS,
    STANDARD_CANDIDATES, loan_composition, standard_database,
)
from repro.verifier import verification_domain, verify

from harness import bench_workers, record, record_speedup


def _run(category, prop, buggy=False):
    composition = loan_composition(buggy_officer=buggy)
    databases = standard_database(category)
    domain = verification_domain(composition, [], databases, fresh_count=1)
    return verify(composition, prop, databases, domain=domain,
                  valuation_candidates=STANDARD_CANDIDATES)


@pytest.mark.parametrize("category", CREDIT_CATEGORIES)
def test_bank_policy_all_categories(benchmark, category):
    result = benchmark.pedantic(
        _run, args=(category, PROPERTY_BANK_POLICY_POINTWISE),
        rounds=1, iterations=1,
    )
    record("E1", f"bank policy, category={category}", result, True)


def test_buggy_officer_caught(benchmark):
    result = benchmark.pedantic(
        _run, args=("poor", PROPERTY_BANK_POLICY_POINTWISE, True),
        rounds=1, iterations=1,
    )
    record("E1", "bank policy, seeded poor->approved bug", result, False)
    assert result.counterexample.valuation["id"] == "c1"


def test_letter_needs_application(benchmark):
    result = benchmark.pedantic(
        _run, args=("fair", PROPERTY_LETTER_NEEDS_APPLICATION),
        rounds=1, iterations=1,
    )
    record("E1", "letters require saved applications", result, True)


def test_responsiveness_liveness_f1(benchmark):
    result = benchmark.pedantic(
        _run, args=("fair", PROPERTY_RESPONSIVENESS),
        rounds=1, iterations=1,
    )
    record("E1", "property (11), lossy channels [finding F1]",
           result, False)


def test_literal_b_form_f2(benchmark):
    result = benchmark.pedantic(
        _run, args=("fair", PROPERTY_BANK_POLICY),
        rounds=1, iterations=1,
    )
    record("E1", "property (12) literal B form [finding F2]",
           result, False)


def test_parallel_sweep_speedup(benchmark):
    """Sequential vs parallel sweep of the pointwise bank policy."""
    composition = loan_composition()
    databases = standard_database("fair")
    domain = verification_domain(composition, [], databases,
                                 fresh_count=1)
    workers = bench_workers()

    seq = verify(composition, PROPERTY_BANK_POLICY_POINTWISE, databases,
                 domain=domain, valuation_candidates=STANDARD_CANDIDATES,
                 workers=1)

    def run_parallel():
        return verify(composition, PROPERTY_BANK_POLICY_POINTWISE,
                      databases, domain=domain,
                      valuation_candidates=STANDARD_CANDIDATES,
                      workers=workers)

    par = benchmark.pedantic(run_parallel, rounds=1, iterations=1)
    record_speedup("E1", "parallel sweep: bank policy grid",
                   seq, par, workers)
