"""E12: the headline practicality row -- every library composition
against its full property batch.

The paper's Section 1/7 claim: the favourable single-peer verification
results of [11] should carry over to compositions.  This benchmark is the
composition-level measurement: end-to-end verification time of each
library application against all of its shipped properties (shared
transition cache, as a user would run it).
"""

import pytest

from repro.library import ecommerce, loan, travel
from repro.verifier import verification_domain, verify_all, verify

from harness import (
    Row, bench_workers, cores_available, record_speedup, report,
)


def test_loan_property_batch(benchmark):
    composition = loan.loan_composition()
    databases = loan.standard_database("fair")
    domain = verification_domain(composition, [], databases,
                                 fresh_count=1)
    props = [
        loan.PROPERTY_BANK_POLICY_POINTWISE,
        loan.PROPERTY_LETTER_NEEDS_APPLICATION,
    ]

    def run():
        return [
            verify(composition, p, databases, domain=domain,
                   valuation_candidates=loan.STANDARD_CANDIDATES)
            for p in props
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(r.satisfied for r in results)
    total = sum(r.stats.wall_seconds for r in results)
    report(Row("E12", f"loan batch: {len(props)} properties",
               "SATISFIED", "SATISFIED",
               max(r.stats.system_states for r in results), total))


def test_ecommerce_property_batch(benchmark):
    composition = ecommerce.ecommerce_composition()
    databases = ecommerce.standard_database("good")
    domain = verification_domain(composition, [], databases,
                                 fresh_count=1)
    candidates = {"p": ("widget",), "card": ("visa", "amex")}
    props = [
        ecommerce.PROPERTY_SHIP_REQUIRES_AUTH,
        ecommerce.PROPERTY_NO_SHIP_ON_DECLINE,
        ecommerce.PROPERTY_AUTH_HONEST,
    ]

    def run():
        return [
            verify(composition, p, databases, domain=domain,
                   valuation_candidates=candidates)
            for p in props
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(r.satisfied for r in results)
    total = sum(r.stats.wall_seconds for r in results)
    report(Row("E12", f"e-commerce batch: {len(props)} properties",
               "SATISFIED", "SATISFIED",
               max(r.stats.system_states for r in results), total))


def test_travel_property_batch(benchmark):
    composition = travel.travel_composition()
    databases = travel.standard_database()
    domain = verification_domain(composition, [], databases,
                                 fresh_count=1)
    candidates = {"f": ("fl1",), "d": ("rome",)}
    props = [
        travel.PROPERTY_ITINERARY_CONFIRMED,
        travel.PROPERTY_OFFERS_FROM_CATALOG,
    ]

    def run():
        return [
            verify(composition, p, databases, domain=domain,
                   valuation_candidates=candidates)
            for p in props
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(r.satisfied for r in results)
    total = sum(r.stats.wall_seconds for r in results)
    report(Row("E12", f"travel batch: {len(props)} properties",
               "SATISFIED", "SATISFIED",
               max(r.stats.system_states for r in results), total))


def test_parallel_sweep_speedup(benchmark):
    """Sequential vs parallel valuation sweep on the e-commerce batch.

    Four valuations of the ship-requires-auth property, each a full
    nested-DFS product search: exactly the embarrassingly parallel
    grid the process-pool engine targets.  On a multi-core box the
    parallel sweep must be at least 1.5x faster at four workers; on a
    single-core box (CI containers, this repo's dev sandbox) only the
    determinism contract is asserted and the speedup is reported
    informationally.
    """
    composition = ecommerce.ecommerce_composition()
    databases = ecommerce.standard_database("good")
    domain = verification_domain(composition, [], databases,
                                 fresh_count=1)
    candidates = {"p": ("widget", "$v0"), "card": ("visa", "amex")}
    prop = ecommerce.PROPERTY_SHIP_REQUIRES_AUTH
    workers = bench_workers()

    seq = verify(composition, prop, databases, domain=domain,
                 valuation_candidates=candidates, workers=1)

    def run_parallel():
        return verify(composition, prop, databases, domain=domain,
                      valuation_candidates=candidates, workers=workers)

    par = benchmark.pedantic(run_parallel, rounds=1, iterations=1)
    assert seq.satisfied and par.satisfied
    assert par.stats.valuations_checked == 4
    speedup = record_speedup("E12", "parallel sweep: 4 valuations",
                             seq, par, workers)
    if cores_available() >= 2:
        assert speedup >= 1.5, (
            f"expected >=1.5x speedup at {workers} workers on "
            f"{cores_available()} cores, got {speedup:.2f}x"
        )
