"""E3: Theorem 3.7 -- perfect 1-bounded flat queues simulate counter
machines.

The compiled two-counter-machine gadget is run under the theorem's
semantics.  For halting machines the verifier finds the faithful halting
computation as a property violation (the demonstrated direction of the
reduction); for the diverging machine the bounded-domain search is
exhausted without a witness.
"""

import pytest

from repro.reductions import (
    count_up_down, diverging_machine, halting_search_property,
    machine_composition, machine_databases, run_machine, transfer_machine,
)
from repro.spec import PERFECT_BOUNDED
from repro.verifier import verification_domain, verify

from harness import record


def _run(machine, fresh):
    composition = machine_composition(machine)
    prop = halting_search_property(machine)
    domain = verification_domain(composition, [prop], machine_databases(),
                                 fresh_count=fresh)
    return verify(composition, prop, machine_databases(),
                  semantics=PERFECT_BOUNDED, domain=domain,
                  check_input_bounded=False)


@pytest.mark.parametrize("n", [1, 2])
def test_halting_count_machine(benchmark, n):
    machine = count_up_down(n)
    space = run_machine(machine).peak_space
    result = benchmark.pedantic(_run, args=(machine, space + 1),
                                rounds=1, iterations=1)
    record("E3", f"halting count_up_down({n}): witness found",
           result, False)


def test_halting_transfer_machine(benchmark):
    machine = transfer_machine(1)
    space = run_machine(machine).peak_space
    result = benchmark.pedantic(_run, args=(machine, space + 1),
                                rounds=1, iterations=1)
    record("E3", "halting transfer(1): witness found", result, False)


def test_diverging_machine_no_witness(benchmark):
    result = benchmark.pedantic(_run, args=(diverging_machine(), 2),
                                rounds=1, iterations=1)
    record("E3", "diverging machine: bounded domain exhausted",
           result, True)


def test_insufficient_space_no_witness(benchmark):
    # count_up_down(3) needs 3 chain values; one fresh value is not enough
    result = benchmark.pedantic(_run, args=(count_up_down(3), 1),
                                rounds=1, iterations=1)
    record("E3", "halting machine, domain too small: no witness",
           result, True)
