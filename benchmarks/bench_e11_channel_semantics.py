"""E11: channel-semantics comparison (Section 2's remark; Corollary 3.6).

* lossy channels admit strictly more behaviours than perfect ones: the
  reachable snapshot set under perfect channels is a subset, and a
  delivery-dependent property flips verdict;
* unbounded queues grow without bound in simulation -- the reason
  Corollary 3.6 places them outside decidable verification, and the
  verifier refuses them outright.
"""

import pytest

from repro.errors import VerificationError
from repro.fo import Instance
from repro.library.synthetic import chain_databases, relay_chain
from repro.runtime import reachable_states, simulate
from repro.spec import ChannelSemantics, DECIDABLE_DEFAULT, PERFECT_BOUNDED
from repro.verifier import verify

from harness import Row, record, report

DB = chain_databases(0)


def test_lossy_reachable_superset(benchmark):
    composition = relay_chain(0)

    def run():
        lossy = reachable_states(composition, DB, ("v0",),
                                 semantics=DECIDABLE_DEFAULT)
        perfect = reachable_states(composition, DB, ("v0",),
                                   semantics=PERFECT_BOUNDED)
        return lossy, perfect

    lossy, perfect = benchmark.pedantic(run, rounds=1, iterations=1)
    assert perfect <= lossy
    report(Row("E11", f"reachable: lossy={len(lossy)} perfect="
                      f"{len(perfect)} (subset)", "SUBSET", "SUBSET",
               len(lossy), 0.0))


def test_delivery_property_flips(benchmark):
    composition = relay_chain(0)
    # "a sent message is immediately available at the receiver"
    prop = "forall x: G( P0.!q0(x) -> ~P1.empty_q0 )"

    def run():
        perfect = verify(composition, prop, DB,
                         semantics=PERFECT_BOUNDED)
        lossy = verify(composition, prop, DB,
                       semantics=DECIDABLE_DEFAULT)
        return perfect, lossy

    perfect, lossy = benchmark.pedantic(run, rounds=1, iterations=1)
    record("E11", "sent => enqueued, perfect channels", perfect, True)
    # under lossy semantics the out-queue *view* only shows enqueued
    # messages, so the property still holds -- the distinction appears on
    # liveness, measured next
    record("E11", "sent => enqueued, lossy channels", lossy, True)


def test_liveness_flips_between_semantics(benchmark):
    composition = relay_chain(0)
    prop = "forall x: G( P0.pick(x) -> F P1.done(x) )"

    def run():
        lossy = verify(composition, prop, DB,
                       semantics=DECIDABLE_DEFAULT)
        return lossy

    lossy = benchmark.pedantic(run, rounds=1, iterations=1)
    record("E11", "pick eventually delivered, lossy", lossy, False)


def test_unbounded_queue_growth(benchmark):
    composition = relay_chain(0)
    unbounded = ChannelSemantics(lossy=False, queue_bound=None)

    def run():
        trace = simulate(
            composition, DB, ("v0",), steps=60, semantics=unbounded,
            # steer: keep the sender's input set and let the queue grow
            choose=lambda options: max(
                options,
                key=lambda s: (s.total_queued_messages(),
                               len(s.data["P0.pick"]),
                               s.mover == "P0"),
            ),
        )
        return trace[-1].total_queued_messages()

    depth = benchmark.pedantic(run, rounds=1, iterations=1)
    assert depth >= 25
    report(Row("E11", f"unbounded queue after 60 steps: {depth} msgs",
               "GROWS", "GROWS", 0, 0.0))
    with pytest.raises(VerificationError):
        verify(composition, "G true", DB, semantics=unbounded)
