"""Shared helpers for the experiment benchmarks.

Each ``bench_e*.py`` module reproduces one experiment row set from
DESIGN.md's per-experiment index (the paper has no numbered tables; the
experiments demonstrate its theorems and examples).  Benchmarks run under
``pytest benchmarks/ --benchmark-only``; each records wall time via the
``benchmark`` fixture and *asserts the expected verdicts*, so a benchmark
run doubles as an end-to-end correctness check.  The measured rows are
printed so EXPERIMENTS.md can be regenerated from the output.

Each recorded row also lands in a metrics *trajectory* file
(``BENCH_<experiment>.json`` under ``REPRO_BENCH_METRICS_DIR``, default
``benchmarks/metrics/``): a JSON list, appended to on every run, whose
entries carry the row plus the full ``VerifierStats`` snapshot
(per-phase seconds, rule-cache counters, per-worker breakdowns -- see
:mod:`repro.obs`).  Comparing entries across commits turns the
benchmark log into a regression trajectory for each phase, not just
the headline wall time.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass
from pathlib import Path


@dataclass
class Row:
    """One reported experiment row."""

    experiment: str
    case: str
    verdict: str
    expected: str
    states: int
    seconds: float

    def render(self) -> str:
        ok = "ok" if self.verdict == self.expected else "MISMATCH"
        return (f"[{self.experiment}] {self.case:42s} "
                f"{self.verdict:9s} (expected {self.expected}; {ok}) "
                f"states={self.states:<7d} {self.seconds:.3f}s")


def report(row: Row) -> None:
    """Print a row (visible with pytest -s or in the captured log)."""
    print(row.render(), file=sys.stderr)


def repro_seed(default: int = 0) -> int:
    """The global reproducibility seed, from the ``REPRO_SEED`` env var.

    Benchmarks and the randomized synthetic families draw their seeds
    from here so a run is reproducible end to end: ``REPRO_SEED=7
    pytest benchmarks/`` replays the exact same compositions, sweeps,
    and fuzz cases.  Every metrics entry records the seed it ran under.
    """
    raw = os.environ.get("REPRO_SEED", "").strip()
    if raw:
        return int(raw)
    return default


def metrics_dir() -> Path:
    """Directory of the ``BENCH_*.json`` metrics trajectory files.

    Created on first access: the trajectory directory is part of the
    harness contract (ROADMAP/CI reference it), so a fresh checkout
    must not silently drop metrics because the directory is absent.
    """
    raw = os.environ.get("REPRO_BENCH_METRICS_DIR", "").strip()
    path = (Path(raw) if raw
            else Path(__file__).resolve().parent / "metrics")
    try:
        path.mkdir(parents=True, exist_ok=True)
    except OSError:  # pragma: no cover - read-only checkout
        pass
    return path


def snapshot_metrics(experiment: str, case: str, result,
                     extra: dict | None = None) -> None:
    """Append one metrics entry to ``BENCH_<experiment>.json``.

    The entry pairs the row identity with the result's full
    ``VerifierStats`` dict (phase seconds/counts, rule-cache counters,
    per-worker breakdowns).  The file is a JSON list ordered by append
    time -- a trajectory across benchmark runs.  Failures to write
    (read-only checkout, etc.) are ignored: metrics must never fail a
    benchmark.
    """
    from repro.obs import current_run_id
    from repro.obs.metrics import SCHEMA as METRICS_SCHEMA

    entry = {
        "schema": METRICS_SCHEMA,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "experiment": experiment,
        "case": case,
        "verdict": result.verdict,
        "repro_seed": repro_seed(),
        "run_id": current_run_id(),
        "stats": result.stats.to_dict(),
    }
    if extra:
        entry.update(extra)
    try:
        directory = metrics_dir()
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{experiment}.json"
        entries = []
        if path.exists():
            try:
                entries = json.loads(path.read_text())
            except (OSError, ValueError):
                entries = []
        if not isinstance(entries, list):
            entries = []
        entries.append(entry)
        path.write_text(json.dumps(entries, indent=2, default=str) + "\n")
    except OSError:  # pragma: no cover - filesystem-dependent
        pass


def record(experiment: str, case: str, result, expected_satisfied: bool
           ) -> Row:
    """Build + print a row from a VerificationResult and assert verdict."""
    expected = "SATISFIED" if expected_satisfied else "VIOLATED"
    row = Row(
        experiment=experiment,
        case=case,
        verdict=result.verdict,
        expected=expected,
        states=result.stats.system_states,
        seconds=result.stats.wall_seconds,
    )
    report(row)
    snapshot_metrics(experiment, case, result)
    assert result.verdict == expected, row.render()
    return row


def cores_available() -> int:
    """CPU cores this process may use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def bench_workers(default: int = 4) -> int:
    """Worker count for the parallel speedup rows."""
    raw = os.environ.get("REPRO_BENCH_WORKERS", "").strip()
    if raw:
        return max(1, int(raw))
    return default


def record_speedup(experiment: str, case: str, seq_result, par_result,
                   workers: int) -> float:
    """Print a sequential-vs-parallel row and return the speedup factor.

    Asserts the two sweeps agree on verdict and aggregated node counts
    (the determinism contract of the parallel engine); wall-clock
    speedup is only reported -- on a single-core box the pool cannot
    beat the sequential sweep, so any pass/fail threshold must be
    applied by the caller after checking :func:`cores_available`.
    """
    assert par_result.verdict == seq_result.verdict, (
        f"[{experiment}] {case}: verdict diverged "
        f"seq={seq_result.verdict} par={par_result.verdict}"
    )
    assert (par_result.stats.product_nodes_visited
            == seq_result.stats.product_nodes_visited), (
        f"[{experiment}] {case}: node counts diverged"
    )
    seq_s = seq_result.stats.wall_seconds
    par_s = par_result.stats.wall_seconds
    speedup = seq_s / par_s if par_s > 0 else float("inf")
    snapshot_metrics(experiment, f"{case} [seq]", seq_result)
    snapshot_metrics(experiment, f"{case} [par x{workers}]", par_result,
                     extra={"workers": workers, "speedup": speedup})
    print(
        f"[{experiment}] {case:42s} {seq_result.verdict:9s} "
        f"seq={seq_s:.3f}s par={par_s:.3f}s x{workers} workers "
        f"speedup={speedup:.2f} (cores={cores_available()})",
        file=sys.stderr,
    )
    return speedup
