"""Shared helpers for the experiment benchmarks.

Each ``bench_e*.py`` module reproduces one experiment row set from
DESIGN.md's per-experiment index (the paper has no numbered tables; the
experiments demonstrate its theorems and examples).  Benchmarks run under
``pytest benchmarks/ --benchmark-only``; each records wall time via the
``benchmark`` fixture and *asserts the expected verdicts*, so a benchmark
run doubles as an end-to-end correctness check.  The measured rows are
printed so EXPERIMENTS.md can be regenerated from the output.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass


@dataclass
class Row:
    """One reported experiment row."""

    experiment: str
    case: str
    verdict: str
    expected: str
    states: int
    seconds: float

    def render(self) -> str:
        ok = "ok" if self.verdict == self.expected else "MISMATCH"
        return (f"[{self.experiment}] {self.case:42s} "
                f"{self.verdict:9s} (expected {self.expected}; {ok}) "
                f"states={self.states:<7d} {self.seconds:.3f}s")


def report(row: Row) -> None:
    """Print a row (visible with pytest -s or in the captured log)."""
    print(row.render(), file=sys.stderr)


def record(experiment: str, case: str, result, expected_satisfied: bool
           ) -> Row:
    """Build + print a row from a VerificationResult and assert verdict."""
    expected = "SATISFIED" if expected_satisfied else "VIOLATED"
    row = Row(
        experiment=experiment,
        case=case,
        verdict=result.verdict,
        expected=expected,
        states=result.stats.system_states,
        seconds=result.stats.wall_seconds,
    )
    report(row)
    assert result.verdict == expected, row.render()
    return row
