"""E8: Theorem 4.5 -- data-aware conversation protocols.

Protocols whose symbols carry FO formulas over the out-queue schema
(Definition 4.4), checked on the loan composition:

* rating replies never carry an unknown category (holds);
* a free-variable protocol -- every rating request for an ssn is
  eventually answered *for that ssn* -- fails under lossy channels, with
  the valuation reported;
* an automaton-given data-aware protocol exercises complementation.
"""

import pytest

from repro.fo import parse_fo
from repro.library.loan import loan_composition, standard_database
from repro.ltl import (
    BuchiAutomaton, Edge, Guard, latom, lfinally, lglobally, limplies,
    lnot,
)
from repro.protocols import DataAwareProtocol, verify_aware
from repro.spec import PERFECT_BOUNDED
from repro.verifier import verification_domain

from harness import record


@pytest.fixture(scope="module")
def setup():
    composition = loan_composition()
    databases = standard_database("fair")
    domain = verification_domain(composition, [], databases, fresh_count=1)
    return composition, databases, domain


def test_rating_categories_protocol(benchmark, setup):
    composition, databases, domain = setup
    protocol = DataAwareProtocol(
        symbols={
            "bad_rating": parse_fo(
                'CR.!rating("s1", "unheard-of")', composition.schema
            ),
        },
        ltl=lglobally(lnot(latom("bad_rating"))),
    )

    def run():
        return verify_aware(composition, protocol, databases,
                            domain=domain)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record("E8", "ratings never carry unknown categories", result, True)


def test_request_answered_with_content(benchmark, setup):
    composition, databases, domain = setup
    protocol = DataAwareProtocol(
        symbols={
            "req": parse_fo("O.!getRating(s)", composition.schema),
            "rep": parse_fo("exists c: CR.!rating(s, c)",
                            composition.schema),
        },
        ltl=lglobally(limplies(latom("req"), lfinally(latom("rep")))),
    )

    def run():
        return verify_aware(composition, protocol, databases,
                            domain=domain)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record("E8", "per-ssn request/response, lossy channels",
           result, False)
    assert result.counterexample.valuation == {"s": "s1"}


def test_automaton_given_data_aware(benchmark, setup):
    composition, databases, domain = setup
    # deterministic automaton: the bad symbol never fires
    automaton = BuchiAutomaton(
        states={0}, initial={0},
        edges=[Edge(0, Guard(neg=frozenset({"bad"})), 0)],
        accepting={0}, aps={"bad"},
    )
    protocol = DataAwareProtocol(
        symbols={
            "bad": parse_fo('M.!decision("c1", "maybe")',
                            composition.schema),
        },
        automaton=automaton,
    )

    def run():
        return verify_aware(composition, protocol, databases,
                            domain=domain, semantics=PERFECT_BOUNDED)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record("E8", "automaton-given data-aware protocol", result, True)
