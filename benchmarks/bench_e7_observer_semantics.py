"""E7: Theorem 4.3 -- observer-at-source vs observer-at-recipient.

The distinguishing gadget: the receiver never consumes its 1-bounded
in-queue, so after the first delivery every further send is dropped at
the full queue.  The protocol "at most one message is ever observed"
(``G( q -> X G ~q )``) is then

* SATISFIED at the *recipient* (only the first send is ever enqueued),
* VIOLATED at the *source* (the sender may fire twice).

This is the semantic gap behind Theorem 4.3: the source observer sees
messages that no bounded lossy channel ever delivers, which is what makes
the source flavour undecidable in general.
"""

from repro.fo import Instance
from repro.protocols import AgnosticProtocol, Observer, verify_agnostic
from repro.spec import Composition, PERFECT_BOUNDED, PeerBuilder

from harness import record

AT_MOST_ONE = "G( q -> X G ~q )"


def make_gadget():
    sender = (
        PeerBuilder("S")
        .database("items", 1)
        .input("pick", 1)
        .flat_out_queue("q", 1)
        .input_rule("pick", ["x"], "items(x)")
        .send_rule("q", ["x"], "pick(x)")
        .build()
    )
    # the receiver declares the in-queue but no rule mentions it, so the
    # queue is never dequeued (Definition 2.4) and stays full forever
    receiver = (
        PeerBuilder("R")
        .flat_in_queue("q", 1)
        .state("idle", 0)
        .insert_rule("idle", [], "true")
        .build()
    )
    composition = Composition([sender, receiver])
    databases = {"S": Instance({"items": [("a",)]})}
    return composition, databases


def _run(observer):
    composition, databases = make_gadget()
    protocol = AgnosticProtocol.from_ltl(AT_MOST_ONE, observer=observer)
    return verify_agnostic(composition, protocol, databases,
                           semantics=PERFECT_BOUNDED)


def test_recipient_observer_satisfied(benchmark):
    result = benchmark.pedantic(_run, args=(Observer.RECIPIENT,),
                                rounds=1, iterations=1)
    record("E7", "at-most-one-message, observer at recipient",
           result, True)


def test_source_observer_violated(benchmark):
    result = benchmark.pedantic(_run, args=(Observer.SOURCE,),
                                rounds=1, iterations=1)
    record("E7", "at-most-one-message, observer at source",
           result, False)


def test_source_counterexample_shows_dropped_resend(benchmark):
    result = benchmark.pedantic(_run, args=(Observer.SOURCE,),
                                rounds=1, iterations=1)
    assert not result.satisfied
    states = result.counterexample.lasso.states()
    sends = [s for s in states if "q" in s.sent]
    drops = [s for s in sends if "q" not in s.enqueued]
    assert len(sends) >= 2
    assert drops, "the resend must have been dropped at the full queue"
    record("E7", "source counterexample: resend dropped at full queue",
           result, False)
