"""E14 (PR5): shared-exploration sweep -- cross-valuation reuse.

The shared engine interns global states, freezes the reachable snapshot
graph after the first valuation (sound by Theorem 3.4: the snapshot
graph does not depend on the valuation), and memoizes per-state letter
fragments across valuations.  Rows measured here:

* a wide loan sweep (>= 8 valuations of the letter property) run
  sequentially under both engines -- the shared engine must be at
  least ``REPRO_BENCH_MIN_SPEEDUP`` (default 3x) faster while agreeing
  node-for-node with the seed;
* the same sweep at ``--workers`` -- the driver pre-expands the graph
  once and ships the frozen CSR to the pool, so the run must show
  frozen-graph serving (``graph.reuse_hits``) and at most ONE full
  expansion (``product.states_expanded``), not one per worker;
* a quick parity row over the standard candidates for the CI smoke
  job.

All rows land in ``BENCH_PR5.json`` (see harness.snapshot_metrics).
"""

import os

import pytest

from repro.library.loan import (
    PROPERTY_LETTER_NEEDS_APPLICATION, STANDARD_CANDIDATES,
    loan_composition, standard_database,
)
from repro.obs import counters_snapshot
from repro.verifier import verification_domain, verify

from harness import bench_workers, record, record_speedup, snapshot_metrics

EXPERIMENT = "PR5"

#: Candidate pool for the wide sweep: every value is drawn from the
#: standard database's active domain, widened so the letter property is
#: checked under 180 canonical valuations (>= 8 required by the
#: experiment definition) -- enough for the cross-valuation caches to
#: amortise the one-off freeze.
WIDE_CANDIDATES = {
    "id": ("c1", "s1", "ann", "small", "acct1"),
    "name": ("ann", "c1", "small", "high"),
    "loan": ("small", "large", "c1", "fair"),
    "dec": ("approved", "denied", "large", "high"),
}


def _min_speedup() -> float:
    raw = os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "").strip()
    return float(raw) if raw else 3.0


def _sweep(engine: str, workers: int = 1,
           candidates=WIDE_CANDIDATES):
    composition = loan_composition()
    databases = standard_database("fair")
    domain = verification_domain(composition, [], databases,
                                 fresh_count=1)
    return verify(composition, PROPERTY_LETTER_NEEDS_APPLICATION,
                  databases, domain=domain,
                  valuation_candidates=candidates, workers=workers,
                  engine=engine)


def test_shared_vs_seed_sequential(benchmark):
    """The tentpole row: one frozen graph amortised over the sweep."""
    seed = _sweep("seed")
    shared = benchmark.pedantic(_sweep, args=("shared",),
                                rounds=1, iterations=1)
    assert seed.stats.valuations_checked >= 8
    speedup = record_speedup(
        EXPERIMENT, "loan letter sweep, shared vs seed", seed, shared,
        workers=1,
    )
    floor = _min_speedup()
    assert speedup >= floor, (
        f"shared engine only {speedup:.2f}x faster than seed "
        f"(required {floor:.1f}x): seed={seed.stats.wall_seconds:.3f}s "
        f"shared={shared.stats.wall_seconds:.3f}s"
    )


def test_workers_serve_frozen_graph(benchmark):
    """Workers walk the shipped CSR; nobody re-expands the graph."""
    before = counters_snapshot()
    workers = bench_workers()
    result = benchmark.pedantic(_sweep, args=("shared", workers),
                                rounds=1, iterations=1)
    after = counters_snapshot()
    record(EXPERIMENT, f"loan letter sweep, frozen graph x{workers}",
           result, True)

    reuse = after.get("graph.reuse_hits", 0) - before.get(
        "graph.reuse_hits", 0)
    expanded = after.get("product.states_expanded", 0) - before.get(
        "product.states_expanded", 0)
    snapshot_metrics(EXPERIMENT, f"frozen-graph counters x{workers}",
                     result, extra={"reuse_hits": reuse,
                                    "states_expanded": expanded,
                                    "workers": workers})
    assert reuse > 0, "no frozen-graph serving recorded"
    # One driver-side pre-expansion at most: re-expanding per worker
    # would show ~workers * |graph| here.
    assert expanded <= result.stats.system_states, (
        f"graph re-expanded: {expanded} states expanded for a "
        f"{result.stats.system_states}-state frozen graph"
    )


def test_quick_parity(benchmark):
    """CI smoke row: standard candidates, both engines, equal verdicts."""
    seed = _sweep("seed", candidates=STANDARD_CANDIDATES)
    shared = benchmark.pedantic(
        _sweep, kwargs={"engine": "shared",
                        "candidates": STANDARD_CANDIDATES},
        rounds=1, iterations=1,
    )
    record(EXPERIMENT, "loan letter, standard candidates [shared]",
           shared, True)
    assert shared.verdict == seed.verdict
    assert (shared.stats.product_nodes_visited
            == seed.stats.product_nodes_visited)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q", "--benchmark-only"]))
