"""Tests for the FO evaluator, including hypothesis equivalence with the
brute-force reference semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FormulaError
from repro.fo import (
    Instance, Var, answers, atom, conj, default_domain, disj, eq, evaluate,
    evaluate_naive, exists, forall, implies, neg,
)
from repro.fo.formulas import And, Atom, Eq, Exists, Forall, Not, Or

DOMAIN = ("a", "b", "c")


def inst(**relations):
    return Instance({k: v for k, v in relations.items()})


class TestBasics:
    def test_atom_truth(self):
        i = inst(r=[("a",)])
        assert evaluate(atom("r", "a"), i, DOMAIN)
        assert not evaluate(atom("r", "b"), i, DOMAIN)

    def test_equality(self):
        assert evaluate(eq("a", "a"), inst(), DOMAIN)
        assert not evaluate(eq("a", "b"), inst(), DOMAIN)

    def test_env_binding(self):
        i = inst(r=[("a",)])
        assert evaluate(atom("r", Var("x")), i, DOMAIN, {"x": "a"})
        assert not evaluate(atom("r", Var("x")), i, DOMAIN, {"x": "b"})

    def test_unbound_free_var_raises(self):
        with pytest.raises(FormulaError):
            evaluate(atom("r", Var("x")), inst(), DOMAIN)

    def test_exists(self):
        i = inst(r=[("b",)])
        assert evaluate(exists(["x"], atom("r", Var("x"))), i, DOMAIN)
        assert not evaluate(exists(["x"], atom("s", Var("x"))), i, DOMAIN)

    def test_forall(self):
        i = inst(r=[(v,) for v in DOMAIN])
        assert evaluate(forall(["x"], atom("r", Var("x"))), i, DOMAIN)
        j = inst(r=[("a",)])
        assert not evaluate(forall(["x"], atom("r", Var("x"))), j, DOMAIN)

    def test_negation_of_exists(self):
        f = neg(exists(["x"], atom("r", Var("x"))))
        assert evaluate(f, inst(), DOMAIN)

    def test_implication(self):
        f = forall(["x"], implies(atom("r", Var("x")), atom("s", Var("x"))))
        assert evaluate(f, inst(r=[("a",)], s=[("a",)]), DOMAIN)
        assert not evaluate(f, inst(r=[("a",)]), DOMAIN)

    def test_join_across_atoms(self):
        f = exists(["x", "y"], conj(
            atom("r", Var("x"), Var("y")), atom("s", Var("y")),
        ))
        assert evaluate(f, inst(r=[("a", "b")], s=[("b",)]), DOMAIN)
        assert not evaluate(f, inst(r=[("a", "b")], s=[("c",)]), DOMAIN)


class TestAnswers:
    def test_simple_selection(self):
        i = inst(r=[("a", "b"), ("b", "c")])
        result = answers(atom("r", Var("x"), Var("y")),
                         [Var("x"), Var("y")], i, DOMAIN)
        assert result == frozenset({("a", "b"), ("b", "c")})

    def test_projection_order(self):
        i = inst(r=[("a", "b")])
        result = answers(atom("r", Var("x"), Var("y")),
                         [Var("y"), Var("x")], i, DOMAIN)
        assert result == frozenset({("b", "a")})

    def test_unconstrained_head_var_ranges_over_domain(self):
        result = answers(atom("p"), [Var("x")], inst(p=[()]), DOMAIN)
        assert result == frozenset({(v,) for v in DOMAIN})

    def test_negation_in_body(self):
        i = inst(r=[("a",), ("b",)], bad=[("b",)])
        body = conj(atom("r", Var("x")), neg(atom("bad", Var("x"))))
        assert answers(body, [Var("x")], i, DOMAIN) == frozenset({("a",)})

    def test_disjunctive_body(self):
        i = inst(r=[("a",)], s=[("b",)])
        body = disj(atom("r", Var("x")), atom("s", Var("x")))
        assert answers(body, [Var("x")], i, DOMAIN) == frozenset(
            {("a",), ("b",)}
        )

    def test_false_body(self):
        from repro.fo import FALSE
        assert answers(FALSE, [Var("x")], inst(), DOMAIN) == frozenset()

    def test_equality_guard(self):
        body = conj(atom("r", Var("x")), eq(Var("x"), "a"))
        i = inst(r=[("a",), ("b",)])
        assert answers(body, [Var("x")], i, DOMAIN) == frozenset({("a",)})


class TestDefaultDomain:
    def test_includes_adom_constants_and_extra(self):
        f = eq(Var("x"), "zz")
        i = inst(r=[("a",)])
        dom = default_domain(f, i, extra=["q"])
        assert set(dom) == {"a", "zz", "q"}


# -- property-based equivalence with the reference semantics ---------------

_values = st.sampled_from(["a", "b", "c"])
_varnames = st.sampled_from(["x", "y", "z"])


def _terms():
    return st.one_of(
        _varnames.map(Var),
        _values.map(lambda v: __import__(
            "repro.fo.terms", fromlist=["Const"]).Const(v)),
    )


def _formulas(depth=3):
    base = st.one_of(
        st.tuples(st.sampled_from(["r", "s"]), _terms(), _terms()).map(
            lambda t: Atom(t[0], (t[1], t[2]))
        ),
        st.tuples(_terms(), _terms()).map(lambda t: Eq(*t)),
    )
    if depth == 0:
        return base
    sub = _formulas(depth - 1)
    return st.one_of(
        base,
        sub.map(Not),
        st.tuples(sub, sub).map(lambda t: And(t)),
        st.tuples(sub, sub).map(lambda t: Or(t)),
        st.tuples(_varnames, sub).map(
            lambda t: Exists((Var(t[0]),), t[1])
        ),
        st.tuples(_varnames, sub).map(
            lambda t: Forall((Var(t[0]),), t[1])
        ),
    )


_instances = st.builds(
    lambda r_rows, s_rows: Instance({"r": r_rows, "s": s_rows}),
    st.lists(st.tuples(_values, _values), max_size=4),
    st.lists(st.tuples(_values, _values), max_size=4),
)


@given(formula=_formulas(), instance=_instances,
       env_vals=st.tuples(_values, _values, _values))
@settings(max_examples=200, deadline=None)
def test_evaluator_matches_reference(formula, instance, env_vals):
    """The optimized evaluator agrees with the brute-force semantics."""
    env = dict(zip(["x", "y", "z"], env_vals))
    fast = evaluate(formula, instance, DOMAIN, env)
    slow = evaluate_naive(formula, instance, DOMAIN, env)
    assert fast == slow


@given(formula=_formulas(depth=2), instance=_instances)
@settings(max_examples=100, deadline=None)
def test_answers_matches_pointwise_evaluation(formula, instance):
    """answers() returns exactly the satisfying head tuples."""
    from repro.fo.formulas import free_vars
    head = sorted(free_vars(formula), key=lambda v: v.name)
    result = answers(formula, head, instance, DOMAIN)
    import itertools
    for combo in itertools.product(DOMAIN, repeat=len(head)):
        env = {v.name: c for v, c in zip(head, combo)}
        expected = evaluate_naive(formula, instance, DOMAIN, env)
        assert (tuple(combo) in result) == expected
