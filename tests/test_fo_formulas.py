"""Unit tests for FO formula construction and structural queries."""

import pytest

from repro.errors import FormulaError
from repro.fo import (
    And, Atom, Const, Eq, Exists, FALSE, Forall, Implies, Not, Or, TRUE,
    Var, all_vars, atom, atoms, conj, constants, disj, eq, exists, forall,
    free_vars, implies, instantiate, is_existential_prenex, is_ground_atom,
    neg, relations, substitute, walk,
)


class TestConstructors:
    def test_atom_lifts_values(self):
        a = atom("r", "x-is-a-value-here-no", Var("y"), 3)
        assert isinstance(a.terms[0], Const)
        assert isinstance(a.terms[1], Var)
        assert isinstance(a.terms[2], Const)

    def test_neg_collapses_double_negation(self):
        a = atom("r", Var("x"))
        assert neg(neg(a)) == a

    def test_neg_constants(self):
        assert neg(TRUE) == FALSE
        assert neg(FALSE) == TRUE

    def test_conj_flattens(self):
        a, b, c = atom("a"), atom("b"), atom("c")
        f = conj(conj(a, b), c)
        assert isinstance(f, And)
        assert len(f.children) == 3

    def test_conj_units(self):
        a = atom("a")
        assert conj(TRUE, a) == a
        assert conj(FALSE, a) == FALSE
        assert conj() == TRUE

    def test_disj_units(self):
        a = atom("a")
        assert disj(FALSE, a) == a
        assert disj(TRUE, a) == TRUE
        assert disj() == FALSE

    def test_quantifier_requires_variables(self):
        assert exists([], atom("a")) == atom("a")
        with pytest.raises(FormulaError):
            Exists((), atom("a"))

    def test_quantifier_rejects_repeats(self):
        with pytest.raises(FormulaError):
            Forall((Var("x"), Var("x")), atom("a"))


class TestStructure:
    def setup_method(self):
        self.f = forall(
            ["x"],
            implies(
                atom("r", Var("x")),
                exists(["y"], conj(atom("s", Var("x"), Var("y")),
                                   eq(Var("y"), "c"))),
            ),
        )

    def test_walk_visits_all(self):
        kinds = {type(n).__name__ for n in walk(self.f)}
        assert {"Forall", "Implies", "Atom", "Exists", "And", "Eq"} <= kinds

    def test_atoms(self):
        assert {a.rel for a in atoms(self.f)} == {"r", "s"}

    def test_relations(self):
        assert relations(self.f) == frozenset({"r", "s"})

    def test_constants(self):
        assert constants(self.f) == frozenset({"c"})

    def test_free_vars_closed(self):
        assert free_vars(self.f) == frozenset()

    def test_free_vars_open(self):
        inner = conj(atom("r", Var("x")), atom("s", Var("y")))
        assert free_vars(exists(["y"], inner)) == frozenset({Var("x")})

    def test_all_vars(self):
        assert {v.name for v in all_vars(self.f)} == {"x", "y"}


class TestSubstitution:
    def test_substitute_free(self):
        f = atom("r", Var("x"), Var("y"))
        g = substitute(f, {Var("x"): Const("a")})
        assert g == atom("r", "a", Var("y"))

    def test_substitute_respects_binding(self):
        f = exists(["x"], atom("r", Var("x"), Var("y")))
        g = substitute(f, {Var("x"): Const("a"), Var("y"): Const("b")})
        # bound x untouched, free y replaced
        assert g == exists(["x"], atom("r", Var("x"), "b"))

    def test_instantiate(self):
        f = eq(Var("x"), Var("y"))
        g = instantiate(f, {Var("x"): 1, Var("y"): 2})
        assert g == eq(1, 2)

    def test_capture_detected(self):
        f = exists(["x"], atom("r", Var("x"), Var("y")))
        with pytest.raises(FormulaError):
            substitute(f, {Var("y"): Var("x")})


class TestShapes:
    def test_ground_atom(self):
        assert is_ground_atom(atom("r", "a", 1))
        assert not is_ground_atom(atom("r", Var("x")))

    def test_existential_prenex_accepts(self):
        f = exists(["x", "y"], conj(atom("r", Var("x")), atom("s", Var("y"))))
        assert is_existential_prenex(f)

    def test_existential_prenex_accepts_quantifier_free(self):
        assert is_existential_prenex(atom("r", Var("x")))

    def test_existential_prenex_rejects_inner_forall(self):
        f = exists(["x"], forall(["y"], atom("r", Var("x"), Var("y"))))
        assert not is_existential_prenex(f)

    def test_existential_prenex_rejects_nested_exists(self):
        f = conj(atom("a"), exists(["x"], atom("r", Var("x"))))
        assert not is_existential_prenex(f)
