"""Unit tests for relational instances."""

import pytest

from repro.errors import SchemaError
from repro.fo import (
    Instance, RelationKind, RelationSymbol, Schema, empty_instance,
    validate_against,
)


class TestConstruction:
    def test_empty(self):
        inst = Instance()
        assert inst["anything"] == frozenset()

    def test_rows_frozen(self):
        inst = Instance({"r": [("a", 1), ("b", 2)]})
        assert inst["r"] == frozenset({("a", 1), ("b", 2)})

    def test_duplicate_rows_collapse(self):
        inst = Instance({"r": [("a",), ("a",)]})
        assert len(inst["r"]) == 1

    def test_rejects_non_values(self):
        with pytest.raises(SchemaError):
            Instance({"r": [(1.5,)]})

    def test_schema_validates_arity(self):
        schema = Schema([RelationSymbol("r", 2, RelationKind.DATABASE)])
        with pytest.raises(SchemaError):
            Instance({"r": [("a",)]}, schema=schema)

    def test_schema_fills_missing_relations(self):
        schema = Schema([RelationSymbol("r", 1, RelationKind.DATABASE)])
        inst = Instance({}, schema=schema)
        assert "r" in inst

    def test_schema_rejects_unknown(self):
        schema = Schema([])
        with pytest.raises(SchemaError):
            Instance({"r": [("a",)]}, schema=schema)


class TestEqualityHashing:
    def test_empty_relations_ignored_in_equality(self):
        assert Instance({"r": []}) == Instance({})

    def test_hash_consistency(self):
        a = Instance({"r": [("x",)], "s": []})
        b = Instance({"r": [("x",)]})
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert Instance({"r": [("x",)]}) != Instance({"r": [("y",)]})

    def test_from_frozen_matches_regular(self):
        regular = Instance({"r": [("x",)]})
        fast = Instance._from_frozen({"r": frozenset({("x",)})})
        assert regular == fast
        assert hash(regular) == hash(fast)


class TestQueries:
    def test_truth_propositional(self):
        assert Instance({"p": [()]}).truth("p")
        assert not Instance({"p": []}).truth("p")
        assert not Instance().truth("p")

    def test_active_domain(self):
        inst = Instance({"r": [("a", 1)], "s": [("b",)]})
        assert inst.active_domain() == frozenset({"a", 1, "b"})

    def test_total_rows(self):
        inst = Instance({"r": [("a",), ("b",)], "s": [("c",)]})
        assert inst.total_rows() == 3


class TestCopies:
    def test_updated(self):
        inst = Instance({"r": [("a",)]}).updated("r", [("b",)])
        assert inst["r"] == frozenset({("b",)})

    def test_with_truth(self):
        inst = Instance().with_truth("p", True)
        assert inst.truth("p")
        assert not inst.with_truth("p", False).truth("p")

    def test_merged_other_wins(self):
        a = Instance({"r": [("a",)], "keep": [("k",)]})
        b = Instance({"r": [("b",)]})
        merged = a.merged(b)
        assert merged["r"] == frozenset({("b",)})
        assert merged["keep"] == frozenset({("k",)})

    def test_restricted(self):
        inst = Instance({"r": [("a",)], "s": [("b",)]}).restricted(["r"])
        assert inst["s"] == frozenset()
        assert inst["r"]

    def test_qualified(self):
        inst = Instance({"r": [("a",)]}).qualified("P")
        assert inst["P.r"] == frozenset({("a",)})
        assert inst["r"] == frozenset()


class TestValidation:
    def test_validate_against_passes(self):
        schema = Schema([RelationSymbol("r", 1, RelationKind.DATABASE)])
        validate_against(Instance({"r": [("a",)]}), schema)

    def test_validate_against_bad_arity(self):
        schema = Schema([RelationSymbol("r", 2, RelationKind.DATABASE)])
        with pytest.raises(SchemaError):
            validate_against(Instance({"r": [("a",)]}), schema)

    def test_empty_instance_helper(self):
        schema = Schema([RelationSymbol("r", 1, RelationKind.DATABASE)])
        assert empty_instance(schema)["r"] == frozenset()
