"""Tests for the executable halting reduction (Theorem 3.7 family).

The demonstrated direction: a machine halts within the space the domain
affords iff the verifier finds a (validated) halting run as a property
violation.
"""

import pytest

from repro.ib import check_composition
from repro.reductions import (
    count_up_down, diverging_machine, halting_search_property,
    machine_composition, machine_databases, run_machine, transfer_machine,
)
from repro.spec import DETERMINISTIC_LOSSY, PERFECT_BOUNDED
from repro.verifier import verification_domain, verify


def check_machine(machine, fresh, semantics=PERFECT_BOUNDED):
    comp = machine_composition(machine)
    prop = halting_search_property(machine)
    dom = verification_domain(comp, [prop], machine_databases(),
                              fresh_count=fresh)
    return verify(comp, prop, machine_databases(), semantics=semantics,
                  domain=dom, check_input_bounded=False)


class TestGadgetStructure:
    def test_composition_is_input_bounded(self):
        comp = machine_composition(count_up_down(1))
        assert check_composition(comp) == []

    def test_two_peers_two_channels(self):
        comp = machine_composition(count_up_down(1))
        assert {p.name for p in comp.peers} == {"Driver", "Clock"}
        assert {c.name for c in comp.channels} == {"tick", "tock"}
        assert comp.is_closed


class TestHaltingDirection:
    def test_halting_machine_yields_violation(self):
        run = run_machine(count_up_down(1))
        assert run.halted
        r = check_machine(count_up_down(1), fresh=run.peak_space + 1)
        assert not r.satisfied  # violation == halting witness

    def test_witness_simulates_the_machine(self):
        machine = count_up_down(1)
        r = check_machine(machine, fresh=2)
        lasso = r.counterexample.lasso
        halted_states = [
            s for s in lasso.states() if s.data["Driver.halted"]
        ]
        assert halted_states

    def test_transfer_machine(self):
        run = run_machine(transfer_machine(1))
        r = check_machine(transfer_machine(1), fresh=run.peak_space + 1)
        assert not r.satisfied

    def test_deterministic_send_semantics_also_finds_witness(self):
        # Theorem 3.8's semantics: same gadget, deterministic lossy queues
        r = check_machine(count_up_down(1), fresh=2,
                          semantics=DETERMINISTIC_LOSSY)
        assert not r.satisfied


class TestNonHaltingDirection:
    def test_diverging_machine_no_witness_in_bounded_domain(self):
        r = check_machine(diverging_machine(), fresh=2)
        assert r.satisfied  # exhaustive search, no halting run

    def test_insufficient_space_finds_no_witness(self):
        # count_up_down(3) needs 3 chain values; with only 1 usable fresh
        # value (plus constants barred by validation) the simulation
        # cannot reach halt
        machine = count_up_down(3)
        comp = machine_composition(machine)
        prop = halting_search_property(machine)
        from repro.verifier.domain import VerificationDomain
        dom = verification_domain(comp, [prop], {}, fresh_count=1)
        r = verify(comp, prop, {}, semantics=PERFECT_BOUNDED, domain=dom,
                   check_input_bounded=False)
        assert r.satisfied
