"""Tests for the live progress plane (repro.obs.live): heartbeat
writing, gating, and the reader side `repro top` consumes."""

import json
import os

import pytest

from repro.obs import ledger, live


@pytest.fixture(autouse=True)
def _runs_root(tmp_path, monkeypatch):
    monkeypatch.setenv(live.RUN_DIR_ENV, str(tmp_path / "runs"))
    monkeypatch.delenv(live.HEARTBEAT_ENV, raising=False)
    monkeypatch.delenv(ledger.RUN_ID_ENV, raising=False)
    ledger.end_run()
    yield
    ledger.end_run()


class TestGating:
    def test_no_run_no_heartbeats(self):
        progress = live.sweep_progress(10)
        assert progress is live.NULL_PROGRESS
        assert not progress.enabled

    def test_active_run_enables(self):
        ledger.begin_run(run_id="r-live-01")
        progress = live.sweep_progress(10)
        assert progress.enabled
        progress.finish()

    def test_env_kill_switch(self, monkeypatch):
        ledger.begin_run(run_id="r-live-02")
        for value in ("0", "false", "off", "no"):
            monkeypatch.setenv(live.HEARTBEAT_ENV, value)
            assert live.sweep_progress(10) is live.NULL_PROGRESS
        monkeypatch.setenv(live.HEARTBEAT_ENV, "1")
        assert live.sweep_progress(10).enabled

    def test_unwritable_root_degrades(self, monkeypatch):
        ledger.begin_run(run_id="r-live-03")
        monkeypatch.setenv(live.RUN_DIR_ENV, "/proc/definitely/not/ok")
        assert live.sweep_progress(10) is live.NULL_PROGRESS

    def test_null_progress_accepts_all_calls(self):
        p = live.NULL_PROGRESS
        p.advance(3, violated=1)
        p.add_counters({"x": 1})
        p.set_info(workers=4)
        p.tick(force=True)
        p.reset()
        p.finish("cancelled")


class TestHeartbeatRecords:
    def _plane(self, total=20, kind="sweep"):
        ledger.begin_run(run_id="r-hb-01")
        return live._make(kind, total)

    def test_record_schema(self):
        progress = self._plane()
        progress.advance(5, violated=2)
        progress.set_info(workers=4, spec=None)
        progress.finish()
        record = live.read_progress("r-hb-01")
        assert record["schema"] == live.HEARTBEAT_SCHEMA
        assert record["run"] == "r-hb-01"
        assert record["kind"] == "sweep"
        assert record["status"] == "done"
        assert record["pid"] == os.getpid()
        assert record["total"] == 20
        assert record["done"] == 5
        assert record["counters"] == {"violated": 2}
        # None-valued info fields are dropped, not rendered as "None"
        assert record["info"] == {"workers": 4}
        assert record["elapsed"] > 0

    def test_eta_needs_progress_and_total(self):
        progress = self._plane(total=10)
        first = live.read_progress("r-hb-01")
        assert first["rate"] is None and first["eta_seconds"] is None
        progress.advance(5)
        progress.tick(force=True)
        running = live.read_progress("r-hb-01")
        assert running["rate"] > 0
        assert running["eta_seconds"] >= 0
        progress.finish()
        assert live.read_progress("r-hb-01")["eta_seconds"] is None

    def test_heartbeat_history_appends(self):
        progress = self._plane()
        progress.advance(1)
        progress.tick(force=True)
        progress.finish()
        lines = (live.run_dir("r-hb-01") / "heartbeat.jsonl"
                 ).read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) >= 3  # creation + forced tick + finish
        assert records[-1]["status"] == "done"
        dones = [r["done"] for r in records]
        assert dones == sorted(dones)

    def test_rate_limit_suppresses_writes(self):
        progress = self._plane()
        progress.interval = 3600.0
        before = (live.run_dir("r-hb-01")
                  / "heartbeat.jsonl").read_text().count("\n")
        for _ in range(50):
            progress.advance(1)
        after = (live.run_dir("r-hb-01")
                 / "heartbeat.jsonl").read_text().count("\n")
        assert after == before  # all inside the interval window
        progress.finish()  # finish always writes
        assert (live.run_dir("r-hb-01")
                / "heartbeat.jsonl").read_text().count("\n") == after + 1

    def test_reset_starts_over(self):
        progress = self._plane()
        progress.advance(7, violated=3)
        progress.reset()
        progress.finish()
        record = live.read_progress("r-hb-01")
        assert record["done"] == 0
        assert record["counters"] == {}


class TestReaders:
    def test_list_runs_newest_first(self):
        ledger.begin_run(run_id="r-old")
        live.sweep_progress(5).finish()
        ledger.begin_run(run_id="r-new")
        plane = live.sweep_progress(5)
        plane.advance(1)
        plane.finish()
        runs = live.list_runs()
        assert [r["run"] for r in runs][0] == "r-new"
        assert {r["run"] for r in runs} == {"r-old", "r-new"}
        assert live.latest_run() == "r-new"

    def test_missing_run_reads_none(self):
        assert live.read_progress("r-nope") is None
        assert live.list_runs() == []
        assert live.latest_run() is None

    def test_render_progress(self):
        record = {
            "schema": live.HEARTBEAT_SCHEMA, "run": "r-render", "kind":
            "sweep", "status": "running", "pid": 123, "total": 10,
            "done": 5, "elapsed": 2.0, "rate": 2.5, "eta_seconds": 2.0,
            "started": 0.0, "updated": 0.0,
            "counters": {"violated": 1}, "info": {"workers": 4},
        }
        import time as time_mod
        record["updated"] = time_mod.time()
        text = live.render_progress(record)
        assert "r-render" in text
        assert "50.0%" in text
        assert "5/10" in text
        assert "workers=4" in text
        assert "violated=1" in text
        assert "stale" not in text
        record["updated"] -= 100
        assert "stale" in live.render_progress(record)

    def test_bar_width(self):
        assert live._bar(0, None) == "-" * 30
        assert live._bar(5, 10, width=10) == "#####-----"
        assert live._bar(99, 10, width=10) == "#" * 10
