"""Tests for the run ledger (repro.obs.ledger): run-id lifecycle,
cross-process propagation, and trace stitching.

The stitch tests build JSONL streams by hand -- different files,
different pids, deliberately skewed monotonic clocks -- and assert the
``stream-start`` anchors put everything back on one wall-clock axis
with the driver/worker hierarchy intact.
"""

import json

import pytest

from repro.obs import REGISTRY, configure_tracing
from repro.obs import ledger
from repro.obs import trace as trace_mod


@pytest.fixture(autouse=True)
def _clean_ledger(monkeypatch):
    monkeypatch.delenv(ledger.RUN_ID_ENV, raising=False)
    REGISTRY.reset()
    configure_tracing(None)
    ledger.end_run()
    yield
    configure_tracing(None)
    ledger.end_run()
    REGISTRY.reset()


class TestRunLifecycle:
    def test_no_run_by_default(self):
        assert ledger.current_run() is None
        assert ledger.current_run_id() is None

    def test_begin_mints_sortable_id(self):
        ctx = ledger.begin_run()
        assert ctx.run_id.startswith("r-")
        assert ledger.current_run_id() == ctx.run_id
        # fresh ids do not collide
        other = ledger.begin_run()
        assert other.run_id != ctx.run_id

    def test_begin_adopts_env_id(self, monkeypatch):
        monkeypatch.setenv(ledger.RUN_ID_ENV, "r-envtest-01")
        ctx = ledger.begin_run()
        assert ctx.run_id == "r-envtest-01"

    def test_explicit_id_beats_env(self, monkeypatch):
        monkeypatch.setenv(ledger.RUN_ID_ENV, "r-envtest-01")
        ctx = ledger.begin_run(run_id="r-explicit-02")
        assert ctx.run_id == "r-explicit-02"

    def test_end_run_clears_context_and_stamp(self):
        ledger.begin_run()
        ledger.end_run()
        assert ledger.current_run() is None
        assert trace_mod.stamp() == {}

    def test_metrics_snapshot_carries_run_id(self):
        snap = REGISTRY.snapshot()
        assert "run" not in snap
        ctx = ledger.begin_run()
        snap = REGISTRY.snapshot()
        assert snap["run"] == ctx.run_id

    def test_set_shard_restamps(self):
        ctx = ledger.begin_run(run_id="r-shardtest")
        assert ctx.shard is None
        ctx = ledger.set_shard((1, 4))
        assert ctx.shard == (1, 4)
        assert trace_mod.stamp() == {"run": "r-shardtest", "shard": "1/4"}

    def test_set_shard_without_run_is_noop(self):
        assert ledger.set_shard((0, 2)) is None


class TestStampPropagation:
    def test_events_carry_run_stamp(self, tmp_path):
        path = tmp_path / "t.jsonl"
        ctx = ledger.begin_run(run_id="r-stamp-01")
        configure_tracing(str(path))
        trace_mod.instant("note")
        configure_tracing(None)
        events = [json.loads(line)
                  for line in path.read_text().splitlines() if line]
        assert all(ev["run"] == "r-stamp-01" for ev in events)
        assert ctx.stamp() == {"run": "r-stamp-01"}

    def test_worker_stamp_has_index(self):
        ctx = ledger.begin_run(run_id="r-w", role="worker", worker=3,
                               shard=(0, 2))
        assert ctx.stamp() == {"run": "r-w", "worker": 3, "shard": "0/2"}

    def test_bootstrap_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        ledger.begin_run(run_id="r-boot-01", shard=(1, 2))
        configure_tracing(str(path))
        boot = ledger.worker_bootstrap(worker=2)
        assert boot == {"run_id": "r-boot-01", "shard": (1, 2),
                        "worker": 2, "trace_path": str(path)}
        # simulate a spawn worker: fresh module state, then adopt
        configure_tracing(None)
        ledger.end_run()
        ctx = ledger.adopt_worker(boot)
        assert ctx.role == "worker"
        assert ctx.worker == 2
        assert ctx.shard == (1, 2)
        assert ledger.current_run_id() == "r-boot-01"
        assert trace_mod.tracing_enabled()
        trace_mod.instant("from-worker")
        configure_tracing(None)
        events = [json.loads(line)
                  for line in path.read_text().splitlines() if line]
        workers = [ev for ev in events if ev["name"] == "from-worker"]
        assert workers and workers[0]["worker"] == 2
        # adoption appended; the driver's opening anchor survived
        assert events[0]["name"] == "stream-start"

    def test_adopt_none_bootstrap_is_noop(self):
        assert ledger.adopt_worker(None) is None
        assert ledger.adopt_worker({"run_id": None,
                                    "trace_path": None}) is None


def _write_stream(path, pid, wall0, events, run="r-stitch",
                  worker=None, append=False):
    """A hand-built repro.trace/2 stream: anchor + events.

    *events* are (ts, ph, name) with ts in the stream's private
    monotonic clock; the anchor maps ts=0.0 to epoch *wall0*.
    """
    lines = []
    anchor = {"ts": 0.0, "pid": pid, "tid": pid, "ph": "I",
              "name": "stream-start", "run": run,
              "args": {"schema": trace_mod.SCHEMA, "wall": wall0}}
    if worker is not None:
        anchor["worker"] = worker
    lines.append(anchor)
    for ts, ph, name in events:
        ev = {"ts": ts, "pid": pid, "tid": pid, "ph": ph, "name": name,
              "run": run}
        if worker is not None:
            ev["worker"] = worker
        lines.append(ev)
    mode = "a" if append else "w"
    with open(path, mode) as fh:
        for ev in lines:
            fh.write(json.dumps(ev) + "\n")


class TestStitch:
    def test_clock_alignment_across_files(self, tmp_path):
        # driver's monotonic clock starts at 1000, worker's at 5 --
        # only the wall anchors can order them correctly
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _write_stream(a, pid=10, wall0=100.0,
                      events=[(2.0, "B", "search"), (6.0, "E", "search")])
        _write_stream(b, pid=20, wall0=103.0, worker=0,
                      events=[(5.0, "B", "task"), (6.0, "E", "task")])
        stitched = ledger.stitch([a, b])
        walls = {(e["pid"], e["name"], e["ph"]): e["wall"]
                 for e in stitched.events}
        assert walls[(10, "search", "B")] == pytest.approx(102.0)
        assert walls[(20, "task", "B")] == pytest.approx(108.0)
        # causal order interleaves the two files on the wall axis
        order = [(e["pid"], e["name"], e["ph"]) for e in stitched.events
                 if e["name"] != "stream-start"]
        assert order == [(10, "search", "B"), (10, "search", "E"),
                         (20, "task", "B"), (20, "task", "E")]

    def test_processes_and_run_ids(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        _write_stream(a, pid=10, wall0=50.0,
                      events=[(1.0, "B", "search"), (2.0, "E", "search")])
        _write_stream(b, pid=20, wall0=50.5, worker=1,
                      events=[(1.0, "I", "note")])
        stitched = ledger.stitch([a, b])
        assert stitched.run_ids == ("r-stitch",)
        assert stitched.driver_pids() == [10]
        assert stitched.worker_pids() == [20]
        assert stitched.processes[20]["worker"] == 1

    def test_corrupt_lines_counted_not_fatal(self, tmp_path):
        a = tmp_path / "a.jsonl"
        _write_stream(a, pid=10, wall0=1.0,
                      events=[(1.0, "I", "ok")])
        with open(a, "a") as fh:
            fh.write('{"ts": 2.0, "pid": 10, "tid": 10, "ph": "I", "na')
            fh.write("\nnot json at all\n")
            fh.write('[1, 2, 3]\n')  # json, but not an event dict
        stitched = ledger.stitch([a])
        assert stitched.corrupt_lines == 3
        assert {e["name"] for e in stitched.events} == {
            "stream-start", "ok"}

    def test_forest_nests_and_force_closes(self, tmp_path):
        a = tmp_path / "a.jsonl"
        _write_stream(a, pid=10, wall0=0.0,
                      events=[(1.0, "B", "search"),
                              (2.0, "B", "expand"),
                              (3.0, "E", "expand"),
                              (4.0, "B", "expand")])  # never closed
        stitched = ledger.stitch([a])
        (root,) = stitched.roots
        assert root.name == "search"
        assert [c.name for c in root.children] == ["expand", "expand"]
        assert root.children[0].duration == pytest.approx(1.0)
        # killed mid-span: force-closed at the stream's last timestamp
        assert root.children[1].end == pytest.approx(4.0)
        assert root.end == pytest.approx(4.0)

    def test_driver_forest_sorts_before_workers(self, tmp_path):
        a = tmp_path / "a.jsonl"
        _write_stream(a, pid=30, wall0=0.0, worker=1,
                      events=[(1.0, "B", "task"), (2.0, "E", "task")])
        _write_stream(a, pid=10, wall0=0.5,
                      events=[(1.0, "B", "search"), (2.0, "E", "search")],
                      append=True)
        stitched = ledger.stitch([a])
        assert [s.name for s in stitched.roots] == ["search", "task"]
        assert stitched.roots[1].worker == 1

    def test_unanchored_stream_borrows_file_anchor(self, tmp_path):
        # a pre-/2 worker stream in the same file as an anchored driver
        a = tmp_path / "a.jsonl"
        _write_stream(a, pid=10, wall0=200.0,
                      events=[(1.0, "I", "drv")])
        with open(a, "a") as fh:
            fh.write(json.dumps({"ts": 3.0, "pid": 99, "tid": 99,
                                 "ph": "I", "name": "old"}) + "\n")
        stitched = ledger.stitch([a])
        wall = {e["name"]: e["wall"] for e in stitched.events}
        assert wall["old"] == pytest.approx(203.0)

    def test_file_with_no_anchor_keeps_raw_ts(self, tmp_path):
        a = tmp_path / "a.jsonl"
        with open(a, "w") as fh:
            fh.write(json.dumps({"ts": 7.0, "pid": 1, "tid": 1,
                                 "ph": "I", "name": "bare"}) + "\n")
        stitched = ledger.stitch([a])
        assert stitched.events[0]["wall"] == pytest.approx(7.0)
        assert stitched.run_ids == ()
