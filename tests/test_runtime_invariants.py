"""Property-based invariants of the operational semantics.

Random simulations across seeds and semantics configurations must respect
the structural invariants of Definitions 2.3-2.6: queue bounds, event
consistency, database immutability, input legality.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fo import Instance
from repro.runtime import simulate, snapshot_view
from repro.spec import ChannelSemantics, FlatSendDiscipline

DB = {"S": Instance({"items": [("a",), ("b",)]})}
DOMAIN = ("a", "b")

_semantics = st.builds(
    ChannelSemantics,
    lossy=st.booleans(),
    queue_bound=st.integers(min_value=1, max_value=3),
    flat_send=st.sampled_from(list(FlatSendDiscipline)),
)


@given(seed=st.integers(min_value=0, max_value=10_000),
       semantics=_semantics)
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_simulation_invariants(sender_receiver, sender_receiver_db,
                               seed, semantics):
    trace = simulate(sender_receiver, sender_receiver_db, DOMAIN,
                     steps=12, seed=seed, semantics=semantics)
    initial_db = trace[0].data["S.items"]
    for state in trace:
        # queue bound respected
        for _name, contents in state.queues:
            assert len(contents) <= semantics.queue_bound
        # enqueued channels were also sent into
        assert state.enqueued <= state.sent
        # the database never changes (Definition 2.4)
        assert state.data["S.items"] == initial_db
        # input holds at most one tuple (Definition 2.3)
        assert len(state.data["S.pick"]) <= 1
        # the empty_Q view matches the queue
        view = snapshot_view(state, sender_receiver)
        assert view.truth("R.empty_msg") == (not state.queue("msg"))
        # mover is a declared peer (or None initially)
        assert state.mover in (None, "S", "R")


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_perfect_channels_never_lose_between_send_and_enqueue(
        sender_receiver, sender_receiver_db, seed):
    semantics = ChannelSemantics(lossy=False, queue_bound=2)
    trace = simulate(sender_receiver, sender_receiver_db, DOMAIN,
                     steps=12, seed=seed, semantics=semantics)
    for prev, cur in zip(trace, trace[1:]):
        for channel in cur.sent:
            if channel not in cur.enqueued:
                # the only legal reason: the queue was already full
                assert len(prev.queue(channel)) >= semantics.queue_bound


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_messages_preserve_fifo_order(nested_pair, nested_pair_db, seed):
    semantics = ChannelSemantics(lossy=False, queue_bound=3)
    trace = simulate(nested_pair, nested_pair_db, DOMAIN,
                     steps=12, seed=seed, semantics=semantics)
    for prev, cur in zip(trace, trace[1:]):
        for name, contents in cur.queues:
            prev_contents = prev.queue(name)
            if len(contents) >= len(prev_contents) and prev_contents:
                # no reordering: the old tail is a prefix-after-dequeue
                # of the new contents
                assert contents[:len(prev_contents)] == prev_contents \
                    or contents[:len(prev_contents) - 1] == \
                    prev_contents[1:]


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_prev_input_only_moves_forward(sender_receiver, sender_receiver_db,
                                       seed):
    trace = simulate(sender_receiver, sender_receiver_db, DOMAIN,
                     steps=12, seed=seed)
    last_nonempty = None
    for prev, cur in zip(trace, trace[1:]):
        if cur.mover == "S":
            if prev.data["S.pick"]:
                last_nonempty = prev.data["S.pick"]
            if last_nonempty is not None:
                assert cur.data["S.prev_pick"] == last_nonempty
