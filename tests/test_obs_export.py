"""Tests for the exporters (repro.obs.export): Chrome trace JSON and
Prometheus text exposition.

The Chrome tests pin the trace-event fields Perfetto actually consumes
(ph/ts/pid/tid, metadata process names, instant scope); the Prometheus
tests pin the exposition contract -- counter ``_total`` suffix,
cumulative ``le`` buckets, phase labels -- that a scraper would parse.
"""

import json

import pytest

from repro.obs import REGISTRY, configure_tracing, counter, gauge, phase
from repro.obs import ledger
from repro.obs import trace as trace_mod
from repro.obs.export import (
    chrome_trace_document, chrome_trace_events, convert_trace_files,
    extract_registry_snapshot, render_prometheus, _prom_name, _prom_value,
)


@pytest.fixture(autouse=True)
def _clean(monkeypatch):
    monkeypatch.delenv(ledger.RUN_ID_ENV, raising=False)
    REGISTRY.reset()
    configure_tracing(None)
    ledger.end_run()
    yield
    configure_tracing(None)
    ledger.end_run()
    REGISTRY.reset()


def _trace_file(tmp_path, name="t.jsonl", run_id="r-export-01"):
    path = tmp_path / name
    ledger.begin_run(run_id=run_id)
    configure_tracing(str(path))
    with phase("search"):
        with phase("expand"):
            pass
    trace_mod.instant("note", detail=7)
    configure_tracing(None)
    ledger.end_run()
    return path


class TestChromeExport:
    def test_document_shape(self, tmp_path):
        path = _trace_file(tmp_path)
        doc = convert_trace_files([path])
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        other = doc["otherData"]
        assert other["schema"] == "repro.trace.chrome/1"
        assert other["run_ids"] == ["r-export-01"]
        assert other["processes"] == 1
        assert other["corrupt_lines"] == 0
        assert other["inputs"] == [str(path)]
        # valid JSON end to end
        assert json.loads(json.dumps(doc)) == doc

    def test_events_are_relative_microseconds(self, tmp_path):
        path = _trace_file(tmp_path)
        doc = chrome_trace_document(ledger.stitch([path]))
        data = [ev for ev in doc["traceEvents"] if ev["ph"] != "M"]
        assert data[0]["ts"] == 0.0
        assert all(ev["ts"] >= 0 for ev in data)
        assert all(ev["ph"] in ("B", "E", "i") for ev in data)
        for ev in data:
            if ev["ph"] == "i":
                assert ev["s"] == "t"
        spans = [ev for ev in data if ev["ph"] in ("B", "E")]
        assert [ev["name"] for ev in spans] == [
            "search", "expand", "expand", "search"]

    def test_run_stamp_copied_into_args(self, tmp_path):
        path = _trace_file(tmp_path)
        doc = chrome_trace_document(ledger.stitch([path]))
        spans = [ev for ev in doc["traceEvents"] if ev["ph"] == "B"]
        assert all(ev["args"]["run"] == "r-export-01" for ev in spans)

    def test_process_metadata_names_tracks(self, tmp_path):
        path = _trace_file(tmp_path)
        stitched = ledger.stitch([path])
        events = chrome_trace_events(stitched)
        meta = {ev["name"]: ev for ev in events if ev["ph"] == "M"}
        assert set(meta) == {"process_name", "process_sort_index"}
        assert meta["process_name"]["args"]["name"].startswith("driver")
        assert meta["process_sort_index"]["args"]["sort_index"] == 0

    def test_worker_tracks_sorted_after_driver(self):
        stitched = ledger.StitchedTrace(
            events=[], run_ids=(), corrupt_lines=0, roots=[],
            processes={
                10: {"role": "driver", "worker": None, "shard": None},
                20: {"role": "worker", "worker": 2, "shard": "0/2"},
            })
        events = chrome_trace_events(stitched)
        names = {ev["pid"]: ev["args"]["name"] for ev in events
                 if ev["name"] == "process_name"}
        sorts = {ev["pid"]: ev["args"]["sort_index"] for ev in events
                 if ev["name"] == "process_sort_index"}
        assert names[10] == "driver (pid 10)"
        assert names[20] == "shard 0/2 worker 2 (pid 20)"
        assert sorts[10] == 0 and sorts[20] == 3

    def test_convert_writes_output(self, tmp_path):
        path = _trace_file(tmp_path)
        out = tmp_path / "out.chrome.json"
        doc = convert_trace_files([path], out)
        assert json.loads(out.read_text()) == json.loads(json.dumps(doc))


class TestPrometheusNames:
    def test_sanitization(self):
        assert _prom_name("fo.eval.cache-hits") == "repro_fo_eval_cache_hits"
        assert _prom_name("9lives").startswith("repro_")

    def test_values(self):
        assert _prom_value(3.0) == "3"
        assert _prom_value(0.25) == "0.25"
        assert _prom_value(float("nan")) == "NaN"


class TestPrometheusRendering:
    def test_counters_gauges_histograms_phases(self):
        counter("fo.evals").inc(5)
        gauge("shm.segments_active").set(2)
        h = REGISTRY.histogram("task.seconds", (0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        REGISTRY.phase_seconds["search"] = 1.25
        REGISTRY.phase_counts["search"] = 3
        text = render_prometheus(REGISTRY.snapshot())
        lines = text.splitlines()
        assert "repro_fo_evals_total 5" in lines
        assert "repro_shm_segments_active 2" in lines
        # buckets are cumulative with inclusive upper bounds (le)
        assert 'repro_task_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_task_seconds_bucket{le="1"} 2' in lines
        assert 'repro_task_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_task_seconds_sum 5.55" in lines
        assert "repro_task_seconds_count 3" in lines
        assert 'repro_phase_seconds_total{phase="search"} 1.25' in lines
        assert 'repro_phase_runs_total{phase="search"} 3' in lines
        assert text.endswith("\n")

    def test_run_id_becomes_info_metric(self):
        ledger.begin_run(run_id="r-prom-01")
        counter("x").inc()
        text = render_prometheus(REGISTRY.snapshot())
        assert 'repro_run_info{run="r-prom-01"} 1' in text.splitlines()

    def test_no_run_no_info_metric(self):
        counter("x").inc()
        assert "repro_run_info" not in render_prometheus(
            REGISTRY.snapshot())


class TestExtractRegistrySnapshot:
    def _snapshot(self):
        counter("k").inc()
        return REGISTRY.snapshot()

    def test_bare_snapshot(self):
        snap = self._snapshot()
        assert extract_registry_snapshot(snap) is snap

    def test_metrics_json_wrapper(self):
        """Regression: the CLI wrapper shares the snapshot's schema tag
        at its own top level; the nested registry must win."""
        snap = self._snapshot()
        wrapper = {"schema": snap["schema"], "command": "verify",
                   "results": [], "registry": snap}
        assert extract_registry_snapshot(wrapper) is snap

    def test_shard_fragment_shape(self):
        snap = self._snapshot()
        fragment = {"schema": "repro.shard/1", "shard": [0, 2],
                    "metrics": snap}
        assert extract_registry_snapshot(fragment) is snap

    def test_v1_snapshot_accepted(self):
        snap = dict(self._snapshot())
        snap["schema"] = "repro.metrics/1"
        assert extract_registry_snapshot(snap) is snap

    def test_unknown_document_rejected(self):
        with pytest.raises(ValueError):
            extract_registry_snapshot({"schema": "something/9"})
