"""Tests for the command-line interface (python -m repro)."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.spec.dsl import load_properties

SPEC = """
peer S {
    database items/1
    input pick/1
    out flat msg/1
    input pick(x) <- items(x)
    send  msg(x)  <- pick(x)
}
peer R {
    state got/1
    in flat msg/1
    insert got(x) <- ?msg(x)
}
database S {
    items: ("a",)
}
property safety:
    forall x: G( R.got(x) -> S.items(x) )
property liveness:
    forall x: G( S.pick(x) -> F R.got(x) )
"""


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "relay.dws"
    path.write_text(SPEC)
    return str(path)


class TestLoadProperties:
    def test_both_found(self):
        props = load_properties(SPEC)
        assert set(props) == {"safety", "liveness"}
        assert props["safety"].startswith("forall x:")

    def test_multiline_body_merged(self):
        props = load_properties(SPEC)
        assert "F R.got(x)" in props["liveness"]

    def test_duplicate_rejected(self):
        from repro.errors import ParseError
        with pytest.raises(ParseError):
            load_properties("property a: G true\nproperty a: G true")


class TestVerifyCommand:
    def test_single_property_ok(self, spec_file, capsys):
        code = main(["verify", spec_file, "--property", "safety"])
        out = capsys.readouterr().out
        assert code == 0
        assert "safety: SATISFIED" in out

    def test_failing_property_exit_code(self, spec_file, capsys):
        code = main(["verify", spec_file, "--property", "liveness"])
        out = capsys.readouterr().out
        assert code == 1
        assert "liveness: VIOLATED" in out

    def test_all_properties(self, spec_file, capsys):
        code = main(["verify", spec_file])
        out = capsys.readouterr().out
        assert code == 1  # liveness fails
        assert "safety: SATISFIED" in out

    def test_fair_perfect_flips_liveness(self, spec_file, capsys):
        code = main(["verify", spec_file, "--property", "liveness",
                     "--perfect", "--fair"])
        out = capsys.readouterr().out
        assert code == 0
        assert "liveness: SATISFIED" in out

    def test_counterexample_printed(self, spec_file, capsys):
        code = main(["verify", spec_file, "--property", "liveness",
                     "--counterexample"])
        out = capsys.readouterr().out
        assert code == 1
        assert "counterexample to:" in out

    def test_unknown_property(self, spec_file, capsys):
        code = main(["verify", spec_file, "--property", "nosuch"])
        assert code == 2

    def test_no_properties_declared(self, tmp_path, capsys):
        path = tmp_path / "bare.dws"
        path.write_text(SPEC.split("property", 1)[0])
        assert main(["verify", str(path)]) == 2


class TestCheckCommand:
    def test_clean_spec(self, spec_file, capsys):
        assert main(["check", spec_file]) == 0
        assert "no violations" in capsys.readouterr().out

    def test_violating_spec(self, tmp_path, capsys):
        path = tmp_path / "bad.dws"
        path.write_text("""
        peer P {
            database d/1
            state s/1
            out flat q/1
            insert s(x) <- d(x)
            send q(x) <- s(x)
        }
        """)
        assert main(["check", str(path)]) == 1


class TestSimulateCommand:
    def test_prints_steps(self, spec_file, capsys):
        code = main(["simulate", spec_file, "--steps", "5", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("step") == 6

    def test_parse_error_reported(self, tmp_path, capsys):
        path = tmp_path / "broken.dws"
        path.write_text("peer P { junk }")
        assert main(["check", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestAuctionSpecProperties:
    def test_shipped_spec_verifies_via_cli(self, capsys):
        spec = str(Path(__file__).parent.parent / "examples" / "specs"
                   / "auction.dws")
        assert main(["verify", spec]) == 0


@pytest.mark.obs
class TestObservabilityFlags:
    def test_verify_writes_metrics_json(self, spec_file, tmp_path, capsys):
        out = tmp_path / "m.json"
        code = main(["verify", spec_file, "--property", "safety",
                     "--metrics-json", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.metrics/2"
        assert payload["command"] == "verify"
        assert payload["registry"]["schema"] == "repro.metrics/2"
        (entry,) = payload["results"]
        assert entry["property"] == "safety"
        assert entry["verdict"] == "SATISFIED"
        assert entry["stats"]["phase_seconds"]
        assert entry["stats"]["rule_cache"].get("misses", 0) > 0

    def test_verify_writes_trace_jsonl(self, spec_file, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        code = main(["verify", spec_file, "--property", "safety",
                     "--trace", str(out)])
        assert code == 0
        events = [json.loads(line)
                  for line in out.read_text().splitlines() if line]
        assert events[0]["name"] == "stream-start"
        # CLI entry points open a run-ledger context, so every event is
        # stamped with the run id
        assert all(ev.get("run") for ev in events)
        names = {ev["name"] for ev in events}
        assert {"search", "expand"} <= names
        # tracing is switched back off after main() returns
        from repro.obs import tracing_enabled
        assert not tracing_enabled()

    def test_check_accepts_metrics_json(self, spec_file, tmp_path, capsys):
        out = tmp_path / "m.json"
        assert main(["check", spec_file,
                     "--metrics-json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["command"] == "check"
        assert payload["results"][0]["violations"] == []

    def test_simulate_accepts_trace(self, spec_file, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        assert main(["simulate", spec_file, "--steps", "3",
                     "--trace", str(out)]) == 0
        assert out.exists()


class TestProfileCommand:
    def test_profile_spec_file(self, spec_file, capsys):
        code = main(["profile", spec_file, "--property", "safety"])
        out = capsys.readouterr().out
        assert code == 0
        assert "safety: SATISFIED" in out
        assert "total (wall)" in out
        assert "(other)" in out
        assert "search" in out

    def test_profile_library_target(self, capsys):
        code = main(["profile", "loan",
                     "--property", "bank_policy_pointwise"])
        out = capsys.readouterr().out
        assert code == 0
        assert "bank_policy_pointwise: SATISFIED" in out
        assert "rule cache:" in out

    def test_profile_phase_rows_sum_to_wall(self, spec_file, capsys):
        assert main(["profile", spec_file, "--property", "safety"]) == 0
        out = capsys.readouterr().out
        import re
        rows = {}
        for line in out.splitlines():
            m = re.match(r"\s+(.+?)\s+(?:\d+|-)?\s*(\d+\.\d+)s\s+"
                         r"\d+\.\d+%\s*$", line)
            if m:
                rows[m.group(1).strip()] = float(m.group(2))
        wall = rows.pop("total (wall)")
        assert rows, "no phase rows parsed"
        # rows are exclusive self-times plus the uninstrumented
        # remainder, so up to per-row rounding they sum to the wall
        assert sum(rows.values()) == pytest.approx(
            wall, abs=0.002 * (len(rows) + 1))

    def test_profile_unknown_library(self, capsys):
        assert main(["profile", "nosuchlib"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_profile_workers_prints_per_worker_rows(self, capsys,
                                                    tmp_path):
        out_json = tmp_path / "m.json"
        code = main(["profile", "loan", "--workers", "2",
                     "--property", "letter_needs_application",
                     "--metrics-json", str(out_json)])
        out = capsys.readouterr().out
        assert code == 0
        assert "per-worker breakdown" in out
        assert "pid-" in out
        payload = json.loads(out_json.read_text())
        assert payload["command"] == "profile"
        (entry,) = payload["results"]
        assert entry["stats"]["per_worker"]
