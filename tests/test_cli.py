"""Tests for the command-line interface (python -m repro)."""

from pathlib import Path

import pytest

from repro.cli import main
from repro.spec.dsl import load_properties

SPEC = """
peer S {
    database items/1
    input pick/1
    out flat msg/1
    input pick(x) <- items(x)
    send  msg(x)  <- pick(x)
}
peer R {
    state got/1
    in flat msg/1
    insert got(x) <- ?msg(x)
}
database S {
    items: ("a",)
}
property safety:
    forall x: G( R.got(x) -> S.items(x) )
property liveness:
    forall x: G( S.pick(x) -> F R.got(x) )
"""


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "relay.dws"
    path.write_text(SPEC)
    return str(path)


class TestLoadProperties:
    def test_both_found(self):
        props = load_properties(SPEC)
        assert set(props) == {"safety", "liveness"}
        assert props["safety"].startswith("forall x:")

    def test_multiline_body_merged(self):
        props = load_properties(SPEC)
        assert "F R.got(x)" in props["liveness"]

    def test_duplicate_rejected(self):
        from repro.errors import ParseError
        with pytest.raises(ParseError):
            load_properties("property a: G true\nproperty a: G true")


class TestVerifyCommand:
    def test_single_property_ok(self, spec_file, capsys):
        code = main(["verify", spec_file, "--property", "safety"])
        out = capsys.readouterr().out
        assert code == 0
        assert "safety: SATISFIED" in out

    def test_failing_property_exit_code(self, spec_file, capsys):
        code = main(["verify", spec_file, "--property", "liveness"])
        out = capsys.readouterr().out
        assert code == 1
        assert "liveness: VIOLATED" in out

    def test_all_properties(self, spec_file, capsys):
        code = main(["verify", spec_file])
        out = capsys.readouterr().out
        assert code == 1  # liveness fails
        assert "safety: SATISFIED" in out

    def test_fair_perfect_flips_liveness(self, spec_file, capsys):
        code = main(["verify", spec_file, "--property", "liveness",
                     "--perfect", "--fair"])
        out = capsys.readouterr().out
        assert code == 0
        assert "liveness: SATISFIED" in out

    def test_counterexample_printed(self, spec_file, capsys):
        code = main(["verify", spec_file, "--property", "liveness",
                     "--counterexample"])
        out = capsys.readouterr().out
        assert code == 1
        assert "counterexample to:" in out

    def test_unknown_property(self, spec_file, capsys):
        code = main(["verify", spec_file, "--property", "nosuch"])
        assert code == 2

    def test_no_properties_declared(self, tmp_path, capsys):
        path = tmp_path / "bare.dws"
        path.write_text(SPEC.split("property", 1)[0])
        assert main(["verify", str(path)]) == 2


class TestCheckCommand:
    def test_clean_spec(self, spec_file, capsys):
        assert main(["check", spec_file]) == 0
        assert "no violations" in capsys.readouterr().out

    def test_violating_spec(self, tmp_path, capsys):
        path = tmp_path / "bad.dws"
        path.write_text("""
        peer P {
            database d/1
            state s/1
            out flat q/1
            insert s(x) <- d(x)
            send q(x) <- s(x)
        }
        """)
        assert main(["check", str(path)]) == 1


class TestSimulateCommand:
    def test_prints_steps(self, spec_file, capsys):
        code = main(["simulate", spec_file, "--steps", "5", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("step") == 6

    def test_parse_error_reported(self, tmp_path, capsys):
        path = tmp_path / "broken.dws"
        path.write_text("peer P { junk }")
        assert main(["check", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestAuctionSpecProperties:
    def test_shipped_spec_verifies_via_cli(self, capsys):
        spec = str(Path(__file__).parent.parent / "examples" / "specs"
                   / "auction.dws")
        assert main(["verify", spec]) == 0
