"""Tests for the paper's loan composition (Examples 1.1/2.2/3.2/5.1)."""

import pytest

from repro.ib import is_input_bounded_composition
from repro.library.loan import (
    CREDIT_CATEGORIES, ENV_SPEC_RATING_CATEGORIES, PROPERTY_BANK_POLICY,
    PROPERTY_BANK_POLICY_POINTWISE, PROPERTY_LETTER_NEEDS_APPLICATION,
    PROPERTY_RESPONSIVENESS, STANDARD_CANDIDATES, loan_composition,
    officer_side_composition, standard_database,
)
from repro.runtime import reachable_states, simulate
from repro.verifier import verification_domain, verify


@pytest.fixture(scope="module")
def fair_setup():
    comp = loan_composition()
    dbs = standard_database("fair")
    dom = verification_domain(comp, [], dbs, fresh_count=1)
    return comp, dbs, dom


class TestStructure:
    def test_closed_with_seven_channels(self):
        comp = loan_composition()
        assert comp.is_closed
        assert {c.name for c in comp.channels} == {
            "apply", "getRating", "rating", "getHistory", "history",
            "recommend", "decision",
        }

    def test_nested_channels(self):
        comp = loan_composition()
        assert comp.channel("history").nested
        assert comp.channel("recommend").nested
        assert not comp.channel("rating").nested

    def test_input_bounded_both_scales(self):
        assert is_input_bounded_composition(loan_composition())
        assert is_input_bounded_composition(loan_composition(gated=False))
        assert is_input_bounded_composition(
            loan_composition(buggy_officer=True)
        )

    def test_open_variant(self):
        comp = officer_side_composition()
        assert not comp.is_closed
        env_names = {c.name for c in comp.environment_channels()}
        assert env_names == {"getRating", "getHistory", "rating", "history"}

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            standard_database("stellar")


class TestBehaviour:
    def test_letters_reachable_for_fair_category(self, fair_setup):
        comp, dbs, dom = fair_setup
        states = reachable_states(comp, dbs, dom.values)
        letters = set()
        for s in states:
            letters |= s.data["O.letter"]
        assert ("c1", "ann", "small", "approved") in letters
        assert ("c1", "ann", "small", "denied") in letters

    def test_excellent_auto_approves(self):
        comp = loan_composition()
        dbs = standard_database("excellent")
        dom = verification_domain(comp, [], dbs, fresh_count=1)
        states = reachable_states(comp, dbs, dom.values)
        letters = set()
        for s in states:
            letters |= s.data["O.letter"]
        assert ("c1", "ann", "small", "approved") in letters
        # without a manager path, no denial is possible
        assert ("c1", "ann", "small", "denied") not in letters

    def test_poor_auto_denies(self):
        comp = loan_composition()
        dbs = standard_database("poor")
        dom = verification_domain(comp, [], dbs, fresh_count=1)
        states = reachable_states(comp, dbs, dom.values)
        letters = set()
        for s in states:
            letters |= s.data["O.letter"]
        assert letters <= {("c1", "ann", "small", "denied")}

    def test_free_running_variant_simulates(self):
        comp = loan_composition(gated=False)
        dbs = standard_database("excellent")
        dom = verification_domain(comp, [], dbs, fresh_count=1)
        trace = simulate(comp, dbs, dom.values, steps=20, seed=11)
        assert len(trace) == 21


class TestProperties:
    @pytest.mark.parametrize("category", CREDIT_CATEGORIES)
    def test_pointwise_policy_holds(self, category):
        comp = loan_composition()
        dbs = standard_database(category)
        dom = verification_domain(comp, [], dbs, fresh_count=1)
        r = verify(comp, PROPERTY_BANK_POLICY_POINTWISE, dbs, domain=dom,
                   valuation_candidates=STANDARD_CANDIDATES)
        assert r.satisfied, r.summary()

    def test_buggy_officer_caught(self):
        comp = loan_composition(buggy_officer=True)
        dbs = standard_database("poor")
        dom = verification_domain(comp, [], dbs, fresh_count=1)
        r = verify(comp, PROPERTY_BANK_POLICY_POINTWISE, dbs, domain=dom,
                   valuation_candidates=STANDARD_CANDIDATES)
        assert not r.satisfied
        assert r.counterexample.valuation["id"] == "c1"

    def test_letter_needs_application_holds(self, fair_setup):
        comp, dbs, dom = fair_setup
        r = verify(comp, PROPERTY_LETTER_NEEDS_APPLICATION, dbs,
                   domain=dom, valuation_candidates=STANDARD_CANDIDATES)
        assert r.satisfied

    def test_responsiveness_fails_under_lossy(self, fair_setup):
        # Example 3.2's property (11) is liveness: a lost message (or an
        # idle officer) yields a counterexample -- the expected verdict in
        # this semantics (EXPERIMENTS.md, finding E1-F1)
        comp, dbs, dom = fair_setup
        r = verify(comp, PROPERTY_RESPONSIVENESS, dbs, domain=dom,
                   valuation_candidates=STANDARD_CANDIDATES)
        assert not r.satisfied

    def test_literal_b_form_policy_violated_by_timing(self, fair_setup):
        # the literal property (12): see EXPERIMENTS.md, finding E1-F2
        comp, dbs, dom = fair_setup
        r = verify(comp, PROPERTY_BANK_POLICY, dbs, domain=dom,
                   valuation_candidates=STANDARD_CANDIDATES)
        assert not r.satisfied
