"""Tests for peers, rules, and compositions (Section 2)."""

import pytest

from repro.errors import SpecificationError
from repro.fo import RelationKind, Var, atom, parse_fo
from repro.spec import (
    Composition, Peer, PeerBuilder, Rule, RuleKind, rename_formula_relations,
)


def minimal_peer(name="P", **extra):
    return (
        PeerBuilder(name)
        .database("d", 1)
        .build()
    )


class TestRule:
    def test_head_must_be_distinct(self):
        with pytest.raises(SpecificationError):
            Rule(RuleKind.ACTION, "a", (Var("x"), Var("x")),
                 atom("d", Var("x")))

    def test_body_free_vars_must_be_in_head(self):
        with pytest.raises(SpecificationError):
            Rule(RuleKind.ACTION, "a", (Var("x"),),
                 atom("d", Var("x"), Var("y")))

    def test_rename_relations(self):
        rule = Rule(RuleKind.INSERT, "s", (Var("x"),), atom("d", Var("x")))
        renamed = rule.rename_relations({"s": "P.s", "d": "P.d"})
        assert renamed.target == "P.s"
        assert str(renamed.body) == "P.d(x)"

    def test_rename_formula_relations_helper(self):
        f = parse_fo("r(x) & s(x, y)")
        g = rename_formula_relations(f, {"r": "A.r"})
        assert "A.r" in str(g) and "s(x, y)" in str(g)


class TestPeerBuilder:
    def test_duplicate_relation_rejected(self):
        with pytest.raises(SpecificationError):
            PeerBuilder("P").database("d", 1).state("d", 1)

    def test_rule_for_unknown_relation(self):
        with pytest.raises(SpecificationError):
            PeerBuilder("P").insert_rule("nosuch", ["x"], "true").build()

    def test_rule_kind_mismatch(self):
        with pytest.raises(SpecificationError):
            (PeerBuilder("P").database("d", 1)
             .insert_rule("d", ["x"], "true").build())

    def test_head_arity_mismatch(self):
        with pytest.raises(SpecificationError):
            (PeerBuilder("P").state("s", 2)
             .insert_rule("s", ["x"], "true").build())

    def test_duplicate_rule_rejected(self):
        with pytest.raises(SpecificationError):
            (PeerBuilder("P").state("s", 1)
             .insert_rule("s", ["x"], "true")
             .insert_rule("s", ["x"], "false").build())

    def test_input_without_rule_rejected(self):
        with pytest.raises(SpecificationError):
            PeerBuilder("P").input("i", 1).build()

    def test_propositional_input_without_rule_allowed(self):
        peer = PeerBuilder("P").input("go", 0).build()
        assert peer.inputs[0].arity == 0

    def test_vocabulary_input_rule_cannot_use_current_input(self):
        with pytest.raises(SpecificationError):
            (PeerBuilder("P")
             .input("i", 1).input("j", 1)
             .input_rule("i", ["x"], "j(x)")
             .input_rule("j", ["x"], "true")
             .build())

    def test_vocabulary_rules_cannot_use_actions(self):
        with pytest.raises(SpecificationError):
            (PeerBuilder("P")
             .action("a", 1).state("s", 1)
             .insert_rule("s", ["x"], "a(x)")
             .build())

    def test_vocabulary_rules_cannot_read_out_queues(self):
        with pytest.raises(SpecificationError):
            (PeerBuilder("P")
             .flat_out_queue("q", 1).state("s", 1)
             .insert_rule("s", ["x"], "q(x)")
             .build())

    def test_prev_input_available(self):
        peer = (
            PeerBuilder("P")
            .input("i", 1).state("s", 1)
            .input_rule("i", ["x"], "true")
            .insert_rule("s", ["x"], "prev_i(x)")
            .build()
        )
        assert peer.rule_for(RuleKind.INSERT, "s") is not None

    def test_queue_state_available(self):
        peer = (
            PeerBuilder("P")
            .flat_in_queue("q", 1).state("s", 0)
            .insert_rule("s", [], "~empty_q")
            .build()
        )
        assert "empty_q" in peer.local_schema

    def test_error_flag_available_for_flat_out(self):
        peer = (
            PeerBuilder("P")
            .flat_out_queue("q", 1).state("s", 0)
            .insert_rule("s", [], "error_q")
            .build()
        )
        assert "error_q" in peer.local_schema


class TestPeerQueries:
    def test_consumed_in_queues(self):
        peer = (
            PeerBuilder("P")
            .flat_in_queue("used", 1)
            .flat_in_queue("ignored", 1)
            .state("s", 1)
            .insert_rule("s", ["x"], "?used(x)")
            .build()
        )
        assert peer.consumed_in_queues() == frozenset({"used"})

    def test_constants(self):
        peer = (
            PeerBuilder("P")
            .state("s", 1)
            .insert_rule("s", ["x"], 'x = "k"')
            .build()
        )
        assert peer.constants() == frozenset({"k"})

    def test_max_rule_variables(self):
        peer = (
            PeerBuilder("P")
            .database("d", 3).state("s", 1)
            .insert_rule("s", ["x"], "exists y, z: d(x, y, z)")
            .build()
        )
        assert peer.max_rule_variables() == 3


class TestComposition:
    def test_channel_wiring(self, sender_receiver):
        chan = sender_receiver.channel("msg")
        assert chan.sender == "S" and chan.receiver == "R"
        assert sender_receiver.is_closed

    def test_open_composition(self, open_relay):
        assert not open_relay.is_closed
        names = {c.name for c in open_relay.environment_channels()}
        assert names == {"outbound", "inbound"}
        assert open_relay.env_in_channels()[0].name == "outbound"
        assert open_relay.env_out_channels()[0].name == "inbound"

    def test_duplicate_peer_names(self):
        with pytest.raises(SpecificationError):
            Composition([minimal_peer("P"), minimal_peer("P")])

    def test_two_senders_on_one_queue_rejected(self):
        a = PeerBuilder("A").flat_out_queue("q", 1).build()
        b = PeerBuilder("B").flat_out_queue("q", 1).build()
        with pytest.raises(SpecificationError):
            Composition([a, b])

    def test_two_receivers_on_one_queue_rejected(self):
        a = PeerBuilder("A").flat_in_queue("q", 1).build()
        b = PeerBuilder("B").flat_in_queue("q", 1).build()
        with pytest.raises(SpecificationError):
            Composition([a, b])

    def test_arity_mismatch_between_endpoints(self):
        a = PeerBuilder("A").flat_out_queue("q", 1).build()
        b = PeerBuilder("B").flat_in_queue("q", 2).build()
        with pytest.raises(SpecificationError):
            Composition([a, b])

    def test_nested_flat_mismatch(self):
        a = PeerBuilder("A").nested_out_queue("q", 1).build()
        b = PeerBuilder("B").flat_in_queue("q", 1).build()
        with pytest.raises(SpecificationError):
            Composition([a, b])

    def test_self_channel_impossible(self):
        # a peer cannot even declare the same queue name twice, so
        # self-channels are rejected at construction time
        with pytest.raises(SpecificationError):
            (PeerBuilder("P")
             .flat_out_queue("loop", 1)
             .flat_in_queue("loop", 1))

    def test_schema_contains_qualified_and_derived(self, sender_receiver):
        names = sender_receiver.schema.names()
        assert "S.items" in names
        assert "S.pick" in names and "S.prev_pick" in names
        assert "R.empty_msg" in names and "R.received_msg" in names
        assert "S.error_msg" in names
        assert "move_S" in names and "move_R" in names

    def test_open_schema_has_env_symbols(self, open_relay):
        names = open_relay.schema.names()
        assert "ENV.outbound" in names
        assert "ENV.inbound" in names
        assert "move_ENV" in names

    def test_qualified_rules(self, sender_receiver):
        rules = sender_receiver.qualified_rules("R")
        assert rules[0].target == "R.got"
        assert "R.msg" in str(rules[0].body)
