"""Tests for the DWV6xx data-provenance pass and the provenance
explanations attached to input-boundedness errors."""

import json

from repro.analysis import lint_text, to_json, to_sarif
from repro.spec import load_composition

#: Sender invents the payload (head var bound by nothing); the receiver
#: uses the queue as a quantifier guard -- the cross-peer ib break.
INVENTED_GUARD_SPEC = """
peer A {
    input go/0
    out flat token/1
    input go <- true
    send token(y) <- go
}
peer B {
    state seen/1
    state ok/0
    in flat token/1
    insert ok <- exists x. (?token(x) & ~seen(x))
    insert seen(x) <- ?token(x)
}
"""

#: Same inventing sender, but the receiver never guards on the queue:
#: a note (DWV602), not a warning.
INVENTED_UNGUARDED_SPEC = """
peer A {
    input go/0
    out flat token/1
    input go <- true
    send token(y) <- go
}
peer B {
    state seen/1
    in flat token/1
    insert seen(x) <- ?token(x)
}
"""

#: A local DWV001: quantifier guarded only by a state relation.
IB_ERROR_SPEC = """
peer P {
    database d/2
    state s/1
    state t/1
    input go/1
    input go(x) <- d(x, x)
    insert s(x) <- go(x)
    insert t(x) <- go(x) & exists y. (s(y))
}
"""


def codes(report):
    return {d.code for d in report.diagnostics}


class TestInventedValues:
    def test_invented_guard_flags_dwv601_with_witness(self):
        report = lint_text(INVENTED_GUARD_SPEC)
        [diag] = [d for d in report.diagnostics if d.code == "DWV601"]
        assert diag.peer == "B"
        # the explanation names the tag and walks back across the peer
        # boundary to the inventing send rule
        assert any("invented" in line for line in diag.provenance)
        assert any("B.token receives from A.token" in line
                   for line in diag.provenance)
        assert any("head variable y" in line for line in diag.provenance)

    def test_invented_payload_alone_is_a_note(self):
        report = lint_text(INVENTED_UNGUARDED_SPEC)
        found = codes(report)
        assert "DWV602" in found
        assert "DWV601" not in found

    def test_bound_sender_is_clean(self):
        bound = INVENTED_UNGUARDED_SPEC.replace(
            "    input go/0\n", "    database items/1\n    input go/1\n",
        ).replace(
            "    input go <- true\n", "    input go(x) <- items(x)\n",
        ).replace(
            "    send token(y) <- go\n", "    send token(x) <- go(x)\n",
        )
        report = lint_text(bound)
        assert not {c for c in codes(report) if c.startswith("DWV6")}


class TestComputeProvenance:
    def test_tags_flow_across_channels(self):
        from repro.analysis import compute_provenance

        facts = compute_provenance(load_composition(INVENTED_GUARD_SPEC))
        assert "invented" in facts[("A", "token")]
        assert "invented" in facts[("B", "token")]
        assert facts[("B", "seen")] >= facts[("B", "token")]


class TestIbErrorExplanations:
    def test_text_render_carries_provenance(self):
        report = lint_text(IB_ERROR_SPEC)
        [diag] = [d for d in report.diagnostics if d.code == "DWV001"]
        rendered = diag.render()
        assert "provenance:" in rendered
        assert "s: values may derive from" in rendered
        assert any(line.startswith("repair: ")
                   for line in diag.provenance)

    def test_json_carries_provenance(self):
        report = lint_text(IB_ERROR_SPEC)
        payload = json.loads(to_json(report.diagnostics))
        [entry] = [d for d in payload["diagnostics"]
                   if d["code"] == "DWV001"]
        assert entry["provenance"]

    def test_sarif_carries_provenance(self):
        report = lint_text(IB_ERROR_SPEC)
        doc = json.loads(to_sarif(report.diagnostics))
        [result] = [r for r in doc["runs"][0]["results"]
                    if r["ruleId"] == "DWV001"]
        assert result["properties"]["provenance"]
        assert result["partialFingerprints"]["reproLint/v1"]
