"""Regression tests for ``repro merge-shards`` error paths.

Every malformed-fragment scenario must surface as a clear CLI error
(exit code 2 with an ``error:`` line) -- never a traceback.  The
interesting ones:

* mismatched spec hashes -- fragments from two *different* specs that
  happen to declare the same property list (the silent-garbage case
  the ``spec_sha`` stamp exists to catch);
* overlapping shard indices -- the same residue class submitted twice;
* an empty or non-object fragment file.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.library import dispatch, payments
from repro.verifier import (
    merge_fragments, shard_fragment, spec_sha, verify,
)


@pytest.fixture(scope="module")
def payment_fragments():
    """Two real shard fragments of a payments sweep."""
    comp = payments.payments_composition()
    dbs = payments.standard_database()
    fragments = []
    for index in range(2):
        result = verify(
            comp, payments.PROPERTY_CAPTURE_CLEARED, dbs,
            valuation_candidates=payments.STANDARD_CANDIDATES,
            shard=(index, 2),
        )
        fragments.append(shard_fragment([result], (index, 2),
                                        composition=comp))
    return fragments


def _write(tmp_path, name, fragment):
    path = tmp_path / name
    path.write_text(json.dumps(fragment))
    return str(path)


def _run(capsys, argv):
    code = main(argv)
    err = capsys.readouterr().err
    return code, err


class TestValidateFragments:
    def test_fragments_carry_the_spec_hash(self, payment_fragments):
        comp = payments.payments_composition()
        expected = spec_sha(comp)
        assert expected is not None
        for frag in payment_fragments:
            assert frag["spec_sha"] == expected

    def test_mismatched_spec_hashes_rejected(self, payment_fragments):
        """Same property list, different composition -> refuse."""
        other = dict(payment_fragments[1])
        other["spec_sha"] = spec_sha(dispatch.dispatch_composition())
        with pytest.raises(ValueError, match="different specs"):
            merge_fragments([payment_fragments[0], other])

    def test_legacy_fragments_without_hash_still_merge(
            self, payment_fragments):
        legacy = [dict(frag) for frag in payment_fragments]
        for frag in legacy:
            frag.pop("spec_sha")
        merged = merge_fragments(legacy)
        assert merged["properties"][0]["verdict"] == "SATISFIED"

    def test_overlapping_indices_rejected(self, payment_fragments):
        twice = [payment_fragments[0], payment_fragments[0]]
        with pytest.raises(ValueError, match="overlapping shard"):
            merge_fragments(twice)

    def test_empty_fragment_list_rejected(self):
        with pytest.raises(ValueError, match="no shard fragments"):
            merge_fragments([])


class TestCliErrors:
    def test_mismatched_spec_hashes_exit_2(self, payment_fragments,
                                           tmp_path, capsys):
        other = dict(payment_fragments[1])
        other["spec_sha"] = spec_sha(dispatch.dispatch_composition())
        argv = ["merge-shards",
                _write(tmp_path, "a.json", payment_fragments[0]),
                _write(tmp_path, "b.json", other)]
        code, err = _run(capsys, argv)
        assert code == 2
        assert "error:" in err and "different specs" in err
        assert "Traceback" not in err

    def test_overlapping_indices_exit_2(self, payment_fragments,
                                        tmp_path, capsys):
        path = _write(tmp_path, "a.json", payment_fragments[0])
        code, err = _run(capsys, ["merge-shards", path, path])
        assert code == 2
        assert "error:" in err and "overlapping shard" in err
        assert "Traceback" not in err

    def test_missing_shard_exit_2(self, payment_fragments, tmp_path,
                                  capsys):
        path = _write(tmp_path, "a.json", payment_fragments[0])
        code, err = _run(capsys, ["merge-shards", path])
        assert code == 2
        assert "error:" in err and "every shard" in err

    def test_empty_json_list_fragment_exit_2(self, tmp_path, capsys):
        """A fragment file holding ``[]`` is a clear error, not an
        AttributeError traceback."""
        path = tmp_path / "empty.json"
        path.write_text("[]")
        code, err = _run(capsys, ["merge-shards", str(path)])
        assert code == 2
        assert "error:" in err and "not a shard fragment" in err
        assert "Traceback" not in err

    def test_unreadable_fragment_exit_2(self, tmp_path, capsys):
        code, err = _run(
            capsys, ["merge-shards", str(tmp_path / "missing.json")])
        assert code == 2
        assert "error:" in err and "cannot read fragment" in err

    def test_no_fragment_arguments_exit_2(self, capsys):
        """argparse rejects an empty fragment list with usage + exit 2."""
        with pytest.raises(SystemExit) as exc:
            main(["merge-shards"])
        assert exc.value.code == 2
        assert "usage" in capsys.readouterr().err
