"""Tests for LTL-FO sentences: parsing, closure, instantiation,
relativization."""

import pytest

from repro.errors import FormulaError, ParseError
from repro.fo import Atom, Var, atom, parse_fo
from repro.ltl import (
    LAtom, LNext, LRelease, LUntil, evaluate_on_word, latom, lnot,
)
from repro.ltlfo import (
    LTLFOSentence, lift_fo, map_payloads, parse_ltlfo, relativize, sentence,
)


class TestParsing:
    def test_closure_variables_collected(self):
        s = parse_ltlfo("forall x: G( r(x) -> F s(x) )")
        assert [v.name for v in s.variables] == ["x"]

    def test_auto_closure_of_free_vars(self):
        s = parse_ltlfo("G( r(x) -> F s(x, y) )")
        assert {v.name for v in s.variables} == {"x", "y"}

    def test_strict_sentence(self):
        s = parse_ltlfo("G forall x: r(x) -> s(x)")
        assert s.is_strict
        # the whole forall is one FO payload
        assert len(s.fo_payloads()) == 1

    def test_non_strict_sentence(self):
        s = parse_ltlfo("forall x: G (r(x) -> F s(x))")
        assert not s.is_strict

    def test_temporal_under_quantifier_rejected(self):
        with pytest.raises(ParseError):
            parse_ltlfo("G exists x: r(x) & F s(x)")

    def test_maximal_fo_payloads(self):
        s = parse_ltlfo("G( (a(x) & b(x)) -> F c(x) )")
        payload_strs = {str(p) for p in s.fo_payloads()}
        assert any("&" in p for p in payload_strs)

    def test_boolean_between_temporal_stays_temporal(self):
        s = parse_ltlfo("F a(x) & F b(x)")
        from repro.ltl import LAnd
        assert isinstance(s.body, LAnd)

    def test_until_and_before_operators(self):
        s1 = parse_ltlfo("a U b")
        assert isinstance(s1.body, LUntil)
        s2 = parse_ltlfo("a B b")
        # B is sugar: ~(~a U ~b)
        from repro.ltl import LNot
        assert isinstance(s2.body, LNot)


class TestSentence:
    def test_missing_closure_var_rejected(self):
        with pytest.raises(FormulaError):
            LTLFOSentence((), LAtom(atom("r", Var("x"))))

    def test_instantiate(self):
        s = parse_ltlfo("G r(x)")
        closed = s.instantiate({Var("x"): "a"})
        payloads = [
            n.ap for n in _lwalk(closed) if isinstance(n, LAtom)
        ]
        assert payloads == [parse_fo('r("a")')]

    def test_instantiate_requires_full_valuation(self):
        s = parse_ltlfo("G r(x)")
        with pytest.raises(FormulaError):
            s.instantiate({})

    def test_constants_and_relations(self):
        s = parse_ltlfo('G( r(x, "k") -> s(x) )')
        assert s.constants() == frozenset({"k"})
        assert s.relations() == frozenset({"r", "s"})

    def test_variable_count_includes_payload_bound(self):
        s = parse_ltlfo("G( (exists y: r(x, y)) -> s(x) )")
        assert s.variable_count() == 2


def _lwalk(f):
    from repro.ltl import lchildren
    stack = [f]
    while stack:
        n = stack.pop()
        yield n
        stack.extend(lchildren(n))


class TestMapPayloads:
    def test_renaming(self):
        s = parse_ltlfo("G r(x)")
        renamed = map_payloads(s.body, lambda p: Atom("O.r", p.terms))
        names = {n.ap.rel for n in _lwalk(renamed) if isinstance(n, LAtom)}
        assert names == {"O.r"}


class TestRelativize:
    """X_alpha / U_alpha against their defining semantics (Section 5)."""

    A = "alpha"
    P = "p"
    Q = "q"

    def _check(self, formula, word_pairs):
        """word_pairs: list of ((prefix, cycle), expected_bool)."""
        alpha_f = atom(self.A)
        rel = relativize(formula, alpha_f)
        # evaluate with FO payloads as APs keyed by their prop name
        def to_props(f):
            return map_payloads(f, lambda p: p.rel)
        prop = to_props(rel)
        for (prefix, cycle), expected in word_pairs:
            actual = evaluate_on_word(prop, prefix, cycle)
            assert actual == expected, f"{prop} on {prefix}+{cycle}"

    def test_x_alpha_skips_non_alpha_positions(self):
        # X_alpha p at 0: p must hold at the first alpha-position after 0
        f = LNext(lift_fo(atom(self.P)))
        al, p = frozenset({self.A}), frozenset({self.P})
        both = al | p
        self._check(f, [
            (([frozenset(), frozenset(), both], [frozenset()]), True),
            (([frozenset(), frozenset(), al], [frozenset()]), False),
            # no future alpha position: vacuously false
            (([frozenset(), p], [p]), False),
        ])

    def test_u_alpha_constrains_only_alpha_positions(self):
        f = LUntil(lift_fo(atom(self.P)), lift_fo(atom(self.Q)))
        al = frozenset({self.A})
        alp = al | frozenset({self.P})
        alq = al | frozenset({self.Q})
        noise = frozenset()  # non-alpha positions are ignored
        self._check(f, [
            (([noise, alp, noise, alq], [noise]), True),
            # p fails at an intermediate alpha position
            (([alp, al, alq], [noise]), False),
            # q never at an alpha position
            (([alp], [noise]), False),
        ])

    def test_release_is_rewritten(self):
        f = LRelease(lift_fo(atom(self.P)), lift_fo(atom(self.Q)))
        rel = relativize(f, atom(self.A))
        assert not any(
            isinstance(n, LRelease) for n in _lwalk(rel)
        )
