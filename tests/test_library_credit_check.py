"""Tests for the credit-check open composition (Section 5 demos)."""

import pytest

from repro.fo import Instance
from repro.ib import is_input_bounded_composition
from repro.library.loan import (
    ENV_SPEC_RATING_CONTENT, PROPERTY_RECORDED_CATEGORIES_KNOWN,
    credit_check_composition,
)
from repro.verifier import verification_domain, verify, verify_modular
from repro.verifier.domain import VerificationDomain


@pytest.fixture(scope="module")
def setup():
    composition = credit_check_composition()
    databases = {"O": Instance({"customer": [("c1", "s1", "ann")]})}
    domain = verification_domain(composition, [], databases,
                                 fresh_count=1)
    if "fair" not in domain.constants:
        domain = VerificationDomain(domain.constants + ("fair",),
                                    domain.fresh)
    env_values = ("s1", "fair", domain.fresh[0])
    candidates = {"ssn": ("s1",), "r": ("fair", domain.fresh[0])}
    return composition, databases, domain, env_values, candidates


class TestStructure:
    def test_open_with_flat_env_channels(self):
        composition = credit_check_composition()
        assert not composition.is_closed
        assert all(
            not c.nested for c in composition.environment_channels()
        )

    def test_input_bounded(self):
        assert is_input_bounded_composition(credit_check_composition())


class TestModularWorkflow:
    def test_unconstrained_env_violates(self, setup):
        composition, databases, domain, env_values, candidates = setup
        result = verify(composition, PROPERTY_RECORDED_CATEGORIES_KNOWN,
                        databases, domain=domain,
                        valuation_candidates=candidates,
                        env_value_domain=env_values)
        assert not result.satisfied
        assert result.counterexample.valuation["r"] == domain.fresh[0]

    def test_source_spec_restores(self, setup):
        composition, databases, domain, env_values, candidates = setup
        result = verify_modular(
            composition, PROPERTY_RECORDED_CATEGORIES_KNOWN,
            ENV_SPEC_RATING_CONTENT, databases, domain=domain,
            observer="source", valuation_candidates=candidates,
            env_value_domain=env_values,
        )
        assert result.satisfied

    def test_recipient_translation_leaves_unsolicited_open(self, setup):
        composition, databases, domain, env_values, candidates = setup
        ex51 = (
            "G forall ssn: ?getRating(ssn) -> "
            '( !rating(ssn, "poor") | !rating(ssn, "fair") '
            '| !rating(ssn, "good") | !rating(ssn, "excellent") )'
        )
        result = verify_modular(
            composition, PROPERTY_RECORDED_CATEGORIES_KNOWN, ex51,
            databases, domain=domain, observer="recipient",
            valuation_candidates=candidates, env_value_domain=env_values,
        )
        assert not result.satisfied

    def test_good_rating_actually_recorded(self, setup):
        """The satisfied case is not vacuous: a 'fair' rating flows in."""
        composition, databases, domain, env_values, _ = setup
        from repro.runtime import reachable_states
        from repro.spec import DECIDABLE_DEFAULT
        from repro.verifier.product import TransitionCache
        cache = TransitionCache(composition, databases, domain.values,
                                DECIDABLE_DEFAULT,
                                env_value_domain=env_values)
        seen = set()
        frontier = list(cache.initial())
        seen.update(frontier)
        recorded = set()
        while frontier:
            state = frontier.pop()
            recorded |= state.data["O.gotRating"]
            for nxt in cache.successors_of(state):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        assert ("s1", "fair") in recorded
