"""The zero-copy graph plane: segment lifecycle and pickled fallbacks.

Covers :mod:`repro.verifier.shm` (create/attach roundtrip, handle
validation, idempotent unlink, the ``REPRO_SHM`` escape hatch, leak
scanning) and the serialization satellite of the distributed sweep:
``SweepPayload`` ships at ``pickle.HIGHEST_PROTOCOL`` and a
memoryview-backed :class:`ExploredGraph` (attached from shared memory)
pickles back to owned arrays.
"""

import pickle
from array import array
from dataclasses import replace

import pytest

from repro.fo import Instance
from repro.library import payments
from repro.obs import counters_snapshot
from repro.spec import Composition, PeerBuilder
from repro.verifier import (
    GraphSegment, SharedExploration, TransitionCache, attach_graph,
    detach_graph, leaked_segments, shm_available, verification_domain,
    verify,
)
from repro.verifier.parallel import (
    SweepContext, SweepPayload, payload_to_bytes,
)
from repro.spec.channels import DECIDABLE_DEFAULT


def _frozen_graph():
    sender = (
        PeerBuilder("S")
        .database("items", 1)
        .input("pick", 1)
        .flat_out_queue("msg", 1)
        .input_rule("pick", ["x"], "items(x)")
        .send_rule("msg", ["x"], "pick(x)")
        .build()
    )
    receiver = (
        PeerBuilder("R")
        .state("got", 1)
        .flat_in_queue("msg", 1)
        .insert_rule("got", ["x"], "?msg(x)")
        .build()
    )
    comp = Composition([sender, receiver])
    dbs = {"S": Instance({"items": [("a",), ("b",)]})}
    dom = verification_domain(comp, [], dbs, fresh_count=1)
    cache = TransitionCache(comp, dbs, dom.values, DECIDABLE_DEFAULT)
    graph = SharedExploration(cache).complete()
    assert graph is not None
    return comp, dbs, dom, graph


@pytest.fixture(scope="module")
def frozen():
    return _frozen_graph()


def test_segment_roundtrip(frozen):
    """create -> attach reproduces the graph; views alias the mapping."""
    _comp, _dbs, _dom, graph = frozen
    segment = GraphSegment.create(graph)
    try:
        attached, mapping = attach_graph(segment.handle)
        try:
            assert attached.states == graph.states
            assert tuple(attached.initial_ids) == tuple(graph.initial_ids)
            assert list(attached.offsets) == list(graph.offsets)
            assert list(attached.targets) == list(graph.targets)
            assert attached.budget.max_system_states == \
                graph.budget.max_system_states
            # zero-copy: the CSR buffers are views, not owned arrays
            assert isinstance(attached.offsets, memoryview)
            assert isinstance(attached.targets, memoryview)
            assert attached.csr_nbytes == graph.csr_nbytes
        finally:
            detach_graph(attached, mapping)
    finally:
        segment.unlink()
    assert not leaked_segments()


def test_attached_graph_repickles_to_arrays(frozen):
    """A memoryview-backed graph pickles into owned array buffers."""
    _comp, _dbs, _dom, graph = frozen
    segment = GraphSegment.create(graph)
    try:
        attached, mapping = attach_graph(segment.handle)
        try:
            clone = pickle.loads(pickle.dumps(attached))
        finally:
            detach_graph(attached, mapping)
    finally:
        segment.unlink()
    assert isinstance(clone.offsets, array)
    assert isinstance(clone.targets, array)
    assert list(clone.offsets) == list(graph.offsets)
    assert list(clone.targets) == list(graph.targets)
    assert clone.states == graph.states


def test_handle_mismatch_rejected(frozen):
    """A stale/corrupt handle must not silently misread the segment."""
    _comp, _dbs, _dom, graph = frozen
    segment = GraphSegment.create(graph)
    try:
        bad = replace(segment.handle, n_states=segment.handle.n_states + 1)
        with pytest.raises(ValueError, match="does not match"):
            attach_graph(bad)
    finally:
        segment.unlink()
    assert not leaked_segments()


def test_unlink_idempotent(frozen):
    _comp, _dbs, _dom, graph = frozen
    segment = GraphSegment.create(graph)
    segment.unlink()
    segment.unlink()  # second call is a no-op, not an error
    assert not leaked_segments()


def test_context_manager_unlinks(frozen):
    _comp, _dbs, _dom, graph = frozen
    with GraphSegment.create(graph) as segment:
        assert segment.handle.name in leaked_segments()
    assert not leaked_segments()


def test_repro_shm_env_disables(monkeypatch):
    for value in ("0", "off", "false", "no"):
        monkeypatch.setenv("REPRO_SHM", value)
        assert not shm_available()
    monkeypatch.setenv("REPRO_SHM", "1")
    assert shm_available()
    monkeypatch.delenv("REPRO_SHM")
    assert shm_available()


def test_payload_ships_at_highest_protocol(frozen):
    """The fallback path serializes with protocol 5, not the mp default."""
    comp, dbs, dom, graph = frozen
    payload = SweepPayload(
        composition=comp,
        contexts=(SweepContext(tuple(sorted(dbs.items())), dom),),
        sentences=(),
        semantics=DECIDABLE_DEFAULT,
        frozen_graph=graph,
    )
    data = payload_to_bytes(payload, workers=2)
    # pickle protocol 5 frames start with \x80\x05
    assert data[:2] == b"\x80\x05"
    clone = pickle.loads(data)
    assert clone.frozen_graph is not None
    assert clone.frozen_graph.num_states == graph.num_states


def test_payload_strips_graph_when_handle_present(frozen):
    """Zero-copy shipping: the handle travels, the graph does not."""
    comp, dbs, dom, graph = frozen
    segment = GraphSegment.create(graph)
    try:
        payload = SweepPayload(
            composition=comp,
            contexts=(SweepContext(tuple(sorted(dbs.items())), dom),),
            sentences=(),
            semantics=DECIDABLE_DEFAULT,
            frozen_graph=graph,
            graph_handle=segment.handle,
        )
        with_graph = payload_to_bytes(
            replace(payload, graph_handle=None), workers=1
        )
        stripped = payload_to_bytes(payload, workers=2)
        assert len(stripped) < len(with_graph)
        clone = pickle.loads(stripped)
        assert clone.frozen_graph is None
        assert clone.graph_handle == segment.handle
    finally:
        segment.unlink()


def test_killed_worker_leaves_no_segments(monkeypatch):
    """Segment hygiene under the worst crash: a worker dies mid-task.

    The driver owns the shared-memory segment; when the pool breaks it
    must fall back sequentially AND still unlink the segment -- a
    crashed sweep that leaks ``/dev/shm`` slowly starves the host.
    """
    if not shm_available():
        pytest.skip("shared memory unavailable")
    comp = payments.payments_composition()
    dbs = payments.standard_database()
    prop = payments.PROPERTY_REFUND_AFTER_CAPTURE
    reference = verify(
        comp, prop, dbs,
        valuation_candidates=payments.STANDARD_CANDIDATES,
    )

    monkeypatch.setenv("REPRO_TEST_KILL_TASK", "0")
    before = counters_snapshot()
    crashed = verify(
        comp, prop, dbs,
        valuation_candidates=payments.STANDARD_CANDIDATES, workers=2,
    )
    after = counters_snapshot()

    broke = (after.get("sweep.pool_broken", 0)
             - before.get("sweep.pool_broken", 0))
    assert broke >= 1, "the killed worker did not trip the pool fallback"
    assert crashed.verdict == reference.verdict == "VIOLATED"
    assert (crashed.counterexample.lasso
            == reference.counterexample.lasso)
    assert not leaked_segments(), leaked_segments()
